"""End-to-end tests for the ``python -m repro`` CLI."""

import os

import pytest

from repro.cli import main
from repro.xmlcore.parser import parse_document


@pytest.fixture()
def demo_dir(tmp_path):
    out = tmp_path / "demo"
    assert main(["demo", "--out", str(out), "--scale", "1"]) == 0
    return out


def test_demo_writes_all_artifacts(demo_dir):
    for name in ("catalog.xml", "view.xml", "stylesheet.xsl", "hotel.sqlite"):
        assert (demo_dir / name).exists()


def test_compose_command(demo_dir, capsys):
    out_path = demo_dir / "composed.xml"
    code = main(
        [
            "compose",
            "--catalog", str(demo_dir / "catalog.xml"),
            "--view", str(demo_dir / "view.xml"),
            "--stylesheet", str(demo_dir / "stylesheet.xsl"),
            "--out", str(out_path),
        ]
    )
    assert code == 0
    document = parse_document(out_path.read_text())
    tags = [e.get("tag") for e in document.root_element.iter_elements()
            if e.tag == "node"]
    assert "result_metro" in tags
    assert "confroom" in tags


def test_compose_with_pruning(demo_dir, capsys):
    out_path = demo_dir / "composed.xml"
    code = main(
        [
            "compose",
            "--catalog", str(demo_dir / "catalog.xml"),
            "--view", str(demo_dir / "view.xml"),
            "--stylesheet", str(demo_dir / "stylesheet.xsl"),
            "--out", str(out_path),
            "--prune",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "pruned" in captured.err


def test_materialize_composed_equals_run(demo_dir, capsys):
    composed_path = demo_dir / "composed.xml"
    main(
        [
            "compose",
            "--catalog", str(demo_dir / "catalog.xml"),
            "--view", str(demo_dir / "view.xml"),
            "--stylesheet", str(demo_dir / "stylesheet.xsl"),
            "--out", str(composed_path),
        ]
    )
    capsys.readouterr()
    assert main(
        [
            "materialize",
            "--catalog", str(demo_dir / "catalog.xml"),
            "--view", str(composed_path),
            "--db", str(demo_dir / "hotel.sqlite"),
        ]
    ) == 0
    materialized = capsys.readouterr().out
    assert main(
        [
            "run",
            "--catalog", str(demo_dir / "catalog.xml"),
            "--view", str(demo_dir / "view.xml"),
            "--stylesheet", str(demo_dir / "stylesheet.xsl"),
            "--db", str(demo_dir / "hotel.sqlite"),
        ]
    ) == 0
    run_output = capsys.readouterr().out
    from repro.xmlcore.canonical import canonical_form
    from repro.xmlcore.parser import parse_fragment
    from repro.xmlcore.nodes import Document

    def canon(text):
        doc = Document()
        for node in parse_fragment(text.strip()):
            doc.append(node)
        return canonical_form(doc, ordered=False)

    assert canon(materialized) == canon(run_output)


def test_explain_command(demo_dir, capsys):
    assert main(
        [
            "explain",
            "--catalog", str(demo_dir / "catalog.xml"),
            "--view", str(demo_dir / "view.xml"),
            "--stylesheet", str(demo_dir / "stylesheet.xsl"),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "plan: composed" in out
    assert "Context Transition Graph" in out
    assert "Traverse View Query" in out


def test_missing_file_reports_error(tmp_path, capsys):
    code = main(
        [
            "explain",
            "--catalog", str(tmp_path / "nope.xml"),
            "--view", str(tmp_path / "nope.xml"),
            "--stylesheet", str(tmp_path / "nope.xsl"),
        ]
    )
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_bad_stylesheet_reports_error(demo_dir, tmp_path, capsys):
    bad = tmp_path / "bad.xsl"
    bad.write_text("<xsl:template><broken/></xsl:template>")
    code = main(
        [
            "compose",
            "--catalog", str(demo_dir / "catalog.xml"),
            "--view", str(demo_dir / "view.xml"),
            "--stylesheet", str(bad),
        ]
    )
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_run_recursive_stylesheet(demo_dir, tmp_path, capsys):
    recursive = tmp_path / "rec.xsl"
    from repro.workloads.paper import _FIGURE25

    recursive.write_text(_FIGURE25)
    code = main(
        [
            "run",
            "--catalog", str(demo_dir / "catalog.xml"),
            "--view", str(demo_dir / "view.xml"),
            "--stylesheet", str(recursive),
            "--db", str(demo_dir / "hotel.sqlite"),
            "--builtin-rules", "standard",
        ]
    )
    assert code == 0
    assert "plan: recursive" in capsys.readouterr().err


def test_explain_dot_output(demo_dir, capsys):
    assert main(
        [
            "explain",
            "--catalog", str(demo_dir / "catalog.xml"),
            "--view", str(demo_dir / "view.xml"),
            "--stylesheet", str(demo_dir / "stylesheet.xsl"),
            "--dot",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert out.count("digraph") == 3  # ctg, tvq, stylesheet view
    assert "((0, root), R1)" in out

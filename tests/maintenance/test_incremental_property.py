"""Differential properties of delta re-evaluation (hypothesis).

The incremental maintainer's one correctness claim, as a property over
random write sequences on the hotel workload: after any batch of
base-table writes, splicing the dirty subtrees into the previously
captured document serializes byte-identically to a full re-evaluation
of the live database. The claim must hold no matter which execution
strategy produced the captured state (the delta path itself always uses
the bulk machinery), and it must keep holding as deltas chain — each
spliced state is the input to the next batch.

A second invariant rides along for free: the old document is never
mutated. The splice is copy-on-spine, so a reference to the
pre-delta tree must serialize exactly as before — this is what makes a
mid-splice failure unable to tear the server's cached entry.

Three suites (one per strategy) at 200 examples each.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compose import compose
from repro.core.optimize import prune_stylesheet_view
from repro.maintenance import DeltaEvaluator, MaterializedState, hotel_write
from repro.schema_tree.bulk_evaluator import BulkViewEvaluator
from repro.schema_tree.evaluator import STRATEGIES, ViewEvaluator, materialize
from repro.serving.fingerprint import node_read_sets
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xmlcore.serializer import serialize

SPEC = HotelDataSpec(metros=1, hotels_per_metro=3, guestrooms_per_hotel=3)

#: One database per module, shared across examples. The write mix is
#: UPDATE-only (row counts and shapes never change), so examples are
#: independent in the only sense the property needs: whatever state the
#: database is in, delta must equal full. Carrying state across
#: examples just widens the coverage.
_ENV = {}


def _env():
    """Lazily build the shared database and both publishing targets."""
    if not _ENV:
        db = build_hotel_database(SPEC)
        view = figure1_view(db.catalog)
        composed = compose(view, figure4_stylesheet(), db.catalog)
        prune_stylesheet_view(composed, db.catalog)
        _ENV["db"] = db
        _ENV["targets"] = {"raw": view, "composed": composed}
        _ENV["reads"] = {
            name: node_read_sets(target)
            for name, target in _ENV["targets"].items()
        }
    return _ENV


def _capture_state(target, db, strategy):
    """Full materialization with instance capture for ``strategy``."""
    capture = {}
    if strategy == "bulk":
        evaluator = BulkViewEvaluator(db, capture_instances=capture)
    else:
        evaluator = ViewEvaluator(
            db, memoize=strategy == "memoized", capture_instances=capture
        )
    document = evaluator.materialize(target)
    return MaterializedState(document, capture)


def batches():
    """A short sequence of write batches; each batch is 1-3 mix steps."""
    return st.lists(
        st.lists(st.integers(0, 14), min_size=1, max_size=3),
        min_size=1,
        max_size=4,
    )


def _assert_delta_equals_full(strategy, target_name, write_batches):
    env = _env()
    db = env["db"]
    target = env["targets"][target_name]
    reads = env["reads"][target_name]
    state = _capture_state(target, db, strategy)
    before = serialize(state.document)
    for batch in write_batches:
        changed = {hotel_write(db, step) for step in batch}
        # DeltaUnsupported propagating is a failure by design: the hotel
        # views are exactly the shape the delta path claims to support.
        result = DeltaEvaluator(db).evaluate(target, state, reads, changed)
        assert serialize(result.document) == serialize(
            materialize(target, db, strategy=strategy)
        ), (strategy, target_name, batch, result.frontier_nodes)
        # Copy-on-spine: the pre-delta document is untouched.
        assert serialize(state.document) == before
        state = result.state
        before = serialize(state.document)


@given(target_name=st.sampled_from(("raw", "composed")), write_batches=batches())
@settings(max_examples=200, deadline=None)
def test_delta_equals_full_from_nested_loop_state(target_name, write_batches):
    _assert_delta_equals_full("nested-loop", target_name, write_batches)


@given(target_name=st.sampled_from(("raw", "composed")), write_batches=batches())
@settings(max_examples=200, deadline=None)
def test_delta_equals_full_from_memoized_state(target_name, write_batches):
    _assert_delta_equals_full("memoized", target_name, write_batches)


@given(target_name=st.sampled_from(("raw", "composed")), write_batches=batches())
@settings(max_examples=200, deadline=None)
def test_delta_equals_full_from_bulk_state(target_name, write_batches):
    _assert_delta_equals_full("bulk", target_name, write_batches)


def test_all_strategies_are_covered():
    """The three suites above track the strategy tuple one-to-one."""
    assert set(STRATEGIES) == {"nested-loop", "memoized", "bulk"}

"""StalenessPolicy: construction, parsing, and the allows() contract."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.maintenance import StalenessPolicy


def test_strict_allows_only_zero_lag():
    policy = StalenessPolicy.strict()
    assert policy.allows(0)
    assert not policy.allows(1)
    assert not policy.allows(10_000)


def test_bounded_allows_up_to_the_bound():
    policy = StalenessPolicy.bounded(3)
    assert [policy.allows(lag) for lag in range(6)] == [
        True, True, True, True, False, False,
    ]


def test_bounded_zero_behaves_like_strict():
    assert StalenessPolicy.bounded(0).allows(0)
    assert not StalenessPolicy.bounded(0).allows(1)


def test_manual_allows_any_lag():
    policy = StalenessPolicy.manual()
    assert policy.allows(0)
    assert policy.allows(10**9)


def test_unknown_kind_rejected():
    with pytest.raises(ReproError, match="unknown staleness policy"):
        StalenessPolicy("eventually")


def test_negative_bound_rejected():
    with pytest.raises(ReproError, match="must be >= 0"):
        StalenessPolicy.bounded(-1)


@pytest.mark.parametrize(
    "text, kind, max_lag",
    [
        ("strict", "strict", 0),
        ("manual", "manual", 0),
        ("bounded:0", "bounded", 0),
        ("bounded:17", "bounded", 17),
        ("  strict  ", "strict", 0),
    ],
)
def test_parse_accepted_forms(text, kind, max_lag):
    policy = StalenessPolicy.parse(text)
    assert policy.kind == kind
    assert policy.max_lag == max_lag


@pytest.mark.parametrize(
    "text", ["", "bounded", "bounded:", "bounded:x", "bounded:-1", "STRICT"]
)
def test_parse_rejected_forms(text):
    with pytest.raises(ReproError):
        StalenessPolicy.parse(text)


@given(
    st.one_of(
        st.just(StalenessPolicy.strict()),
        st.just(StalenessPolicy.manual()),
        st.integers(0, 10_000).map(StalenessPolicy.bounded),
    )
)
def test_describe_parse_round_trip(policy):
    assert StalenessPolicy.parse(policy.describe()) == policy


@given(st.integers(0, 100), st.integers(0, 100))
def test_bounded_allows_iff_within_bound(max_lag, lag):
    assert StalenessPolicy.bounded(max_lag).allows(lag) == (lag <= max_lag)

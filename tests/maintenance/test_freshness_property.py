"""Freshness properties under interleaved writes (hypothesis).

The maintenance layer's correctness claims, as properties over random
interleavings of base-table writes and publishing requests:

* **strict** — every served response (cached or not) is byte-identical
  to a serial, uncached materialization of the live database at that
  moment, for all three execution strategies. This extends the serving
  layer's equivalence guarantee across writes.
* **bounded** — a cached response is only ever served at a version lag
  within the policy's bound, and every *recomputed* response is again
  byte-identical to live data.
* **manual** — cached bytes may lag arbitrarily, but after an explicit
  ``invalidate_tables`` over the write set the next response is live.

Together the three suites run well over 200 examples.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compose import compose
from repro.core.optimize import prune_stylesheet_view
from repro.maintenance import WriteTracker, hotel_write
from repro.schema_tree.evaluator import STRATEGIES, materialize
from repro.serving import PublishRequest, ViewServer
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xmlcore.serializer import serialize

SPEC = HotelDataSpec(metros=1, hotels_per_metro=3, guestrooms_per_hotel=3)


def ops():
    """A random interleaving of writes and request batches.

    ``("write", step)`` applies write number ``step`` of the standard
    hotel mix; ``("request", strategy)`` issues one request. Batches of
    consecutive requests run concurrently between writes.
    """
    return st.lists(
        st.one_of(
            st.tuples(st.just("write"), st.integers(0, 14)),
            st.tuples(st.just("request"), st.sampled_from(STRATEGIES)),
        ),
        min_size=2,
        max_size=8,
    )


class Harness:
    """One hotel database + tracked server + live serial reference."""

    def __init__(self, staleness):
        self.db = build_hotel_database(SPEC, cross_thread=True)
        self.tracker = WriteTracker()
        self.db.attach_tracker(self.tracker)
        self.server = ViewServer(
            self.db.catalog,
            source=self.db,
            workers=3,
            tracker=self.tracker,
            staleness=staleness,
        )
        self.view = figure1_view(self.db.catalog)
        self.stylesheet = figure4_stylesheet()
        self.target = compose(self.view, self.stylesheet, self.db.catalog)
        prune_stylesheet_view(self.target, self.db.catalog)
        self.writes = 0

    def live_xml(self, strategy):
        """Uncached serial materialization of the database right now."""
        return serialize(materialize(self.target, self.db, strategy=strategy))

    def run(self, operations):
        """Execute the interleaving; yields (trace, strategy) pairs with
        request batches served concurrently."""
        served = []
        batch: list[str] = []

        def flush():
            if not batch:
                return
            traces = self.server.render_many(
                PublishRequest(self.view, self.stylesheet, strategy=s)
                for s in batch
            )
            served.extend(zip(traces, list(batch)))
            batch.clear()

        for kind, arg in operations:
            if kind == "write":
                flush()
                hotel_write(self.db, arg, self.tracker)
                self.writes += 1
            else:
                batch.append(arg)
        flush()
        return served

    def close(self):
        self.server.close()
        self.db.close()


@given(operations=ops())
@settings(max_examples=100, deadline=None)
def test_strict_serves_live_bytes_under_interleaved_writes(operations):
    harness = Harness("strict")
    try:
        served = harness.run(operations)
        for trace, strategy in served:
            assert trace.error is None, trace.error
            if trace.freshness == "hit":
                assert trace.version_lag == 0
            # The defining strict property: *every* response equals an
            # uncached serial evaluation of the live data. (No write ran
            # since the batch was served, so "now" is the right moment.)
            assert trace.xml == harness.live_xml(strategy)
    finally:
        harness.close()


@given(operations=ops(), max_lag=st.integers(0, 4))
@settings(max_examples=60, deadline=None)
def test_bounded_hits_never_exceed_the_lag_bound(operations, max_lag):
    harness = Harness(f"bounded:{max_lag}")
    try:
        served = harness.run(operations)
        for trace, strategy in served:
            assert trace.error is None, trace.error
            if trace.freshness == "hit":
                assert trace.version_lag <= max_lag
            else:
                # Anything recomputed is live data, byte for byte.
                assert trace.xml == harness.live_xml(strategy)
    finally:
        harness.close()


@given(operations=ops())
@settings(max_examples=40, deadline=None)
def test_manual_serves_cached_until_invalidated_then_live(operations):
    harness = Harness("manual")
    try:
        responses = {}  # strategy -> first cached bytes
        for trace, strategy in harness.run(operations):
            assert trace.error is None, trace.error
            if strategy in responses:
                # Manual: cached bytes are stable no matter the lag.
                assert trace.xml == responses[strategy]
            else:
                responses[strategy] = trace.xml
        # After eager invalidation the next response is live again.
        harness.server.invalidate_tables(
            ["hotel", "availability", "guestroom", "confroom", "metroarea"]
        )
        trace = harness.server.render(
            harness.view, harness.stylesheet, strategy="memoized"
        )
        assert trace.xml == harness.live_xml("memoized")
    finally:
        harness.close()

"""Regression tests: WriteTracker on drivers without write hooks.

The DuckDB path: ``WriteTracker.attach`` must degrade *loudly* (raise
:class:`~repro.errors.DriverCapabilityError`, leave the engine
untouched), never silently capture nothing — and the explicit
``record_write`` path must keep versioning correctly on such a driver.
A stub hookless driver pins the behavior without needing duckdb
installed; a real-duckdb variant runs when the module is present.
"""

from __future__ import annotations

import pytest

from repro.errors import DriverCapabilityError, DriverUnavailableError
from repro.maintenance.tracker import WriteTracker
from repro.relational.driver import SqliteDriver, resolve_driver
from repro.relational.engine import Database
from repro.relational.schema import Catalog, table


class HookslessDriver(SqliteDriver):
    """sqlite semantics, but no write hooks — the DuckDB capability
    shape on an engine that is installed everywhere."""

    name = "hooksless"
    supports_auto_capture = False

    def install_change_capture(self, connection, record) -> None:
        """Declared unsupported: raise, never silently no-op."""
        raise DriverCapabilityError(self.name, "auto change capture")


def _catalog() -> Catalog:
    return Catalog([
        table("t", ("id", "INTEGER"), ("v", "TEXT"), primary_key="id"),
    ])


@pytest.fixture()
def hookless_db():
    db = Database(_catalog(), driver=HookslessDriver())
    yield db
    db.close()


def test_auto_attach_degrades_loudly(hookless_db):
    tracker = WriteTracker()
    with pytest.raises(DriverCapabilityError):
        hookless_db.attach_tracker(tracker, auto=True)


def test_failed_auto_attach_leaves_engine_untracked(hookless_db):
    """The raise must happen before any tracker state lands: a
    half-attached engine (tracker set, hooks absent, explicit path
    standing down) would undercount silently — the worst outcome."""
    tracker = WriteTracker()
    with pytest.raises(DriverCapabilityError):
        hookless_db.attach_tracker(tracker, auto=True)
    assert hookless_db.tracker is None
    # Inserts after the failed attach record nothing on the tracker
    # (the engine is untracked) rather than half-recording.
    hookless_db.insert_rows("t", [{"id": 1, "v": "a"}])
    assert tracker.version("t") == 0
    # And a subsequent *explicit* attach works normally.
    hookless_db.attach_tracker(tracker, auto=False)
    hookless_db.insert_rows("t", [{"id": 2, "v": "b"}])
    assert tracker.version("t") == 1


def test_explicit_recording_versions_correctly(hookless_db):
    tracker = WriteTracker()
    hookless_db.attach_tracker(tracker, auto=False)
    hookless_db.insert_rows("t", [{"id": n, "v": "x"} for n in range(5)])
    assert tracker.version("t") == 1  # one bulk insert = one event
    assert tracker.rows_written == 5
    hookless_db.run_sql("UPDATE t SET v = 'y' WHERE id = 0")
    # Raw SQL is the caller's responsibility on the explicit path.
    assert tracker.version("t") == 1
    hookless_db.record_write("t")
    assert tracker.version("t") == 2


def test_detach_is_safe_on_hookless_driver(hookless_db):
    """Base remove_change_capture is a no-op, so detach never raises."""
    WriteTracker.detach(hookless_db)


def test_duckdb_attach_matches_stub_behavior():
    """The real DuckDB driver behaves exactly like the stub."""
    try:
        driver = resolve_driver("duckdb")
    except DriverUnavailableError as exc:
        pytest.skip(str(exc))
    tracker = WriteTracker()
    with Database(_catalog(), driver=driver) as db:
        with pytest.raises(DriverCapabilityError):
            db.attach_tracker(tracker, auto=True)
        assert db.tracker is None
        db.attach_tracker(tracker, auto=False)
        db.insert_rows("t", [{"id": 1, "v": "a"}])
        assert tracker.version("t") == 1

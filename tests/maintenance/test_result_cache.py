"""ResultCache: versioned lookup, LRU bounds, and invalidation."""

from __future__ import annotations

import threading

import pytest

from repro.maintenance import CachedResult, ResultCache, StalenessPolicy

STRICT = StalenessPolicy.strict()
MANUAL = StalenessPolicy.manual()


def store_simple(cache, key, versions, tables=("hotel",)):
    return cache.store(key, f"<xml key={key!r}/>", versions, tables)


def test_miss_then_hit_at_zero_lag():
    cache = ResultCache()
    entry, lag = cache.lookup("k", {"hotel": 0}, STRICT)
    assert entry is None and lag == 0
    store_simple(cache, "k", {"hotel": 0})
    entry, lag = cache.lookup("k", {"hotel": 0}, STRICT)
    assert entry is not None and lag == 0
    assert entry.xml == "<xml key='k'/>"
    assert entry.hits == 1
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1


def test_strict_rejects_any_lag_bounded_tolerates_it():
    cache = ResultCache()
    store_simple(cache, "k", {"hotel": 3})
    live = {"hotel": 5}  # two writes since the stamp
    entry, lag = cache.lookup("k", live, STRICT)
    assert entry is None and lag == 2
    assert cache.stats()["stale"] == 1
    entry, lag = cache.lookup("k", live, StalenessPolicy.bounded(2))
    assert entry is not None and lag == 2
    entry, _ = cache.lookup("k", live, StalenessPolicy.bounded(1))
    assert entry is None


def test_lag_sums_over_the_read_set_only():
    cache = ResultCache()
    cache.store(
        "k", "<x/>", {"hotel": 1, "availability": 4}, ("hotel", "availability")
    )
    live = {"hotel": 2, "availability": 6, "hotelchain": 99}
    _, lag = cache.lookup("k", live, MANUAL)
    assert lag == 3  # 1 on hotel + 2 on availability; hotelchain ignored


def test_manual_serves_regardless_of_lag():
    cache = ResultCache()
    store_simple(cache, "k", {"hotel": 0})
    entry, lag = cache.lookup("k", {"hotel": 10_000}, MANUAL)
    assert entry is not None and lag == 10_000


def test_store_overwrites_and_refreshes_the_stamp():
    cache = ResultCache()
    store_simple(cache, "k", {"hotel": 1})
    store_simple(cache, "k", {"hotel": 7})
    entry, lag = cache.lookup("k", {"hotel": 7}, STRICT)
    assert entry is not None and lag == 0
    assert len(cache) == 1


def test_lru_eviction_past_capacity():
    cache = ResultCache(capacity=2)
    store_simple(cache, "a", {})
    store_simple(cache, "b", {})
    cache.lookup("a", {}, MANUAL)  # touch: a is now MRU
    store_simple(cache, "c", {})  # evicts b
    assert cache.keys() == ["a", "c"]
    assert cache.stats()["evictions"] == 1
    assert "b" not in cache and "a" in cache


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        ResultCache(capacity=0)


def test_invalidate_single_key():
    cache = ResultCache()
    store_simple(cache, "k", {})
    assert cache.invalidate("k")
    assert not cache.invalidate("k")
    assert cache.stats()["invalidations"] == 1
    assert cache.lookup("k", {}, MANUAL)[0] is None


def test_invalidate_tables_drops_intersecting_entries_only():
    cache = ResultCache()
    cache.store("h", "<x/>", {}, ("hotel", "metroarea"))
    cache.store("a", "<x/>", {}, ("availability",))
    cache.store("c", "<x/>", {}, ("hotelchain",))
    assert cache.invalidate_tables(["hotel", "availability"]) == 2
    assert cache.keys() == ["c"]
    assert cache.stats()["invalidations"] == 2


def test_clear_drops_everything_but_keeps_history():
    cache = ResultCache()
    store_simple(cache, "a", {})
    store_simple(cache, "b", {})
    cache.lookup("a", {}, MANUAL)
    assert cache.clear() == 2
    assert len(cache) == 0
    assert cache.stats()["hits"] == 1  # lifetime counters survive


def test_unstamped_table_counts_from_version_zero():
    """An entry stamped before any write to T treats T's version as 0."""
    cache = ResultCache()
    cache.store("k", "<x/>", {}, ("hotel",))  # no stamp for hotel at all
    _, lag = cache.lookup("k", {"hotel": 2}, MANUAL)
    assert lag == 2


def test_concurrent_store_lookup_is_consistent():
    cache = ResultCache(capacity=16)
    errors = []

    def worker(worker_id):
        try:
            for i in range(100):
                key = f"k{(worker_id + i) % 8}"
                store_simple(cache, key, {"hotel": i})
                cache.lookup(key, {"hotel": i}, MANUAL)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] + stats["stale"] == 400
    assert len(cache) <= 16


def test_cached_result_dataclass_shape():
    entry = CachedResult(key="k", xml="<x/>")
    assert entry.versions == {} and entry.tables == ()
    assert entry.strategy == "" and entry.hits == 0

"""WriteTracker: explicit recording, auto capture, and version arithmetic."""

from __future__ import annotations

import threading

from repro.maintenance import WriteTracker
from repro.maintenance.tracker import _write_target
from repro.workloads.hotel import HotelDataSpec, build_hotel_database


# ---------------------------------------------------------------------------
# Explicit mode
# ---------------------------------------------------------------------------


def test_versions_start_at_zero_and_bump_by_one():
    tracker = WriteTracker()
    assert tracker.version("hotel") == 0
    assert tracker.record_write("hotel") == 1
    assert tracker.record_write("hotel") == 2
    assert tracker.record_write("availability") == 1
    assert tracker.snapshot() == {"hotel": 2, "availability": 1}
    assert tracker.clock() == 3


def test_rows_feed_the_row_counter_not_the_version():
    tracker = WriteTracker()
    tracker.record_write("hotel", rows=500)
    assert tracker.version("hotel") == 1
    assert tracker.rows_written == 500
    assert tracker.total_writes == 1


def test_versions_vector_covers_unwritten_tables():
    tracker = WriteTracker()
    tracker.record_write("hotel")
    assert tracker.versions(["hotel", "metroarea"]) == {
        "hotel": 1,
        "metroarea": 0,
    }


def test_lag_counts_only_requested_tables():
    tracker = WriteTracker()
    stamped = tracker.versions(["hotel", "availability"])
    tracker.record_write("hotel")
    tracker.record_write("hotel")
    tracker.record_write("availability")
    tracker.record_write("hotelchain")  # outside the read set
    assert tracker.lag(stamped, ["hotel", "availability"]) == 3
    assert tracker.lag(stamped, ["hotel"]) == 2
    assert tracker.lag(stamped, ["metroarea"]) == 0


def test_subscribers_see_each_bump():
    tracker = WriteTracker()
    events = []
    tracker.subscribe(lambda table, version: events.append((table, version)))
    tracker.record_write("a")
    tracker.record_write("a")
    tracker.record_write("b")
    assert events == [("a", 1), ("a", 2), ("b", 1)]


def test_concurrent_recording_loses_no_events():
    tracker = WriteTracker()

    def hammer():
        for _ in range(200):
            tracker.record_write("t")

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert tracker.version("t") == 800
    assert tracker.clock() == 800


def test_engine_insert_rows_records_explicitly():
    db = build_hotel_database(HotelDataSpec(metros=1, hotels_per_metro=1))
    tracker = WriteTracker()
    db.attach_tracker(tracker)  # explicit mode: no sqlite hooks
    db.insert_rows(
        "hotelchain",
        [{"chainid": 900, "companyname": "x", "hqstate": "IL"}],
    )
    assert tracker.version("hotelchain") == 1
    assert tracker.rows_written == 1
    db.close()


# ---------------------------------------------------------------------------
# Auto capture (sqlite authorizer + trace callback)
# ---------------------------------------------------------------------------


def auto_tracked_db():
    db = build_hotel_database(HotelDataSpec(metros=1, hotels_per_metro=2))
    tracker = WriteTracker()
    db.attach_tracker(tracker, auto=True)
    return db, tracker


def test_auto_capture_counts_each_statement_once():
    """The implicit BEGIN sqlite traces before a write must not bump."""
    db, tracker = auto_tracked_db()
    db.run_sql("UPDATE hotel SET pool = 1 - pool")
    db.run_sql("UPDATE hotel SET pool = 1 - pool")
    assert tracker.version("hotel") == 2
    db.close()


def test_auto_capture_ignores_reads():
    db, tracker = auto_tracked_db()
    db.run_sql("SELECT COUNT(*) FROM hotel")
    db.run_sql("SELECT * FROM availability WHERE price > 0")
    assert tracker.snapshot() == {}
    db.close()


def test_auto_capture_sees_insert_update_delete():
    db, tracker = auto_tracked_db()
    db.run_sql(
        "INSERT INTO hotelchain (chainid, companyname, hqstate) "
        "VALUES (901, 'c', 'NY')"
    )
    db.run_sql("UPDATE hotelchain SET hqstate = 'CA' WHERE chainid = 901")
    db.run_sql("DELETE FROM hotelchain WHERE chainid = 901")
    assert tracker.version("hotelchain") == 3
    db.close()


def test_auto_capture_survives_statement_cache_reuse():
    """Parameterized re-executions skip the authorizer (sqlite3 caches
    prepared statements) but still hit the trace callback."""
    db, tracker = auto_tracked_db()
    for slot in range(4):
        db.connection.execute(
            "UPDATE hotel SET pool = 1 - pool WHERE hotelid % 4 = ?",
            (slot,),
        )
        db.connection.commit()
    assert tracker.version("hotel") == 4
    db.close()


def test_auto_capture_counts_executemany_once_per_row_statement():
    db, tracker = auto_tracked_db()
    db.connection.executemany(
        "INSERT INTO hotelchain (chainid, companyname, hqstate) VALUES (?, ?, ?)",
        [(910, "a", "IL"), (911, "b", "NY"), (912, "c", "CA")],
    )
    db.connection.commit()
    # One bump per executed row-statement is acceptable; zero is the bug.
    assert tracker.version("hotelchain") >= 1
    db.close()


def test_auto_mode_suppresses_the_engine_explicit_record():
    """insert_rows must not double count when hooks already capture it."""
    db, tracker = auto_tracked_db()
    before = tracker.version("hotelchain")
    db.insert_rows(
        "hotelchain",
        [
            {"chainid": 920, "companyname": "a", "hqstate": "IL"},
            {"chainid": 921, "companyname": "b", "hqstate": "NY"},
        ],
    )
    bumps = tracker.version("hotelchain") - before
    # Hooks fire once per executed statement; the explicit path would
    # have added one more on top.
    assert 1 <= bumps <= 2
    db.close()


def test_detach_stops_capture():
    db, tracker = auto_tracked_db()
    db.run_sql("UPDATE hotel SET pool = 1 - pool")
    WriteTracker.detach(db)
    db.run_sql("UPDATE hotel SET pool = 1 - pool")
    assert tracker.version("hotel") == 1
    db.close()


def test_auto_capture_attached_directly():
    db = build_hotel_database(HotelDataSpec(metros=1, hotels_per_metro=1))
    tracker = WriteTracker()
    tracker.attach(db)  # attach directly, without Database.attach_tracker
    db.run_sql("DELETE FROM availability WHERE a_id = 1")
    assert tracker.version("availability") == 1
    db.close()


# ---------------------------------------------------------------------------
# DML target parsing
# ---------------------------------------------------------------------------


def test_write_target_parses_dml_forms():
    assert _write_target("INSERT INTO hotel VALUES (1)") == "hotel"
    assert _write_target("insert or replace into t2 (a) values (1)") == "t2"
    assert _write_target("REPLACE INTO logs VALUES (1)") == "logs"
    assert _write_target("UPDATE hotel SET pool = 0") == "hotel"
    assert _write_target("UPDATE OR IGNORE hotel SET pool = 0") == "hotel"
    assert _write_target("DELETE FROM availability") == "availability"
    assert _write_target('UPDATE "main"."hotel" SET pool = 0') == "hotel"
    assert _write_target("UPDATE [hotel] SET pool = 0") == "hotel"
    assert _write_target("  \n  DELETE FROM t") == "t"


def test_write_target_rejects_non_dml():
    assert _write_target("SELECT * FROM hotel") is None
    assert _write_target("BEGIN ") is None
    assert _write_target("COMMIT") is None
    assert _write_target("CREATE TABLE t (x)") is None
    assert _write_target("PRAGMA query_only=ON") is None

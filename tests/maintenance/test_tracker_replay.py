"""WriteTracker.replay_events: stamped replay with trim-gap synthesis."""

from __future__ import annotations

from repro.maintenance import WriteTracker


def test_replay_from_zero_yields_every_event_in_arrival_order():
    tracker = WriteTracker()
    tracker.record_write("hotel", keys=[1], columns=["name"])
    tracker.record_write("room", keys=[7], columns=["price"])
    tracker.record_write("hotel", keys=[2], columns=["pool"])
    events = tracker.replay_events({})
    assert [(e[0], e[1]) for e in events] == [
        ("hotel", 1), ("room", 1), ("hotel", 2),
    ]
    assert events[0][2] == frozenset({1})
    assert events[0][3] == frozenset({"name"})
    # Arrival timestamps are monotonic non-decreasing.
    stamps = [e[4] for e in events]
    assert stamps == sorted(stamps)


def test_replay_respects_the_stamped_vector():
    tracker = WriteTracker()
    for _ in range(3):
        tracker.record_write("hotel")
    tracker.record_write("room")
    events = tracker.replay_events({"hotel": 2})
    assert [(e[0], e[1]) for e in events] == [("hotel", 3), ("room", 1)]
    assert tracker.replay_events({"hotel": 3, "room": 1}) == []


def test_replay_synthesizes_untraceable_events_for_trimmed_versions():
    """Versions that fell off the bounded key log still replay — as
    key-less events stamped with the oldest surviving arrival time —
    so a replica's clock never silently skips observed history."""
    tracker = WriteTracker(key_log_limit=2)
    tracker.record_write("hotel", keys=[1], columns=["a"])
    tracker.record_write("hotel", keys=[2], columns=["b"])
    tracker.record_write("hotel", keys=[3], columns=["c"])  # trims v1
    events = tracker.replay_events({})
    assert [(e[0], e[1]) for e in events] == [
        ("hotel", 1), ("hotel", 2), ("hotel", 3),
    ]
    synthetic = events[0]
    assert synthetic[2] is None and synthetic[3] is None
    # The gap borrows the oldest surviving event's timestamp, so it
    # sorts (and becomes due on a delayed applier) no later than it.
    assert synthetic[4] == events[1][4]
    surviving = events[1]
    assert surviving[2] == frozenset({2})


def test_replaying_into_a_second_tracker_restores_version_parity():
    primary = WriteTracker()
    replica = WriteTracker()
    primary.record_write("hotel", keys=[1], columns=["name"])
    primary.record_write("availability", keys=[(1, 2)], columns=["price"])
    primary.record_write("hotel", keys=[4])
    for table, _version, keys, columns, _ts in primary.replay_events(
        replica.snapshot()
    ):
        replica.record_write(table, rows=0, keys=keys, columns=columns)
    assert replica.snapshot() == primary.snapshot()
    assert replica.clock() == primary.clock()
    # A second replay from the caught-up stamp is a no-op.
    assert primary.replay_events(replica.snapshot()) == []


def test_replayed_events_preserve_changes_since_detail():
    """The replica's own changes_since must answer like the primary's
    for the replayed range — split lineage, same delta answers."""
    primary = WriteTracker()
    replica = WriteTracker()
    stamp = {"hotel": 0}
    primary.record_write("hotel", keys=[1, 2], columns=["pool"])
    primary.record_write("hotel", keys=[3], columns=["name"])
    for table, _v, keys, columns, _ts in primary.replay_events({}):
        replica.record_write(table, rows=0, keys=keys, columns=columns)
    theirs = primary.changes_since(stamp, ["hotel"])["hotel"]
    ours = replica.changes_since(stamp, ["hotel"])["hotel"]
    assert ours.events == theirs.events == 2
    assert ours.keys == theirs.keys == frozenset({1, 2, 3})
    assert ours.columns == theirs.columns == frozenset({"pool", "name"})

"""Block-level delta maintenance: engagement, soundness bails, sharing.

The block path is the middle rung between row pushdown and node-level
re-evaluation: re-run a dirty subtree only under the parent blocks that
contain changed rows, and share every other block's subtree by
identity. These tests pin down when it engages (entity-local aggregate
payload writes), when it must decline (changes that can cross block
boundaries, untraceable writes, keys the probes cannot find), and that
declines always land on a correct slower path.
"""

from __future__ import annotations

import pytest

from repro.maintenance import (
    DeltaEvaluator,
    MaterializedState,
    WriteTracker,
    hotel_calendar_write,
    hotel_conference_write,
)
from repro.schema_tree.evaluator import ViewEvaluator, materialize
from repro.serving.fingerprint import node_read_sets
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view
from repro.xmlcore.nodes import Element
from repro.xmlcore.serializer import serialize

#: Scale 4 gives 12 metros and 16 served hotels, including metros with
#: several served hotels — the shape where cross-block effects (and the
#: sharing wins) actually show.
SPEC = HotelDataSpec().scaled(4)


@pytest.fixture()
def env():
    db = build_hotel_database(SPEC)
    view = figure1_view(db.catalog)
    capture: dict = {}
    document = ViewEvaluator(db, capture_instances=capture).materialize(view)
    state = MaterializedState(document=document, instances=capture)
    yield db, view, state, node_read_sets(view)
    db.close()


def _delta(db, view, state, reads, changes):
    return DeltaEvaluator(db).evaluate(
        view, state, reads, tuple(changes), changes=changes
    )


def _elements(document, tag):
    # The evaluator's document keeps sibling top-level elements (one per
    # metro tuple), so walk the document node itself, not root_element.
    return [el for el in document.iter_elements() if el.tag == tag]


def _write_and_changes(db, write, tables):
    tracker = WriteTracker()
    stamped = tracker.snapshot()
    write(db, tracker)
    return tracker.changes_since(stamped, tables)


def test_conference_write_block_splices_the_aggregates(env):
    db, view, state, reads = env
    changes = _write_and_changes(
        db,
        lambda db, tracker: hotel_conference_write(db, 0, tracker, hotels=1),
        ("confroom",),
    )
    result = _delta(db, view, state, reads, changes)
    # The grouped confstat nodes (per-metro and per-hotel) maintain at
    # block granularity; the confroom leaf row-splices.
    assert set(result.block_frontier_nodes) == {2, 4}
    assert result.blocks_spliced == 2  # one metro block + one hotel block
    assert result.rows_spliced > 0
    assert serialize(result.document) == serialize(materialize(view, db))


def test_conference_write_shares_untouched_subtrees_by_identity(env):
    db, view, state, reads = env
    old_metros = {id(el) for el in _elements(state.document, "metro")}
    old_hotels = {id(el) for el in _elements(state.document, "hotel")}
    changes = _write_and_changes(
        db,
        lambda db, tracker: hotel_conference_write(db, 0, tracker, hotels=1),
        ("confroom",),
    )
    result = _delta(db, view, state, reads, changes)
    metros = _elements(result.document, "metro")
    hotels = _elements(result.document, "hotel")
    # One hotel's confrooms changed: its metro element and its own
    # hotel element are rebuilt on the copy-spine, everything else is
    # the same object — the survival the fragment byte cache monetizes.
    assert sum(1 for el in metros if id(el) in old_metros) == len(metros) - 1
    assert sum(1 for el in hotels if id(el) in old_hotels) == len(hotels) - 1


def test_calendar_write_declines_block_splice_but_stays_exact(env):
    # startdate steers which derived context group an availability row
    # pairs with in the metro-wide count (Figure 1 node 7) — across
    # sibling hotels' blocks — so it is membership-bearing and block
    # maintenance must refuse. Node-level re-evaluation takes over.
    db, view, state, reads = env
    changes = _write_and_changes(
        db,
        lambda db, tracker: hotel_calendar_write(db, 0, tracker, hotels=1),
        ("availability",),
    )
    result = _delta(db, view, state, reads, changes)
    assert result.block_frontier_nodes == ()
    assert result.blocks_spliced == 0
    assert serialize(result.document) == serialize(materialize(view, db))


def test_calendar_write_changes_sibling_hotels():
    # Why the decline above is *required*: one hotel's calendar write
    # moves served counts under other hotels of the same metro.
    db = build_hotel_database(SPEC)
    try:
        view = figure1_view(db.catalog)
        metro, hotel = next(
            (row["metro_id"], row["h"])
            for row in db.run_sql(
                "SELECT metro_id, COUNT(*) AS n, MIN(hotelid) AS h "
                "FROM hotel WHERE starrating > 4 GROUP BY metro_id "
                "HAVING COUNT(*) > 1",
                {},
            )
        )

        def hotel_bytes():
            doc = materialize(view, db)
            return {
                el.attributes["hotelid"]: serialize(el)
                for el in _elements(doc, "hotel")
            }

        before = hotel_bytes()
        db.run_sql(
            "UPDATE availability SET startdate = CASE startdate "
            "WHEN '2003-06-09' THEN '2003-06-10' ELSE '2003-06-09' END "
            "WHERE a_r_id IN (SELECT r_id FROM guestroom "
            "WHERE rhotel_id = :h)",
            {"h": hotel},
        )
        after = hotel_bytes()
        changed = {hid for hid in before if before[hid] != after[hid]}
        assert len(changed) > 1, (
            "expected the write on one hotel to reach its metro siblings"
        )
    finally:
        db.close()


def test_phantom_key_fails_block_probe_coverage(env):
    # A recorded key the block probes cannot find could be a deleted
    # row whose old block they cannot name: the global coverage check
    # must refuse block splicing. (The row path's per-block check may
    # still proceed — a key that matches neither an old element nor a
    # fresh row is an out-of-view row with no effect on the view.)
    db, view, state, reads = env
    tracker = WriteTracker()
    stamped = tracker.snapshot()
    hotel_conference_write(db, 0, tracker, hotels=1)
    tracker.record_write(
        "confroom", rows=1, keys=[999_999], columns=("capacity",)
    )
    changes = tracker.changes_since(stamped, ("confroom",))
    assert 999_999 in changes["confroom"].keys
    result = _delta(db, view, state, reads, changes)
    assert result.blocks_spliced == 0
    assert serialize(result.document) == serialize(materialize(view, db))


def test_deleted_row_declines_row_and_block_splice(env):
    # An actual DELETE: the old document still holds the row's element,
    # so the row path's per-block membership check and the block path's
    # key coverage both refuse, and node-level re-evaluation drops it.
    db, view, state, reads = env
    victim = db.run_sql(
        "SELECT c_id FROM confroom WHERE chotel_id = "
        "(SELECT MIN(hotelid) FROM hotel WHERE starrating > 4)",
        {},
    )[0]["c_id"]
    tracker = WriteTracker()
    stamped = tracker.snapshot()
    db.run_sql("DELETE FROM confroom WHERE c_id = :c", {"c": victim})
    tracker.record_write(
        "confroom", rows=1, keys=[victim], columns=("capacity",)
    )
    changes = tracker.changes_since(stamped, ("confroom",))
    result = _delta(db, view, state, reads, changes)
    assert result.blocks_spliced == 0
    assert result.rows_spliced == 0
    assert serialize(result.document) == serialize(materialize(view, db))


def test_untraceable_write_uses_node_level(env):
    db, view, state, reads = env
    tracker = WriteTracker()
    stamped = tracker.snapshot()
    hotel_conference_write(db, 0, tracker=None, hotels=1)
    tracker.record_write("confroom", rows=1)  # no keys, no columns
    changes = tracker.changes_since(stamped, ("confroom",))
    assert changes["confroom"].keys is None
    result = _delta(db, view, state, reads, changes)
    assert result.blocks_spliced == 0
    assert result.rows_spliced == 0
    assert serialize(result.document) == serialize(materialize(view, db))


def test_block_splice_does_not_mutate_the_old_document(env):
    db, view, state, reads = env
    before = serialize(state.document)
    changes = _write_and_changes(
        db,
        lambda db, tracker: hotel_conference_write(db, 0, tracker, hotels=1),
        ("confroom",),
    )
    result = _delta(db, view, state, reads, changes)
    assert result.blocks_spliced == 2
    assert serialize(state.document) == before


def test_block_splices_chain(env):
    # Each spliced state is the input to the next write: the captured
    # instance maps must stay accurate across block splices.
    db, view, state, reads = env
    for step in range(4):
        changes = _write_and_changes(
            db,
            lambda db, tracker, step=step: hotel_conference_write(
                db, step, tracker, hotels=1
            ),
            ("confroom",),
        )
        result = _delta(db, view, state, reads, changes)
        assert result.blocks_spliced == 2, step
        assert serialize(result.document) == serialize(
            materialize(view, db)
        ), step
        state = result.state


def test_changes_since_merges_key_detail_across_events():
    tracker = WriteTracker()
    stamped = tracker.snapshot()
    tracker.record_write("confroom", rows=2, keys=[1, 2], columns=("capacity",))
    tracker.record_write("confroom", rows=1, keys=[5], columns=("capacity",))
    change = tracker.changes_since(stamped, ("confroom",))["confroom"]
    assert change.keys == frozenset({1, 2, 5})
    assert change.columns == frozenset({"capacity"})
    # One untraceable event poisons the union — None, never a subset.
    tracker.record_write("confroom", rows=1)
    change = tracker.changes_since(stamped, ("confroom",))["confroom"]
    assert change.keys is None and change.columns is None

"""Update-aware ViewServer: freshness states, sync, and invalidation.

Deterministic companion to the property suite in
``test_freshness_property.py``: every transition of the result-cache
state machine (miss -> hit -> stale-recompute, bypass, manual/eager
invalidation) is pinned down on the Figure 1 hotel workload.
"""

from __future__ import annotations

import pytest

from repro.maintenance import WriteTracker, hotel_write, hotel_write_tables
from repro.serving import FRESHNESS_STATES, PublishRequest, ViewServer
from repro.serving.fingerprint import view_read_set
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure4_stylesheet

SPEC = HotelDataSpec(metros=2, hotels_per_metro=3)


def make_env(staleness="strict", auto=False, maintenance="full"):
    db = build_hotel_database(SPEC, cross_thread=True)
    tracker = WriteTracker()
    db.attach_tracker(tracker, auto=auto)
    server = ViewServer(
        db.catalog,
        source=db,
        workers=2,
        tracker=tracker,
        staleness=staleness,
        maintenance=maintenance,
    )
    return db, tracker, server


@pytest.fixture()
def strict_env():
    db, tracker, server = make_env("strict")
    yield db, tracker, server
    server.close()
    db.close()


def request(db, **kwargs):
    return PublishRequest(
        figure1_view(db.catalog), figure4_stylesheet(), **kwargs
    )


def serve(server, db, **kwargs):
    trace = server.submit(request(db, **kwargs)).result()
    assert trace.error is None, trace.error
    return trace


# ---------------------------------------------------------------------------
# Freshness state machine
# ---------------------------------------------------------------------------


def test_miss_then_hit_then_stale_recompute(strict_env):
    db, tracker, server = strict_env
    first = serve(server, db)
    assert first.freshness == "miss" and first.version_lag == 0
    second = serve(server, db)
    assert second.freshness == "hit" and second.version_lag == 0
    assert second.xml == first.xml

    hotel_write(db, 0, tracker)  # availability write, in the read set
    third = serve(server, db)
    assert third.freshness == "stale-recompute"
    assert third.version_lag == 1
    # Recomputation re-primes the cache at the new versions.
    fourth = serve(server, db)
    assert fourth.freshness == "hit"
    assert fourth.xml == third.xml


def test_write_outside_the_read_set_does_not_invalidate(strict_env):
    db, tracker, server = strict_env
    read_set = view_read_set(figure1_view(db.catalog))
    assert "hotelchain" not in read_set
    assert set(hotel_write_tables()) <= set(read_set)

    serve(server, db)
    db.run_sql("UPDATE hotelchain SET hqstate = 'WA' WHERE chainid = 1")
    tracker.record_write("hotelchain")
    trace = serve(server, db)
    assert trace.freshness == "hit" and trace.version_lag == 0


def test_bypass_always_computes_and_never_caches(strict_env):
    db, tracker, server = strict_env
    one = serve(server, db, bypass_cache=True)
    assert one.freshness == "bypass"
    # Bypass did not populate the cache: the next cached request misses.
    two = serve(server, db)
    assert two.freshness == "miss"
    # And bypass ignores a populated cache too.
    three = serve(server, db, bypass_cache=True)
    assert three.freshness == "bypass"
    assert three.xml == two.xml


def test_strategies_cache_independently(strict_env):
    db, tracker, server = strict_env
    assert serve(server, db, strategy="memoized").freshness == "miss"
    assert serve(server, db, strategy="bulk").freshness == "miss"
    assert serve(server, db, strategy="memoized").freshness == "hit"
    assert serve(server, db, strategy="bulk").freshness == "hit"


def test_recomputed_bytes_match_the_post_write_database(strict_env):
    """After a write, strict recomputation serves the new data - the pool
    snapshot must have been refreshed before executing."""
    db, tracker, server = strict_env
    before = serve(server, db).xml
    # Toggle served membership: hotel 1 flips across the starrating>4
    # filter of Figure 1, so the served bytes must change.
    db.run_sql(
        "UPDATE hotel SET starrating = CASE WHEN starrating > 4 "
        "THEN 3 ELSE 5 END WHERE hotelid = 1"
    )
    tracker.record_write("hotel")
    after = serve(server, db)
    assert after.freshness == "stale-recompute"
    assert after.xml != before


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


def test_bounded_policy_serves_within_the_bound():
    db, tracker, server = make_env("bounded:2")
    try:
        serve(server, db)
        hotel_write(db, 0, tracker)
        hotel_write(db, 1, tracker)
        within = serve(server, db)
        assert within.freshness == "hit" and within.version_lag == 2
        hotel_write(db, 2, tracker)
        beyond = serve(server, db)
        assert beyond.freshness == "stale-recompute"
        assert beyond.version_lag == 3
    finally:
        server.close()
        db.close()


def test_manual_policy_serves_stale_until_invalidated():
    db, tracker, server = make_env("manual")
    try:
        stale = serve(server, db).xml
        db.run_sql(
            "UPDATE hotel SET starrating = CASE WHEN starrating > 4 "
            "THEN 3 ELSE 5 END WHERE hotelid = 1"
        )
        tracker.record_write("hotel")
        lagged = serve(server, db)
        assert lagged.freshness == "hit" and lagged.version_lag == 1
        assert lagged.xml == stale  # knowingly stale bytes

        dropped = server.invalidate_tables(["hotel"])
        assert dropped["results"] == 1 and dropped["plans"] == 1
        fresh = serve(server, db)
        assert fresh.freshness == "miss"
        assert fresh.xml != stale
    finally:
        server.close()
        db.close()


def test_invalidate_tables_is_scoped_to_the_read_set(strict_env):
    db, tracker, server = strict_env
    serve(server, db)
    assert server.invalidate_tables(["hotelchain"]) == {
        "plans": 0,
        "results": 0,
    }
    assert server.invalidate_tables(["availability"]) == {
        "plans": 1,
        "results": 1,
    }


# ---------------------------------------------------------------------------
# The read-then-stamp race: version stamps come from the selection snapshot
# ---------------------------------------------------------------------------


class RacyServer(ViewServer):
    """A server whose next ``_sync`` lands one extra tracked write first.

    Deterministically reproduces the read-then-stamp race: a write
    arriving between freshness classification (which read the version
    vector) and the pool refresh that recomputation reads from. Arm it
    with :meth:`arm_race`; the write fires exactly once.
    """

    def arm_race(self, db, tracker, step):
        self._race = (db, tracker, step)

    def _sync(self):
        race, self._race = getattr(self, "_race", None), None
        if race is not None:
            db, tracker, step = race
            hotel_write(db, step, tracker)
        super()._sync()


def racy_env(maintenance):
    db = build_hotel_database(SPEC, cross_thread=True)
    tracker = WriteTracker()
    db.attach_tracker(tracker)
    server = RacyServer(
        db.catalog,
        source=db,
        workers=2,
        tracker=tracker,
        staleness="strict",
        maintenance=maintenance,
    )
    return db, tracker, server


def test_racing_write_during_full_recompute_understates_freshness():
    """The full path stamps the entry with the vector read at
    classification, not one read after the sync - so a write racing the
    recompute shows up as staleness on the next request (an extra
    recompute) rather than ever being masked by a too-new stamp."""
    db, tracker, server = racy_env("full")
    try:
        server.arm_race(db, tracker, 0)
        first = serve(server, db)  # the racing write lands mid-request
        assert first.freshness == "miss"
        second = serve(server, db)
        assert second.freshness == "stale-recompute"
        assert second.version_lag == 1
        # The recompute that raced the write already read post-write
        # data (sync happened after the write): bytes are identical.
        assert second.xml == first.xml
        assert serve(server, db).freshness == "hit"
    finally:
        server.close()
        db.close()


def test_delta_adopts_a_racing_write_into_its_selection_snapshot():
    """The delta path re-reads the vector after syncing; a racing write
    is adopted into dirty-node selection (one retry), so the stamp,
    the selection, and the data all agree - the next request is a
    clean hit on live bytes."""
    db, tracker, server = racy_env("delta")
    try:
        serve(server, db)
        hotel_write(db, 0, tracker)  # entry is now stale
        server.arm_race(db, tracker, 1)  # second write lands inside sync
        trace = serve(server, db)
        assert trace.freshness == "delta-recompute"
        assert server.metrics()["delta_fallbacks"] == 0
        assert serve(server, db).freshness == "hit"
    finally:
        server.close()
        db.close()


def test_write_racing_the_splice_discards_the_delta(monkeypatch):
    """A write landing *during* the splice fails the post-splice vector
    check: the (possibly torn) delta is discarded and the request falls
    back to a full recompute whose answer reflects the racing write."""
    from repro.maintenance import DeltaEvaluator

    db, tracker, server = make_env(maintenance="delta")
    try:
        serve(server, db)
        hotel_write(db, 0, tracker)
        original = DeltaEvaluator.evaluate

        def racing_evaluate(self, *args, **kwargs):
            hotel_write(db, 1, tracker)  # sneaks in mid-evaluation
            return original(self, *args, **kwargs)

        monkeypatch.setattr(DeltaEvaluator, "evaluate", racing_evaluate)
        trace = serve(server, db)
        assert trace.freshness == "stale-recompute"  # fell back
        assert server.metrics()["delta_fallbacks"] == 1
        monkeypatch.undo()
        # The fallback stamped the pre-race vector (conservative), so
        # the racing write surfaces as one more recompute, then a hit.
        assert serve(server, db).freshness == "delta-recompute"
        assert serve(server, db).freshness == "hit"
    finally:
        server.close()
        db.close()


def test_delta_recompute_state_machine():
    """Delta mode's happy path through the freshness states: miss primes
    captured state, a write makes it stale, the recompute is a delta,
    and the spliced entry is a fresh hit afterwards."""
    db, tracker, server = make_env(maintenance="delta")
    try:
        assert serve(server, db).freshness == "miss"
        hotel_write(db, 0, tracker)
        trace = serve(server, db)
        assert trace.freshness == "delta-recompute"
        assert trace.dirty_nodes > 0
        assert serve(server, db).freshness == "hit"
        metrics = server.metrics()
        assert metrics["maintenance"] == "delta"
        assert metrics["freshness"]["delta-recompute"] == 1
        assert metrics["delta_fallbacks"] == 0
    finally:
        server.close()
        db.close()


# ---------------------------------------------------------------------------
# Auto-captured writes reach the server with no cooperation
# ---------------------------------------------------------------------------


def test_auto_captured_write_forces_strict_recompute():
    db, tracker, server = make_env("strict", auto=True)
    try:
        serve(server, db)
        db.run_sql("UPDATE hotel SET pool = 1 - pool")  # hooks record this
        trace = serve(server, db)
        assert trace.freshness == "stale-recompute"
    finally:
        server.close()
        db.close()


# ---------------------------------------------------------------------------
# Metrics and the untracked baseline
# ---------------------------------------------------------------------------


def test_metrics_report_freshness_and_maintenance_state(strict_env):
    db, tracker, server = strict_env
    serve(server, db)
    serve(server, db)
    hotel_write(db, 0, tracker)
    serve(server, db)
    serve(server, db, bypass_cache=True)

    metrics = server.metrics()
    assert metrics["freshness"] == {
        "miss": 1, "hit": 1, "stale-recompute": 1, "delta-recompute": 0,
        "bypass": 1, "degraded-stale": 0,
    }
    assert set(metrics["freshness"]) == set(FRESHNESS_STATES)
    assert metrics["maintenance"] == "full"
    assert metrics["delta_fallbacks"] == 0
    assert metrics["result_cache"]["size"] == 1
    assert metrics["staleness_policy"] == "strict"
    assert metrics["tracker"]["total_writes"] == 1
    assert metrics["tracker"]["versions"] == {"availability": 1}


def test_untracked_server_reports_bypass_only():
    db = build_hotel_database(SPEC)
    with ViewServer(db.catalog, source=db, workers=2) as server:
        trace = server.render(figure1_view(db.catalog))
        assert trace.freshness == "bypass" and trace.version_lag == 0
        metrics = server.metrics()
        assert metrics["freshness"]["bypass"] == 1
        assert "result_cache" not in metrics
        assert "tracker" not in metrics
        assert server.result_cache is None
    db.close()


def test_staleness_accepts_policy_objects():
    from repro.maintenance import StalenessPolicy

    db = build_hotel_database(SPEC, cross_thread=True)
    tracker = WriteTracker()
    server = ViewServer(
        db.catalog,
        source=db,
        tracker=tracker,
        staleness=StalenessPolicy.bounded(4),
    )
    try:
        assert server.staleness.describe() == "bounded:4"
    finally:
        server.close()
        db.close()

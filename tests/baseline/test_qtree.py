"""Tests for the QTree baseline of Jain/Mahajan/Suciu [7]."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.baseline.qtree import QTreeTranslator
from repro.sql.params import referenced_vars
from repro.workloads.paper import (
    figure1_view,
    figure4_stylesheet,
    qtree_compatible_stylesheet,
)
from repro.xslt.parser import parse_stylesheet


def test_rejects_parent_axis(hotel_db):
    """Section 6: QTree cannot handle '../hotel_available/../confroom'."""
    view = figure1_view(hotel_db.catalog)
    with pytest.raises(UnsupportedFeatureError) as exc:
        QTreeTranslator(view, figure4_stylesheet(), hotel_db.catalog)
    assert exc.value.feature == "parent-axis"


def test_one_sql_query_per_path(hotel_db):
    view = figure1_view(hotel_db.catalog)
    translator = QTreeTranslator(
        view, qtree_compatible_stylesheet(), hotel_db.catalog
    )
    assert len(translator.paths) == 1
    path = translator.paths[0]
    assert path.tags == ["/", "metro", "confroom"]
    # The flattened query is closed: no remaining binding parameters.
    assert referenced_vars(path.query) == []


def test_leaf_only_output_deficiency(hotel_db):
    """Interior rules' output is lost — the paper's critique, point (1)."""
    view = figure1_view(hotel_db.catalog)
    translator = QTreeTranslator(
        view, qtree_compatible_stylesheet(), hotel_db.catalog
    )
    result = translator.run(hotel_db)
    text_tags = {e.tag for e in result.document.iter_elements()}
    # Leaf confrooms are present; the interior result_metro wrappers are
    # NOT reproduced per metro (only path grouping exists).
    assert "confroom" in text_tags
    assert "result_metro" not in text_tags


def test_row_counts_match_correct_answer(hotel_db):
    """The leaf tuples themselves are right — only the structure is lost."""
    from repro.baseline.materialize import NaivePipeline

    view = figure1_view(hotel_db.catalog)
    stylesheet = qtree_compatible_stylesheet()
    naive = NaivePipeline(view, stylesheet).run(hotel_db)
    qtree = QTreeTranslator(view, stylesheet, hotel_db.catalog).run(hotel_db)
    naive_confrooms = [
        e for e in naive.document.iter_elements() if e.tag == "confroom"
    ]
    qtree_confrooms = [
        e for e in qtree.document.iter_elements() if e.tag == "confroom"
    ]
    assert len(naive_confrooms) == len(qtree_confrooms)


def test_multiple_paths_union(hotel_db):
    view = figure1_view(hotel_db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m>'
        '<xsl:apply-templates select="hotel/confroom"/>'
        '<xsl:apply-templates select="hotel/confstat"/>'
        "</m></xsl:template>"
        '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>'
        '<xsl:template match="hotel/confstat"><xsl:value-of select="."/></xsl:template>'
    )
    translator = QTreeTranslator(view, stylesheet, hotel_db.catalog)
    assert len(translator.paths) == 2
    result = translator.run(hotel_db)
    assert result.queries_executed == 2
    assert result.paths == 2


def test_sql_property(hotel_db):
    view = figure1_view(hotel_db.catalog)
    translator = QTreeTranslator(
        view, qtree_compatible_stylesheet(), hotel_db.catalog
    )
    sql = translator.paths[0].sql()
    assert sql.startswith("SELECT")
    assert "metroarea" in sql

"""Tests for the naive materialize-then-transform pipeline."""

from repro.baseline.materialize import NaivePipeline
from repro.schema_tree import materialize
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xmlcore import canonical_form
from repro.xslt import apply_stylesheet


def test_naive_pipeline_output_matches_direct_run(hotel_db):
    view = figure1_view(hotel_db.catalog)
    pipeline = NaivePipeline(view, figure4_stylesheet())
    result = pipeline.run(hotel_db)
    direct = apply_stylesheet(figure4_stylesheet(), materialize(view, hotel_db))
    assert canonical_form(result.document, ordered=False) == canonical_form(
        direct, ordered=False
    )


def test_naive_pipeline_counters(hotel_db):
    view = figure1_view(hotel_db.catalog)
    result = NaivePipeline(view, figure4_stylesheet()).run(hotel_db)
    assert result.elements_materialized > 0
    assert result.attributes_materialized > 0
    assert result.queries_executed > 0
    assert result.contexts_processed > 0
    assert result.rules_fired > 0


def test_naive_counts_every_view_node(hotel_db):
    """The naive pipeline materializes the whole view — including the
    hotel_available/metro_available branches Figure 4 never touches."""
    view = figure1_view(hotel_db.catalog)
    result = NaivePipeline(view, figure4_stylesheet()).run(hotel_db)
    doc = materialize(view, hotel_db)
    assert result.elements_materialized == sum(
        1 for _ in doc.iter_elements()
    )

"""HedgePolicy / RollingLatency / HedgeController unit tests.

The controller is the loop-agnostic half of hedging: it owns the
rolling per-plan latency windows, the trigger arithmetic, and the
global fire budget. The facade trusts it completely, so the boundaries
— min_samples, floor/cap clamping, and the atomic budget claim — are
pinned here.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ReproError
from repro.frontend import HedgeController, HedgePolicy, RollingLatency


class TestHedgePolicy:
    def test_defaults_are_valid(self):
        policy = HedgePolicy()
        assert policy.threshold_percentile == 95.0
        assert policy.priorities == ("interactive", "batch", "background")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold_percentile": 0.0},
            {"threshold_percentile": 101.0},
            {"min_samples": 0},
            {"window": 4, "min_samples": 8},
            {"delay_floor_ms": -1.0},
            {"delay_cap_ms": 0.0},
            {"delay_multiplier": 0.0},
            {"budget_fraction": 1.5},
            {"budget_fraction": -0.1},
            {"priorities": ()},
            {"priorities": ("interactive", "urgent")},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ReproError):
            HedgePolicy(**kwargs)

    def test_describe_mentions_the_knobs(self):
        text = HedgePolicy(budget_fraction=0.25).describe()
        assert "p95" in text
        assert "0.25" in text


class TestRollingLatency:
    def test_no_estimate_below_min_samples(self):
        window = RollingLatency(window=8)
        for value in (1.0, 2.0, 3.0):
            window.record(value)
        assert window.estimate(95.0, min_samples=4) is None
        window.record(4.0)
        assert window.estimate(95.0, min_samples=4) is not None

    def test_window_evicts_oldest(self):
        window = RollingLatency(window=4)
        for value in (100.0, 100.0, 100.0, 100.0):
            window.record(value)
        # Four fresh fast samples push every slow one out.
        for value in (1.0, 1.0, 1.0, 1.0):
            window.record(value)
        assert window.estimate(95.0, min_samples=4) == pytest.approx(1.0)

    def test_median_is_robust_to_tail_pollution(self):
        window = RollingLatency(window=20)
        for _ in range(16):
            window.record(2.0)
        for _ in range(4):  # 20% stall pollution
            window.record(40.0)
        assert window.estimate(50.0, min_samples=8) == pytest.approx(2.0)


class TestHedgeController:
    def policy(self, **kwargs):
        defaults = dict(
            threshold_percentile=50.0,
            min_samples=2,
            window=8,
            budget_fraction=0.5,
            delay_floor_ms=1.0,
            delay_cap_ms=100.0,
        )
        defaults.update(kwargs)
        return HedgePolicy(**defaults)

    def test_no_estimate_counts_and_returns_none(self):
        controller = HedgeController(self.policy())
        assert controller.delay_ms("plan") is None
        assert controller.stats()["no_estimate"] == 1
        assert controller.stats()["requests_seen"] == 1

    def test_delay_clamped_to_floor_and_cap(self):
        controller = HedgeController(
            self.policy(delay_floor_ms=10.0, delay_cap_ms=20.0)
        )
        for latency in (1.0, 1.0):
            controller.record_latency("fast", latency)
        assert controller.delay_ms("fast") == pytest.approx(10.0)
        for latency in (500.0, 500.0):
            controller.record_latency("slow", latency)
        assert controller.delay_ms("slow") == pytest.approx(20.0)

    def test_delay_scales_with_multiplier(self):
        controller = HedgeController(self.policy(delay_multiplier=3.0))
        for latency in (4.0, 4.0, 4.0):
            controller.record_latency("plan", latency)
        assert controller.delay_ms("plan") == pytest.approx(12.0)

    def test_estimators_are_per_key(self):
        controller = HedgeController(self.policy())
        for latency in (2.0, 2.0):
            controller.record_latency("a", latency)
        assert controller.delay_ms("a") is not None
        assert controller.delay_ms("b") is None
        assert controller.stats()["tracked_plans"] == 2

    def test_try_fire_budget_boundary_is_exact(self):
        # budget 0.5 of 4 seen requests = 2 hedges, not 3.
        controller = HedgeController(self.policy(budget_fraction=0.5))
        for latency in (2.0, 2.0):
            controller.record_latency("plan", latency)
        for _ in range(4):
            controller.delay_ms("plan")
        assert controller.try_fire()
        assert controller.try_fire()
        assert not controller.try_fire()
        stats = controller.stats()
        assert stats["fired"] == 2
        assert stats["budget_denials"] == 1
        assert stats["fire_rate"] == pytest.approx(0.5)

    def test_zero_budget_never_fires(self):
        controller = HedgeController(self.policy(budget_fraction=0.0))
        controller.delay_ms("plan")
        assert not controller.try_fire()

    def test_try_fire_is_atomic_under_contention(self):
        # 32 threads race for a budget of exactly 8; the check and the
        # increment happen in one critical section, so exactly 8 win.
        controller = HedgeController(self.policy(budget_fraction=0.25))
        for latency in (2.0, 2.0):
            controller.record_latency("plan", latency)
        for _ in range(32):
            controller.delay_ms("plan")
        start = threading.Barrier(32)
        results = []

        def racer():
            start.wait()
            results.append(controller.try_fire())

        threads = [threading.Thread(target=racer) for _ in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(results) == 8
        assert controller.stats()["fired"] == 8
        assert controller.stats()["budget_denials"] == 24

    def test_stats_rates(self):
        controller = HedgeController(self.policy())
        for latency in (2.0, 2.0):
            controller.record_latency("plan", latency)
        for _ in range(4):
            controller.delay_ms("plan")
        assert controller.try_fire()
        controller.record_won()
        assert controller.try_fire()
        controller.record_cancelled()
        stats = controller.stats()
        assert stats["fired"] == 2
        assert stats["won"] == 1
        assert stats["cancelled"] == 1
        assert stats["fire_rate"] == pytest.approx(0.5)
        assert stats["win_rate"] == pytest.approx(0.5)

    def test_reap_errors_start_zero_and_count(self):
        controller = HedgeController(self.policy())
        assert controller.stats()["reap_errors"] == 0
        controller.record_reap_error()
        controller.record_reap_error()
        assert controller.stats()["reap_errors"] == 2

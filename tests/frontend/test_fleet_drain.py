"""Graceful drain with hedge stragglers, and the reap-error counter.

The risk pinned here: a hedge loser parked on a slow or crashed fleet
member must never make ``drain``/``close`` hang, leak its socket or
worker thread, or silently swallow a broken cancellation path.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future

from repro.frontend import AsyncViewServer, HedgePolicy, build_hotel_app, serve_app
from repro.resilience import FaultPlan, FaultSpec
from repro.serving import PublishRequest

from tests.frontend.test_http import (
    raw_request,
    request_bytes,
    publish_body,
    split_response,
)


def _eager_hedge() -> HedgePolicy:
    return HedgePolicy(
        threshold_percentile=50.0,
        min_samples=2,
        window=8,
        budget_fraction=1.0,
        delay_floor_ms=1.0,
        delay_multiplier=1.0,
    )


def _fleet_threads() -> list[str]:
    return [
        thread.name
        for thread in threading.enumerate()
        if thread.name.startswith(("viewserver", "shardrouter"))
    ]


class ExplodingLoserBackend:
    """First submit stalls until cancelled — then *raises* instead of
    resolving to a cancelled trace; second submit wins instantly."""

    def __init__(self):
        self.calls = 0

    def submit(self, request: PublishRequest) -> Future:
        self.calls += 1
        attempt = self.calls
        future: Future = Future()

        def work():
            if attempt == 1:
                while not (request.cancel and request.cancel.cancelled):
                    time.sleep(0.002)
                future.set_exception(RuntimeError("cancellation path broke"))
            else:
                from tests.frontend.test_facade import FakeTrace

                future.set_result(FakeTrace("success", 0.01, attempt))

        threading.Thread(target=work, daemon=True).start()
        return future

    def close(self) -> None:
        pass


def test_reap_counter_surfaces_a_broken_cancellation_path():
    """A loser that raises out of the reap is not the request's fate —
    but it must land in ``reap_errors`` (the E19/E21 gates assert 0)."""

    async def scenario():
        backend = ExplodingLoserBackend()
        facade = AsyncViewServer(backend, hedge=_eager_hedge())
        for _ in range(2):
            facade.hedges.record_latency("fake|bulk", 5.0)
        trace = await facade.submit(
            PublishRequest(view=None, label="fake", strategy="bulk")
        )
        assert trace.outcome == "success"
        assert await facade.drain(timeout=5.0)
        assert not facade._reapers
        stats = facade.hedges.stats()
        assert stats["fired"] == 1
        assert stats["reap_errors"] == 1

    asyncio.run(scenario())


def test_http_drain_with_hedge_straggler_parked_on_stalled_member():
    """A hedge wins from the clean replica while the loser sits in a
    latency window on the primary; draining the HTTP server right after
    the response must settle the straggler — no hang, no leaked
    sockets, no leaked fleet threads, no reap errors."""
    faults = FaultPlan(
        FaultSpec(latency_rate=1.0, latency_ms=250.0), seed=0, enabled=False
    )
    app = build_hotel_app(
        scale=1,
        workers=2,
        replicas=1,
        hedge=_eager_hedge(),
        faults=faults,
    )

    async def scenario(server):
        # Clean exchanges teach the rolling estimator how fast the plan
        # is, so the armed request hedges at the ~1ms floor.
        for _ in range(2):
            raw = await raw_request(
                server,
                request_bytes(
                    "POST", "/publish",
                    publish_body(bypass_cache=True), close=True,
                ),
            )
            assert split_response(raw)[0] == 200
        faults.arm()
        start = time.perf_counter()
        raw = await raw_request(
            server,
            request_bytes(
                "POST", "/publish",
                publish_body(bypass_cache=True), close=True,
            ),
        )
        status, headers, _ = split_response(raw)
        assert status == 200
        # The response rode the hedge; the loser is still stalled on
        # the primary's 250ms latency window when the drain starts.
        assert await server.drain(timeout=10.0)
        drained_at = time.perf_counter() - start
        assert drained_at < 8.0  # straggler settled, no hang
        assert server.open_connections == 0
        stats = app.facade.hedges.stats()
        assert stats["fired"] >= 1
        assert stats["reap_errors"] == 0
        assert not app.facade._reapers

    async def main():
        server = await serve_app(app)
        try:
            await scenario(server)
        finally:
            await server.drain(timeout=5.0)
            await app.close()

    asyncio.run(main())
    # The fleet's pools and appliers are gone with the app.
    assert app.backend.outstanding() == 0
    deadline = time.monotonic() + 5.0
    while _fleet_threads() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert _fleet_threads() == []

"""AsyncViewServer loop-level tests: bridging, hedge races, reaping.

The facade's contract has three parts worth pinning precisely:

* exactly one response per submit (a hedge race never double-serves);
* the losing attempt is token-cancelled and reaped off the request
  path (the winner's response must not wait for a stalled loser);
* drain()/close() leave nothing behind — no reaper tasks, no
  in-flight attempts, no leaked backend work.

A deterministic fake backend drives the races; a real ViewServer
covers the integration path (plan-key bucketing, metrics shape).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import pytest

from repro.frontend import AsyncViewServer, HedgePolicy
from repro.serving import PublishRequest, ViewServer
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view


@dataclass
class FakeTrace:
    outcome: str
    total_seconds: float
    attempt: int


class FakeBackend:
    """Completes each submit after a scripted latency (token-aware).

    ``latencies[i]`` is the i-th call's serve time in seconds; a
    cancelled token resolves the attempt early with outcome
    ``"cancelled"``, mirroring the serving layer's cooperative
    cancellation.
    """

    def __init__(self, latencies):
        self.latencies = list(latencies)
        self.calls = 0
        self.live = 0
        self._lock = threading.Lock()

    def submit(self, request: PublishRequest) -> Future:
        with self._lock:
            attempt = self.calls
            self.calls += 1
            self.live += 1
        latency = self.latencies[attempt]
        future: Future = Future()

        def work():
            start = time.perf_counter()
            while time.perf_counter() - start < latency:
                if request.cancel is not None and request.cancel.cancelled:
                    elapsed = time.perf_counter() - start
                    with self._lock:
                        self.live -= 1
                    future.set_result(
                        FakeTrace("cancelled", elapsed, attempt)
                    )
                    return
                time.sleep(0.002)
            with self._lock:
                self.live -= 1
            future.set_result(FakeTrace("success", latency, attempt))

        threading.Thread(target=work, daemon=True).start()
        return future

    def close(self) -> None:
        pass


def eager_policy(**kwargs):
    """A policy whose hedge fires almost immediately."""
    defaults = dict(
        threshold_percentile=50.0,
        min_samples=1,
        window=8,
        delay_floor_ms=5.0,
        budget_fraction=1.0,
    )
    defaults.update(kwargs)
    return HedgePolicy(**defaults)


def request(**kwargs):
    defaults = dict(label="fake", strategy="bulk", priority="interactive")
    defaults.update(kwargs)
    return PublishRequest(view=None, **defaults)


class TestHedgeRace:
    def test_hedge_wins_and_loser_is_cancelled_and_reaped(self):
        async def scenario():
            backend = FakeBackend([0.5, 0.01])
            facade = AsyncViewServer(backend, hedge=eager_policy())
            facade.hedges.record_latency("fake|bulk", 5.0)
            trace = await facade.submit(request())
            assert trace.outcome == "success"
            assert trace.attempt == 1  # the hedge, not the primary
            # The winner returned while the primary was still stalled:
            # its cancellation resolves in the background reaper.
            assert await facade.drain(timeout=2.0)
            assert not facade._reapers
            assert backend.live == 0
            stats = facade.hedges.stats()
            assert stats["fired"] == 1
            assert stats["won"] == 1
            assert stats["cancelled"] == 1
            return trace

        asyncio.run(scenario())

    def test_winner_does_not_wait_for_stalled_loser(self):
        async def scenario():
            backend = FakeBackend([0.5, 0.01])
            facade = AsyncViewServer(backend, hedge=eager_policy())
            facade.hedges.record_latency("fake|bulk", 5.0)
            start = time.perf_counter()
            await facade.submit(request())
            elapsed = time.perf_counter() - start
            # delay (~5ms) + hedge serve (~10ms) + slack; far below the
            # primary's 500ms stall.
            assert elapsed < 0.3
            await facade.drain(timeout=2.0)

        asyncio.run(scenario())

    def test_primary_win_cancels_hedge(self):
        async def scenario():
            backend = FakeBackend([0.03, 0.5])
            facade = AsyncViewServer(backend, hedge=eager_policy())
            facade.hedges.record_latency("fake|bulk", 5.0)
            trace = await facade.submit(request())
            assert trace.attempt == 0
            assert await facade.drain(timeout=2.0)
            assert backend.live == 0
            stats = facade.hedges.stats()
            assert stats["fired"] == 1
            assert stats["won"] == 0
            assert stats["cancelled"] == 1

        asyncio.run(scenario())

    def test_no_double_serve_exactly_one_result(self):
        async def scenario():
            backend = FakeBackend([0.02, 0.02] * 8)
            facade = AsyncViewServer(backend, hedge=eager_policy())
            facade.hedges.record_latency("fake|bulk", 5.0)
            traces = await asyncio.gather(
                *[facade.submit(request()) for _ in range(8)]
            )
            assert len(traces) == 8
            assert all(t.outcome == "success" for t in traces)
            await facade.drain(timeout=2.0)
            assert backend.live == 0

        asyncio.run(scenario())

    def test_budget_exhausted_rides_primary_out(self):
        async def scenario():
            backend = FakeBackend([0.05])
            facade = AsyncViewServer(
                backend, hedge=eager_policy(budget_fraction=0.0)
            )
            facade.hedges.record_latency("fake|bulk", 5.0)
            trace = await facade.submit(request())
            assert trace.attempt == 0
            assert backend.calls == 1  # no hedge was ever launched
            assert facade.hedges.stats()["fired"] == 0
            assert facade.hedges.stats()["budget_denials"] == 1

        asyncio.run(scenario())

    def test_ineligible_priority_never_hedges_but_feeds_estimator(self):
        async def scenario():
            backend = FakeBackend([0.05])
            facade = AsyncViewServer(
                backend,
                hedge=eager_policy(priorities=("interactive",)),
            )
            facade.hedges.record_latency("fake|bulk", 5.0)
            trace = await facade.submit(request(priority="background"))
            assert trace.attempt == 0
            assert backend.calls == 1
            # its latency still lands in the rolling window
            assert len(facade.hedges._estimator("fake|bulk")) == 2

        asyncio.run(scenario())

    def test_caller_token_is_preserved(self):
        async def scenario():
            from repro.resilience import CancelToken

            backend = FakeBackend([5.0])
            facade = AsyncViewServer(backend)
            token = CancelToken()
            task = asyncio.ensure_future(
                facade.submit(request(cancel=token))
            )
            await asyncio.sleep(0.05)
            token.cancel("client vanished")
            trace = await task
            assert trace.outcome == "cancelled"

        asyncio.run(scenario())


class TestLifecycle:
    def test_drain_waits_for_inflight(self):
        async def scenario():
            backend = FakeBackend([0.1])
            facade = AsyncViewServer(backend)
            task = asyncio.ensure_future(facade.submit(request()))
            await asyncio.sleep(0.01)
            assert facade.inflight == 1
            assert await facade.drain(timeout=2.0)
            assert facade.inflight == 0
            assert (await task).outcome == "success"

        asyncio.run(scenario())

    def test_drain_timeout_returns_false(self):
        async def scenario():
            backend = FakeBackend([0.5])
            facade = AsyncViewServer(backend)
            task = asyncio.ensure_future(facade.submit(request()))
            await asyncio.sleep(0.01)
            assert not await facade.drain(timeout=0.05)
            await task

        asyncio.run(scenario())

    def test_closed_facade_rejects_new_work(self):
        async def scenario():
            backend = FakeBackend([])
            facade = AsyncViewServer(backend)
            await facade.close()
            with pytest.raises(RuntimeError):
                await facade.submit(request())

        asyncio.run(scenario())


class TestRealBackend:
    def test_submit_serves_and_buckets_by_plan_key(self):
        async def scenario(db):
            server = ViewServer(
                db.catalog, source=db, workers=2, keep_xml=True
            )
            facade = AsyncViewServer(
                server, hedge=eager_policy(), own_backend=True
            )
            view = figure1_view(db.catalog)
            req = PublishRequest(view=view, strategy="bulk")
            trace = await facade.submit(req)
            assert trace.outcome == "success"
            assert trace.xml
            # hedge keys are plan fingerprints, not labels
            assert facade.hedge_key(req) == server.plan_key_for(req)
            report = facade.metrics()
            assert report["hedging"]["requests_seen"] == 1
            assert report["frontend_inflight"] == 0
            await facade.close()

        db = build_hotel_database(HotelDataSpec(metros=2), seed=2003)
        try:
            asyncio.run(scenario(db))
        finally:
            db.close()

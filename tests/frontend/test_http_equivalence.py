"""HTTP front-door differential suite.

The contract under test: bytes served over the socket by ``POST
/publish`` are identical to what an independently-built in-process
:class:`ViewServer` produces for the same view, strategy, maintenance
mode, and write history. The app side ages its caches through the HTTP
``/write`` hook and serves between writes (so delta/fragment
maintenance actually runs); the reference side replays the same writes
on its own database and recomputes. Any divergence — in the HTTP
parsing, the JSON→request translation, the facade bridging, or the
maintenance machinery — shows up as a byte mismatch.
"""

from __future__ import annotations

import asyncio
import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend import build_hotel_app, serve_app
from repro.maintenance import MAINTENANCE_MODES, WriteTracker
from repro.maintenance.workload import hotel_write
from repro.schema_tree.evaluator import STRATEGIES
from repro.serving import PublishRequest, ViewServer
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import (
    figure1_view,
    figure4_stylesheet,
    figure17_stylesheet,
)

VIEWS = ("figure1", "figure4", "figure17")


class Reference:
    """The in-process half: same data, same writes, own ViewServer."""

    def __init__(self, maintenance: str):
        self.db = build_hotel_database(
            HotelDataSpec().scaled(1), cross_thread=True
        )
        tracker = WriteTracker()
        self.db.attach_tracker(tracker, auto=True)
        self.server = ViewServer(
            self.db.catalog,
            source=self.db,
            workers=2,
            keep_xml=True,
            tracker=tracker,
            staleness="strict",
            maintenance=maintenance,
        )
        view = figure1_view(self.db.catalog)
        self.entries = {
            "figure1": (view, None),
            "figure4": (view, figure4_stylesheet()),
            "figure17": (view, figure17_stylesheet()),
        }
        self.writes = 0

    def serve(self, name: str, strategy: str) -> bytes:
        view, stylesheet = self.entries[name]
        request = PublishRequest(
            view, stylesheet, strategy=strategy, label=f"ref/{name}"
        )
        trace = self.server.submit(request).result()
        assert trace.outcome == "success", trace.error
        return trace.xml.encode("utf-8")

    def write(self) -> None:
        hotel_write(self.db, self.writes)
        self.writes += 1

    def close(self) -> None:
        self.server.close()
        self.db.close()


async def _post(reader, writer, path: str, payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    head = (
        f"POST {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode()
    writer.write(head + body)
    await writer.drain()
    raw = await reader.readuntil(b"\r\n\r\n")
    lines = raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    length = 0
    for line in lines[1:]:
        if line.lower().startswith("content-length:"):
            length = int(line.split(":", 1)[1])
    response = await reader.readexactly(length)
    assert status == 200, response
    return response


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    strategy=st.sampled_from(STRATEGIES),
    maintenance=st.sampled_from(MAINTENANCE_MODES),
    n_writes=st.integers(0, 3),
    bypass_cache=st.booleans(),
)
def test_http_bytes_match_in_process_bytes(
    strategy, maintenance, n_writes, bypass_cache
):
    app = build_hotel_app(
        scale=1, workers=2, staleness="strict", maintenance=maintenance
    )
    reference = Reference(maintenance)

    async def scenario():
        server = await serve_app(app)
        try:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            # Serve every view between writes on one keep-alive
            # connection, so maintenance runs against warm caches.
            for round_index in range(n_writes + 1):
                for name in VIEWS:
                    served = await _post(
                        reader,
                        writer,
                        "/publish",
                        {
                            "view": name,
                            "strategy": strategy,
                            "bypass_cache": bypass_cache,
                        },
                    )
                    expected = reference.serve(name, strategy)
                    assert served == expected, (
                        f"byte mismatch for {name}/{strategy} "
                        f"({maintenance}, round {round_index})"
                    )
                if round_index < n_writes:
                    await _post(reader, writer, "/write", {})
                    reference.write()
            writer.close()
            await writer.wait_closed()
        finally:
            await server.drain(timeout=5.0)

    try:
        asyncio.run(scenario())
    finally:
        asyncio.run(app.close())
        reference.close()

"""Priority-class admission: shed ordering under a saturated server.

With workers=1 and queue_limit=3 the class limits are interactive 4,
batch 3, background 2 (``workers + queue_limit * fraction``). A
deterministically blocked worker lets the test walk the in-flight count
through each boundary and watch exactly which class gets refused:
background first, batch next, interactive last — never the other way
around.
"""

from __future__ import annotations

import threading

from repro.resilience import FaultPlan, FaultSpec, ResiliencePolicy
from repro.serving import PublishRequest, ViewServer
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view


class BlockingPlan(FaultPlan):
    """Stalls the first query check until ``release`` is set."""

    def __init__(self):
        super().__init__(FaultSpec(), seed=0)
        self.started = threading.Event()
        self.release = threading.Event()
        self._blocked = False

    def check_query(self, site):
        self._advance(site)
        with self._lock:
            first = not self._blocked
            self._blocked = True
        if first:
            self.started.set()
            assert self.release.wait(timeout=30)
        return None


def _request(db, priority):
    return PublishRequest(view=figure1_view(db.catalog), priority=priority)


def test_shed_order_background_then_batch_never_interactive():
    db = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=2))
    faults = BlockingPlan()
    policy = ResiliencePolicy(queue_limit=3)
    with ViewServer(
        db.catalog, source=db, workers=1, resilience=policy, faults=faults
    ) as server:
        assert server.admission_limit("interactive") == 4
        assert server.admission_limit("batch") == 3
        assert server.admission_limit("background") == 2

        pending = [server.submit(_request(db, "interactive"))]
        assert faults.started.wait(timeout=10)  # the worker is parked

        # inflight 1: every class still fits.
        pending.append(server.submit(_request(db, "background")))
        # inflight 2 = background's limit: background sheds, batch fits.
        shed_bg = server.submit(_request(db, "background")).result()
        assert shed_bg.outcome == "rejected"
        pending.append(server.submit(_request(db, "batch")))
        # inflight 3 = batch's limit: batch sheds too, interactive fits.
        assert server.submit(_request(db, "batch")).result().outcome == "rejected"
        assert server.submit(_request(db, "background")).result().outcome == "rejected"
        pending.append(server.submit(_request(db, "interactive")))
        # inflight 4 = the hard limit: now even interactive sheds.
        shed_int = server.submit(_request(db, "interactive")).result()
        assert shed_int.outcome == "rejected"

        faults.release.set()
        outcomes = [future.result().outcome for future in pending]
        assert outcomes == ["success"] * 4

        priority = server.metrics()["priority"]
        assert priority["interactive"]["shed"] == 1
        assert priority["batch"]["shed"] == 1
        assert priority["background"]["shed"] == 2
        assert priority["interactive"]["outcomes"]["success"] == 2
        assert priority["batch"]["outcomes"]["success"] == 1
        assert priority["background"]["outcomes"]["success"] == 1
    db.close()


def test_shed_traces_name_the_class_budget():
    db = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=2))
    faults = BlockingPlan()
    policy = ResiliencePolicy(queue_limit=0)
    with ViewServer(
        db.catalog, source=db, workers=1, resilience=policy, faults=faults
    ) as server:
        first = server.submit(_request(db, "interactive"))
        assert faults.started.wait(timeout=10)
        shed = server.submit(_request(db, "background")).result()
        assert shed.outcome == "rejected"
        assert shed.priority == "background"
        assert "shed" in shed.error
        faults.release.set()
        assert first.result().outcome == "success"
    db.close()

"""FrontendServer behaviors over real loopback sockets.

Every test speaks actual HTTP/1.1 bytes through asyncio streams —
no test client shims — because the parser, the keep-alive loop, and
the drain path ARE the subject under test.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.frontend import build_hotel_app, serve_app


@pytest.fixture(scope="module")
def app_env():
    app = build_hotel_app(scale=1, workers=2)
    yield app
    asyncio.run(app.close())


def http_exchange(scenario):
    """Run an async scenario(server) against a fresh listener.

    Tears the listener down with ``drain`` (not ``close``) so the
    module-scoped app survives for the next test.
    """

    async def main(app):
        server = await serve_app(app)
        try:
            return await scenario(server)
        finally:
            await server.drain(timeout=5.0)

    return main


async def raw_request(server, payload: bytes) -> bytes:
    """One connection, one raw byte exchange, read to EOF."""
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload)
    await writer.drain()
    writer.write_eof()
    response = await reader.read()
    writer.close()
    await writer.wait_closed()
    return response


def request_bytes(
    method: str,
    path: str,
    body: bytes = b"",
    close: bool = False,
    extra_headers: tuple = (),
) -> bytes:
    headers = [f"{method} {path} HTTP/1.1", "Host: test"]
    if body:
        headers.append(f"Content-Length: {len(body)}")
    if close:
        headers.append("Connection: close")
    headers.extend(extra_headers)
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body


def publish_body(view="figure4", **kwargs) -> bytes:
    payload = {"view": view, "strategy": "nested-loop"}
    payload.update(kwargs)
    return json.dumps(payload).encode()


def split_response(raw: bytes) -> tuple[int, dict, bytes]:
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(": ")
        headers[name.lower()] = value
    return status, headers, body


class TestPublish:
    def test_publish_returns_the_view_bytes(self, app_env):
        async def scenario(server):
            raw = await raw_request(
                server,
                request_bytes(
                    "POST", "/publish", publish_body(), close=True
                ),
            )
            status, headers, body = split_response(raw)
            assert status == 200
            assert headers["content-type"] == "application/xml"
            assert headers["x-repro-outcome"] == "success"
            assert body.lstrip().startswith(b"<")
            return body

        app = app_env
        served = asyncio.run(http_exchange(scenario)(app))
        # byte-identical to an in-process serve of the same request
        async def direct(app):
            trace = await app.facade.submit(
                app.request_for("figure4", "nested-loop", "interactive")
            )
            return trace.xml.encode("utf-8")

        assert served == asyncio.run(direct(app))

    def test_unknown_view_is_a_400(self, app_env):
        async def scenario(server):
            raw = await raw_request(
                server,
                request_bytes(
                    "POST",
                    "/publish",
                    publish_body(view="figure99"),
                    close=True,
                ),
            )
            status, _, body = split_response(raw)
            assert status == 400
            assert b"figure99" in body

        asyncio.run(http_exchange(scenario)(app_env))

    def test_bad_json_is_a_400(self, app_env):
        async def scenario(server):
            raw = await raw_request(
                server,
                request_bytes(
                    "POST", "/publish", b"{not json", close=True
                ),
            )
            status, _, _ = split_response(raw)
            assert status == 400

        asyncio.run(http_exchange(scenario)(app_env))


class TestProtocol:
    def test_keep_alive_serves_many_on_one_connection(self, app_env):
        async def scenario(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            for _ in range(3):
                writer.write(
                    request_bytes("GET", "/healthz")
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                status, headers, _ = split_response(head)
                assert status == 200
                assert headers["connection"] == "keep-alive"
                body = await reader.readexactly(
                    int(headers["content-length"])
                )
                assert json.loads(body)["status"] == "ok"
            assert server.open_connections == 1
            writer.close()
            await writer.wait_closed()

        asyncio.run(http_exchange(scenario)(app_env))

    def test_connection_close_is_honored(self, app_env):
        async def scenario(server):
            raw = await raw_request(
                server, request_bytes("GET", "/healthz", close=True)
            )
            _, headers, _ = split_response(raw)
            assert headers["connection"] == "close"

        asyncio.run(http_exchange(scenario)(app_env))

    def test_unknown_path_404_and_wrong_method_405(self, app_env):
        async def scenario(server):
            raw = await raw_request(
                server, request_bytes("GET", "/nope", close=True)
            )
            assert split_response(raw)[0] == 404
            raw = await raw_request(
                server, request_bytes("GET", "/publish", close=True)
            )
            assert split_response(raw)[0] == 405

        asyncio.run(http_exchange(scenario)(app_env))

    def test_malformed_request_line_is_a_400(self, app_env):
        async def scenario(server):
            raw = await raw_request(server, b"NONSENSE\r\n\r\n")
            assert split_response(raw)[0] == 400
            assert server.protocol_errors >= 1

        asyncio.run(http_exchange(scenario)(app_env))

    def test_chunked_bodies_are_rejected(self, app_env):
        async def scenario(server):
            payload = (
                b"POST /publish HTTP/1.1\r\nHost: t\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                b"0\r\n\r\n"
            )
            raw = await raw_request(server, payload)
            assert split_response(raw)[0] == 400

        asyncio.run(http_exchange(scenario)(app_env))

    def test_oversized_body_is_a_413(self, app_env):
        async def scenario(server):
            payload = (
                b"POST /publish HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 99999999\r\n\r\n"
            )
            raw = await raw_request(server, payload)
            assert split_response(raw)[0] == 413

        asyncio.run(http_exchange(scenario)(app_env))


class TestLifecycle:
    async def _roundtrip(self, reader, writer):
        writer.write(request_bytes("GET", "/healthz"))
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        status, headers, _ = split_response(head)
        body = await reader.readexactly(int(headers["content-length"]))
        return status, json.loads(body)

    def test_draining_connections_get_503_and_close(self, app_env):
        async def scenario(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            status, health = await self._roundtrip(reader, writer)
            assert status == 200 and health["status"] == "ok"
            # Flip the drain flag without tearing sockets down yet: a
            # parked keep-alive connection that speaks mid-drain must
            # be refused with 503 and closed.
            server._draining = True
            writer.write(request_bytes("GET", "/healthz"))
            await writer.drain()
            rest = await reader.read()  # to EOF: server closed it
            assert split_response(rest)[0] == 503
            writer.close()
            await writer.wait_closed()

        asyncio.run(http_exchange(scenario)(app_env))

    def test_drain_zeroes_sockets_and_stops_accepting(self, app_env):
        async def scenario(server):
            host, port = server.address
            # Park a keep-alive connection, then drain under it.
            reader, writer = await asyncio.open_connection(host, port)
            status, _ = await self._roundtrip(reader, writer)
            assert status == 200
            assert server.open_connections == 1
            assert await server.drain(timeout=5.0)
            # The parked socket is force-closed by the drain.
            assert await reader.read() == b""
            writer.close()
            await writer.wait_closed()
            for _ in range(100):
                if server.open_connections == 0:
                    break
                await asyncio.sleep(0.01)
            assert server.open_connections == 0
            # And the listener no longer accepts new connections.
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)

        asyncio.run(http_exchange(scenario)(app_env))

    def test_metrics_exposes_hedging_and_priority_sections(self):
        from repro.frontend import HedgePolicy

        async def scenario(server):
            raw = await raw_request(
                server, request_bytes("GET", "/metrics", close=True)
            )
            status, _, body = split_response(raw)
            assert status == 200
            report = json.loads(body)
            assert "hedging" in report
            assert report["hedging"]["policy"]
            assert "priority" in report
            for cls in ("interactive", "batch", "background"):
                assert "shed" in report["priority"][cls]

        app = build_hotel_app(scale=1, workers=2, hedge=HedgePolicy())
        try:
            asyncio.run(http_exchange(scenario)(app))
        finally:
            asyncio.run(app.close())

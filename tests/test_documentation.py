"""Documentation quality gates: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


ALL_MODULES = sorted(iter_modules())


def test_packages_discovered():
    assert "repro.core.compose" in ALL_MODULES
    assert "repro.xslt.processor" in ALL_MODULES
    assert len(ALL_MODULES) > 30


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_callables_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
            continue
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not (
                    member.__doc__ and member.__doc__.strip()
                ):
                    missing.append(f"{name}.{member_name}")
    assert not missing, f"{module_name}: missing docstrings on {missing}"


def test_readme_and_design_exist():
    import os

    root = os.path.join(os.path.dirname(repro.__file__), "..", "..")
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = os.path.join(root, name)
        assert os.path.exists(path), name
        with open(path) as handle:
            assert len(handle.read()) > 1000, f"{name} looks empty"

"""Unit tests for the strategy runners used by experiments/benchmarks."""

import pytest

from repro.harness.runners import run_composed, run_hybrid, run_naive, run_qtree
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import (
    figure1_view,
    figure4_stylesheet,
    qtree_compatible_stylesheet,
)


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(HotelDataSpec(metros=2))
    yield database
    database.close()


@pytest.fixture(scope="module")
def view(db):
    return figure1_view(db.catalog)


def test_run_naive_counters(db, view):
    run = run_naive(view, figure4_stylesheet(), db)
    assert run.strategy == "naive"
    assert run.seconds > 0
    assert run.queries > 0
    assert run.elements_materialized > 0


def test_run_composed_matches_and_reports_compose_time(db, view):
    naive = run_naive(view, figure4_stylesheet(), db)
    composed = run_composed(view, figure4_stylesheet(), db.catalog, db)
    assert composed.matches(naive)
    assert composed.compose_seconds > 0
    assert composed.queries < naive.queries


def test_run_composed_with_precomposed_view(db, view):
    from repro.core import compose

    precomposed = compose(view, figure4_stylesheet(), db.catalog)
    run = run_composed(
        view, figure4_stylesheet(), db.catalog, db, precomposed=precomposed
    )
    assert run.elements_materialized > 0


def test_run_qtree_notes_paths(db, view):
    run = run_qtree(view, qtree_compatible_stylesheet(), db.catalog, db)
    assert run.strategy == "qtree"
    assert any("path queries" in note for note in run.notes)


def test_run_hybrid_reports_plan_kind(db, view):
    run = run_hybrid(view, figure4_stylesheet(), db.catalog, db)
    assert run.strategy == "hybrid/composed"
    naive = run_naive(view, figure4_stylesheet(), db)
    assert run.matches(naive)

"""Smoke + shape tests for the experiment harness (tiny sweeps)."""

import pytest

from repro.harness.experiments import (
    e1_end_to_end,
    e2_materialization,
    e3_selectivity,
    e4_compose_scaling_view,
    e5_compose_scaling_stylesheet,
    e6_tvq_blowup,
    e7_predicates,
    e8_recursion,
    e9_optimizer_ablation,
    e10_memoization,
)
from repro.harness.reporting import ExperimentResult, render_markdown


def test_e1_composed_matches_naive_qtree_does_not():
    result = e1_end_to_end([1])
    row = result.rows[0]
    headers = result.headers
    assert row[headers.index("composed==naive")] == "True"
    assert row[headers.index("qtree==naive")] == "False"


def test_e2_composed_materializes_fewer_elements():
    result = e2_materialization([1, 2])
    for row in result.rows:
        naive = int(row[1])
        composed = int(row[2])
        assert composed < naive
        assert row[-1] == "True"


def test_e3_selectivity_rows_all_equal_output():
    result = e3_selectivity(branches=4, touched_values=[1, 4])
    assert all(row[-1] == "True" for row in result.rows)


def test_e4_tvq_grows_linearly_for_chains():
    result = e4_compose_scaling_view([2, 4, 8])
    sizes = [int(row[3]) for row in result.rows]
    assert sizes == [3, 5, 9]  # root rule node + one per level


def test_e5_runs():
    result = e5_compose_scaling_stylesheet(levels=6, depths=[2, 6])
    assert len(result.rows) == 2


def test_e6_blowup_is_exponential():
    result = e6_tvq_blowup([2, 4, 6])
    sizes = [int(row[2]) for row in result.rows]
    assert sizes == [7, 31, 127]  # 2^(k+1) - 1


def test_e7_equal_outputs():
    result = e7_predicates([1])
    assert result.rows[0][-1] == "True"


def test_e8_round_counts_agree():
    result = e8_recursion([2])
    row = result.rows[0]
    assert row[3] == "hybrid/recursive"
    assert row[4] == row[5]


def test_reporting_markdown_and_console():
    result = ExperimentResult("EX", "title", ["a", "b"])
    result.add_row(1, 2.5)
    result.notes.append("a note")
    markdown = result.to_markdown()
    assert "| a | b |" in markdown
    assert "| 1 | 2.50 |" in markdown
    assert "*a note*" in markdown
    console = result.to_console()
    assert "EX: title" in console
    combined = render_markdown([result], preamble="# Results")
    assert combined.startswith("# Results")


def test_e9_pruning_preserves_output():
    result = e9_optimizer_ablation([1])
    row = result.rows[0]
    assert row[-1] == "True"
    assert int(row[3]) > 0


def test_e10_memoization_saves_queries_and_stays_equal():
    result = e10_memoization([2])
    row = result.rows[0]
    assert row[-1] == "True"
    assert int(row[4]) <= int(row[3])
    assert int(row[5]) > 0


def test_e11_ordered_equivalence():
    from repro.harness.experiments import e11_document_order

    result = e11_document_order([1])
    assert result.rows[0][-1] == "True"

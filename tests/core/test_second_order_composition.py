"""Closure: composed views are themselves composable.

``compose(v, x1)`` returns an ordinary schema-tree query, so a second
stylesheet can compose over it: ``compose(compose(v, x1), x2)(I)``
must equal ``x2(x1(v(I)))``. The second composition exercises the
query-less wrapper nodes composed views contain.
"""

import pytest

from repro.core import compose
from repro.errors import UnsupportedFeatureError
from repro.schema_tree import materialize
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xmlcore import canonical_form
from repro.xslt import apply_stylesheet, parse_stylesheet


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(HotelDataSpec(metros=3, hotels_per_metro=4))
    yield database
    database.close()


@pytest.fixture(scope="module")
def first_composed(db):
    view = figure1_view(db.catalog)
    return compose(view, figure4_stylesheet(), db.catalog)


SECOND = (
    '<xsl:template match="/"><page><xsl:apply-templates select="HTML/BODY/result_metro"/></page></xsl:template>'
    '<xsl:template match="result_metro"><section>'
    '<xsl:apply-templates select="result_confstat/confroom"/>'
    "</section></xsl:template>"
    '<xsl:template match="confroom"><room cap="{@capacity}"/></xsl:template>'
)


def test_second_order_equivalence(db, first_composed):
    second = parse_stylesheet(SECOND)
    twice_composed = compose(first_composed, second, db.catalog)
    # Reference: interpret x2 over the materialized first composition.
    intermediate = materialize(first_composed, db)
    expected = apply_stylesheet(second, intermediate)
    actual = materialize(twice_composed, db)
    assert canonical_form(expected, ordered=False) == canonical_form(
        actual, ordered=False
    )


def test_second_order_equals_sequential_interpretation(db, first_composed):
    """compose(compose(v,x1),x2)(I) == x2(x1(v(I)))."""
    view = figure1_view(db.catalog)
    second = parse_stylesheet(SECOND)
    x1_result = apply_stylesheet(figure4_stylesheet(), materialize(view, db))
    expected = apply_stylesheet(second, x1_result)
    twice_composed = compose(first_composed, second, db.catalog)
    actual = materialize(twice_composed, db)
    assert canonical_form(expected, ordered=False) == canonical_form(
        actual, ordered=False
    )


def test_queryless_navigation_through_wrappers(db, first_composed):
    """Selecting the literal HTML/BODY wrappers themselves."""
    second = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="HTML/BODY"/></xsl:template>'
        '<xsl:template match="BODY"><body_found><xsl:apply-templates select="result_metro"/></body_found></xsl:template>'
        '<xsl:template match="result_metro"><m/></xsl:template>'
    )
    twice = compose(first_composed, second, db.catalog)
    intermediate = materialize(first_composed, db)
    expected = apply_stylesheet(second, intermediate)
    actual = materialize(twice, db)
    assert canonical_form(expected, ordered=False) == canonical_form(
        actual, ordered=False
    )


def test_predicate_on_queryless_wrapper_rejected(db, first_composed):
    second = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="HTML/BODY[@class=1]"/></xsl:template>'
        '<xsl:template match="BODY"><b/></xsl:template>'
    )
    with pytest.raises(UnsupportedFeatureError) as exc:
        compose(first_composed, second, db.catalog)
    assert exc.value.feature == "queryless-target"


def test_value_of_on_queryless_wrapper(db, first_composed):
    second = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="HTML/HEAD"/></xsl:template>'
        '<xsl:template match="HEAD"><xsl:value-of select="."/></xsl:template>'
    )
    twice = compose(first_composed, second, db.catalog)
    intermediate = materialize(first_composed, db)
    expected = apply_stylesheet(second, intermediate)
    actual = materialize(twice, db)
    assert canonical_form(expected, ordered=False) == canonical_form(
        actual, ordered=False
    )

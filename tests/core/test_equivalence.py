"""Scenario-based equivalence tests: v'(I) = x(v(I)) across stylesheet
shapes the paper's algorithm must handle."""

import pytest

from repro.core import compose
from repro.schema_tree import materialize
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view
from repro.workloads.synthetic import (
    chain_catalog,
    chain_stylesheet,
    chain_view,
    populate_chain,
)
from repro.relational.engine import Database
from repro.xmlcore import canonical_form
from repro.xslt import apply_stylesheet
from repro.xslt.parser import parse_stylesheet


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(
        HotelDataSpec(metros=3, hotels_per_metro=4, guestrooms_per_hotel=4)
    )
    yield database
    database.close()


@pytest.fixture(scope="module")
def view(db):
    return figure1_view(db.catalog)


def assert_equivalent(view, stylesheet_text, db):
    stylesheet = parse_stylesheet(stylesheet_text)
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed_view = compose(view, stylesheet, db.catalog)
    composed = materialize(composed_view, db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    ), f"naive != composed for:\n{stylesheet_text}"
    return composed_view


ROOT = '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'


def test_single_rule_root_only(view, db):
    assert_equivalent(view, '<xsl:template match="/"><out/></xsl:template>', db)


def test_shallow_selection(view, db):
    assert_equivalent(
        view,
        ROOT + '<xsl:template match="metro"><m><xsl:value-of select="."/></m></xsl:template>',
        db,
    )


def test_two_level_chain(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="hotel"/></m></xsl:template>'
        + '<xsl:template match="hotel"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_multi_step_select(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="hotel/confroom"/></m></xsl:template>'
        + '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_deep_chain_to_metro_available(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="hotel/hotel_available/metro_available"/></m></xsl:template>'
        + '<xsl:template match="metro_available"><v><xsl:value-of select="."/></v></xsl:template>',
        db,
    )


def test_sibling_branches_both_processed(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m>'
        '<xsl:apply-templates select="confstat"/>'
        '<xsl:apply-templates select="hotel"/>'
        "</m></xsl:template>"
        + '<xsl:template match="metro/confstat"><cs><xsl:value-of select="."/></cs></xsl:template>'
        + '<xsl:template match="hotel"><h/></xsl:template>',
        db,
    )


def test_same_tag_different_contexts(view, db):
    """The two confstat nodes (ids 2 and 4) are distinguished by path."""
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m>'
        '<xsl:apply-templates select="confstat"/>'
        '<xsl:apply-templates select="hotel/confstat"/>'
        "</m></xsl:template>"
        + '<xsl:template match="metro/confstat"><metro_cs><xsl:value-of select="."/></metro_cs></xsl:template>'
        + '<xsl:template match="hotel/confstat"><hotel_cs><xsl:value-of select="."/></hotel_cs></xsl:template>',
        db,
    )


def test_parent_axis_sibling_condition(view, db):
    """Figure 4's '../hotel_available/../confroom' shape."""
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="hotel/confstat"/></m></xsl:template>'
        + '<xsl:template match="confstat"><cs>'
        '<xsl:apply-templates select="../hotel_available/../confroom"/>'
        "</cs></xsl:template>"
        + '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_terminal_parent_axis(view, db):
    """An apply-templates ending on '..' (upward re-derivation)."""
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="hotel/confroom"/></m></xsl:template>'
        + '<xsl:template match="confroom"><c><xsl:apply-templates select=".." mode="up"/></c></xsl:template>'
        + '<xsl:template match="hotel" mode="up"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_self_select_with_mode(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="." mode="again"/></m></xsl:template>'
        + '<xsl:template match="metro" mode="again"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_select_predicates(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="hotel[@pool=1]/confroom[@capacity&gt;100]"/></m></xsl:template>'
        + '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_match_predicates(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="hotel"/></m></xsl:template>'
        + '<xsl:template match="hotel[@gym=1]"><g><xsl:value-of select="."/></g></xsl:template>',
        db,
    )


def test_path_existence_predicate(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="hotel[confroom]"/></m></xsl:template>'
        + '<xsl:template match="hotel"><h><xsl:value-of select="."/></h></xsl:template>',
        db,
    )


def test_negated_path_predicate(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="hotel[not(confroom[@capacity&gt;200])]"/></m></xsl:template>'
        + '<xsl:template match="hotel"><h/></xsl:template>',
        db,
    )


def test_aggregate_predicate_on_bound_context(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="hotel/confstat"/></m></xsl:template>'
        + '<xsl:template match="confstat"><cs>'
        '<xsl:apply-templates select=".[@SUM_capacity&gt;100]/../confroom"/>'
        "</cs></xsl:template>"
        + '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_value_of_attribute_in_output(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:value-of select="@metroname"/>'
        '<xsl:apply-templates select="hotel"/></m></xsl:template>'
        + '<xsl:template match="hotel"><h><xsl:value-of select="@hotelname"/>'
        '<xsl:value-of select="@starrating"/></h></xsl:template>',
        db,
    )


def test_bare_apply_templates_forced_unbind(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><xsl:apply-templates select="hotel"/></xsl:template>'
        + '<xsl:template match="hotel"><xsl:apply-templates select="confroom"/></xsl:template>'
        + '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_multiple_top_level_elements_grouped(view, db):
    """Section 4.4: separate pushdown groups rather than interleaves —
    with a single apply this is still exactly equivalent."""
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><first/><second><xsl:value-of select="."/></second></xsl:template>',
        db,
    )


def test_empty_rule_body(view, db):
    assert_equivalent(
        view,
        ROOT + '<xsl:template match="metro"></xsl:template>',
        db,
    )


def test_wildcard_select(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="*"/></m></xsl:template>'
        + '<xsl:template match="confstat"><cs/></xsl:template>'
        + '<xsl:template match="hotel"><h/></xsl:template>',
        db,
    )


def test_modes_partition_processing(view, db):
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m>'
        '<xsl:apply-templates select="hotel" mode="one"/>'
        '<xsl:apply-templates select="hotel" mode="two"/>'
        "</m></xsl:template>"
        + '<xsl:template match="hotel" mode="one"><h1/></xsl:template>'
        + '<xsl:template match="hotel" mode="two"><h2><xsl:value-of select="."/></h2></xsl:template>',
        db,
    )


def test_duplicated_apply_same_target(view, db):
    """Two applies of the same rule duplicate the TVQ node (4.2.2)."""
    assert_equivalent(
        view,
        ROOT
        + '<xsl:template match="metro"><m>'
        '<xsl:apply-templates select="hotel"/>'
        '<xsl:apply-templates select="hotel"/>'
        "</m></xsl:template>"
        + '<xsl:template match="hotel"><h><xsl:value-of select="."/></h></xsl:template>',
        db,
    )


def test_chain_workload_equivalence():
    levels = 5
    catalog = chain_catalog(levels)
    db = Database(catalog)
    populate_chain(db, levels, fanout=2, roots=3)
    view = chain_view(levels, catalog)
    stylesheet = chain_stylesheet(levels)
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, catalog), db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )
    db.close()


def test_empty_database_equivalence(view):
    from repro.workloads.hotel import hotel_catalog

    db = Database(hotel_catalog())
    stylesheet_text = (
        ROOT
        + '<xsl:template match="metro"><m><xsl:apply-templates select="hotel"/></m></xsl:template>'
        + '<xsl:template match="hotel"><xsl:value-of select="."/></xsl:template>'
    )
    assert_equivalent(figure1_view(db.catalog), stylesheet_text, db)
    db.close()

"""Direct unit tests for Step 4 edge cases (pseudo-root elimination)."""

import pytest

from repro.core import compose
from repro.schema_tree import materialize
from repro.sql.printer import print_select
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view
from repro.xmlcore import canonical_form
from repro.xslt import apply_stylesheet, parse_stylesheet


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=4))
    yield database
    database.close()


@pytest.fixture(scope="module")
def view(db):
    return figure1_view(db.catalog)


def compose_and_check(view, stylesheet_text, db):
    stylesheet = parse_stylesheet(stylesheet_text)
    composed = compose(view, stylesheet, db.catalog)
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    assert canonical_form(naive, ordered=False) == canonical_form(
        materialize(composed, db), ordered=False
    )
    return composed


def test_multiple_siblings_share_query_with_distinct_bvs(view, db):
    """A rule with two top-level elements: both get query copies with
    renamed binding variables (Figure 9 line 41)."""
    composed = compose_and_check(
        view,
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro">'
        '<first name="{@metroname}"/>'
        '<second><xsl:apply-templates select="hotel"/></second>'
        "</xsl:template>"
        '<xsl:template match="hotel"><h/></xsl:template>',
        db,
    )
    nodes = {n.tag: n for n in composed.nodes(include_root=False)}
    assert nodes["first"].bv != nodes["second"].bv
    assert print_select(nodes["first"].tag_query) == print_select(
        nodes["second"].tag_query
    )
    # The hotel child under "second" references second's bv, not first's.
    h = nodes["h"]
    from repro.sql.params import referenced_vars

    assert referenced_vars(h.tag_query) == [nodes["second"].bv]


def test_root_rule_with_bare_apply(view, db):
    """Root body is nothing but apply-templates: the child rule's nodes
    become top-level."""
    composed = compose_and_check(
        view,
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro"><m><xsl:value-of select="."/></m></xsl:template>',
        db,
    )
    assert [n.tag for n in composed.root.children] == ["m"]
    assert composed.root.children[0].tag_query is not None


def test_fully_bare_chain_to_top_level(view, db):
    """Every rule is a bare apply: the deepest rule's output surfaces at
    top level with all queries merged."""
    composed = compose_and_check(
        view,
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro"><xsl:apply-templates select="hotel"/></xsl:template>'
        '<xsl:template match="hotel"><deep><xsl:value-of select="."/></deep></xsl:template>',
        db,
    )
    assert [n.tag for n in composed.root.children] == ["deep"]
    sql = print_select(composed.root.children[0].tag_query)
    assert "metroarea" in sql and "hotel" in sql


def test_nested_literal_structure_preserved(view, db):
    composed = compose_and_check(
        view,
        '<xsl:template match="/"><a><b><c><xsl:apply-templates select="metro"/></c></b></a></xsl:template>'
        '<xsl:template match="metro"><m/></xsl:template>',
        db,
    )
    a = composed.root.children[0]
    assert a.tag == "a" and a.tag_query is None
    c = a.children[0].children[0]
    assert c.tag == "c"
    assert c.children[0].tag == "m"
    assert c.children[0].tag_query is not None


def test_two_value_of_context_elements(view, db):
    """Two value-of '.' in one rule: two context elements per tuple."""
    composed = compose_and_check(
        view,
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><w><xsl:value-of select="."/>'
        '<xsl:value-of select="."/></w></xsl:template>',
        db,
    )
    w = composed.root.children[0].children[0]
    metros = [c for c in w.children if c.tag == "metro"]
    assert len(metros) == 2

"""Golden tests: Output Tag Trees (Figures 7(b) and 14) and their limits."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.core.ctg import build_ctg
from repro.core.ott import APPLY, CONTEXT, ELEMENT, PSEUDO, connect_otts, generate_ott
from repro.core.tvq import build_tvq
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xslt.parser import parse_stylesheet


@pytest.fixture(scope="module")
def catalog():
    return hotel_catalog()


@pytest.fixture(scope="module")
def view(catalog):
    return figure1_view(catalog)


@pytest.fixture()
def tvq(view, catalog):
    return build_tvq(build_ctg(view, figure4_stylesheet()), catalog)


def test_figure14_root_rule_ott(tvq, catalog):
    tree = generate_ott(tvq.root, catalog)
    assert tree.kind == PSEUDO
    html = tree.children[0]
    assert (html.kind, html.tag) == (ELEMENT, "HTML")
    head, body = html.children
    assert head.tag == "HEAD"
    assert body.tag == "BODY"
    assert body.children[0].kind == APPLY


def test_figure14_confroom_rule_ott(tvq, catalog):
    confroom_node = tvq.root.children[0].children[0].children[0]
    tree = generate_ott(confroom_node, catalog)
    context = tree.children[0]
    assert context.kind == CONTEXT
    assert context.tag == "confroom"
    assert context.context_columns == [
        "c_id", "chotel_id", "croomnumber", "capacity", "rackrate",
    ]


def test_connect_replaces_apply_placeholders(tvq, catalog):
    otts = {id(n): generate_ott(n, catalog) for n in tvq.root.walk()}
    root = connect_otts(tvq.root, otts)
    kinds = [n.kind for n in root.walk()]
    assert APPLY not in kinds
    # Figure 7(b): HTML > BODY > pseudo(result_metro) > ... chain.
    body = root.children[0].children[1]
    assert body.children[0].kind == PSEUDO
    result_metro = body.children[0].children[0]
    assert result_metro.tag == "result_metro"


def test_apply_selecting_nothing_drops_placeholder(view, catalog):
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><r><xsl:apply-templates select="ghost"/></r></xsl:template>'
    )
    tvq = build_tvq(build_ctg(view, stylesheet), catalog)
    otts = {id(n): generate_ott(n, catalog) for n in tvq.root.walk()}
    root = connect_otts(tvq.root, otts)
    r = root.children[0]
    assert r.children == []


def test_value_of_attribute_becomes_data_attr(view, catalog):
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro"><m><xsl:value-of select="@metroname"/></m></xsl:template>'
    )
    tvq = build_tvq(build_ctg(view, stylesheet), catalog)
    metro_node = tvq.root.children[0]
    tree = generate_ott(metro_node, catalog)
    m = tree.children[0]
    assert m.data_attrs == [("metroname", "metroname")]


def unsupported_body(body):
    return (
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        f'<xsl:template match="metro">{body}</xsl:template>'
    )


@pytest.mark.parametrize(
    "body,feature",
    [
        ("<m>text</m>", "text-output"),
        ('<xsl:copy-of select="."/>', "copy-of"),
        ('<xsl:value-of select="hotel/confstat"/>', "value-of"),
        ('<xsl:value-of select="@metroname"/>', "value-of"),
        (
            '<xsl:apply-templates select="hotel">'
            '<xsl:with-param name="x" select="1"/></xsl:apply-templates>',
            "with-param",
        ),
    ],
)
def test_unsupported_output_features_raise(view, catalog, body, feature):
    stylesheet = parse_stylesheet(unsupported_body(body))
    tvq = build_tvq(build_ctg(view, stylesheet), catalog)
    metro_node = tvq.root.children[0]
    with pytest.raises(UnsupportedFeatureError) as exc:
        generate_ott(metro_node, catalog)
    assert exc.value.feature == feature


def test_describe_renders_tree(tvq, catalog):
    tree = generate_ott(tvq.root, catalog)
    text = tree.describe()
    assert "pseudo-root" in text
    assert "<HTML>" in text
    assert "apply-templates[metro]" in text

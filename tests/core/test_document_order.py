"""Document-order determinism (the paper's acknowledged future work).

When a view's tag queries carry ORDER BY, materialization order is
deterministic and parent-major. Unbinding propagates the order keys
(``repro.sql.transform.propagate_order``), so for stylesheets with at
most one apply-templates per rule the composed output is **ordered**
equal to the naive pipeline — not just equal as a multiset.

Rules with several apply-templates still group rather than interleave
(Section 4.4's note), so those compare unordered as before.
"""

import pytest

from repro.core import compose
from repro.schema_tree import ViewBuilder, materialize
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.xmlcore import canonical_form
from repro.xslt import apply_stylesheet, parse_stylesheet


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(
        HotelDataSpec(metros=3, hotels_per_metro=4, confrooms_per_hotel=3)
    )
    yield database
    database.close()


@pytest.fixture(scope="module")
def ordered_view(db):
    """Figure 1's first branches with explicit ORDER BY keys."""
    builder = ViewBuilder(db.catalog)
    metro = builder.node(
        "metro",
        "SELECT metroid, metroname FROM metroarea ORDER BY metroname DESC",
        bv="m",
    )
    hotel = metro.child(
        "hotel",
        "SELECT * FROM hotel WHERE metro_id = $m.metroid AND starrating > 4 "
        "ORDER BY hotelname",
        bv="h",
    )
    hotel.child(
        "confroom",
        "SELECT * FROM confroom WHERE chotel_id = $h.hotelid "
        "ORDER BY capacity DESC, c_id",
        bv="c",
    )
    return builder.build()


def assert_ordered_equivalent(view, stylesheet_text, db):
    stylesheet = parse_stylesheet(stylesheet_text)
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, db.catalog), db)
    assert canonical_form(naive, ordered=True) == canonical_form(
        composed, ordered=True
    )


def test_materialization_respects_order_by(ordered_view, db):
    doc = materialize(ordered_view, db)
    names = [m.get("metroname") for m in doc.child_elements()]
    assert names == sorted(names, reverse=True)
    for metro in doc.child_elements():
        for hotel in metro.find_children("hotel"):
            capacities = [
                int(c.get("capacity")) for c in hotel.find_children("confroom")
            ]
            assert capacities == sorted(capacities, reverse=True)


def test_single_hop_ordered_equivalence(ordered_view, db):
    assert_ordered_equivalent(
        ordered_view,
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m name="{@metroname}"><xsl:apply-templates select="hotel"/></m></xsl:template>'
        '<xsl:template match="hotel"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_chain_collapse_preserves_order(ordered_view, db):
    """hotel/confroom collapses hotel into confroom's query; the composed
    rows must still come out metro-major, hotel-next, capacity-desc."""
    assert_ordered_equivalent(
        ordered_view,
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m><xsl:apply-templates select="hotel/confroom"/></m></xsl:template>'
        '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_forced_unbind_preserves_order(ordered_view, db):
    assert_ordered_equivalent(
        ordered_view,
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><xsl:apply-templates select="hotel"/></xsl:template>'
        '<xsl:template match="hotel"><h><xsl:apply-templates select="confroom"/></h></xsl:template>'
        '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_predicates_preserve_order(ordered_view, db):
    assert_ordered_equivalent(
        ordered_view,
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m><xsl:apply-templates select="hotel/confroom[@capacity&gt;100]"/></m></xsl:template>'
        '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_composed_query_carries_order_keys(ordered_view, db):
    from repro.sql.printer import print_select

    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m><xsl:apply-templates select="hotel/confroom"/></m></xsl:template>'
        '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>'
    )
    composed = compose(ordered_view, stylesheet, db.catalog)
    confroom = next(
        n for n in composed.nodes(include_root=False) if n.tag == "confroom"
    )
    sql = print_select(confroom.tag_query)
    # hotel's key precedes confroom's own keys.
    assert "ORDER BY hotelname" in sql
    assert sql.index("hotelname") < sql.index("capacity DESC")

"""xsl:sort: interpreter semantics and composition into ORDER BY."""

import pytest

from repro.core import compose
from repro.errors import StylesheetParseError, UnsupportedFeatureError
from repro.schema_tree import materialize
from repro.sql.printer import print_select
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view
from repro.xmlcore import canonical_form, serialize
from repro.xmlcore.parser import parse_document
from repro.xslt import apply_stylesheet, parse_stylesheet

DOC = parse_document(
    """
<metro>
  <hotel hotelid="1" starrating="3" hotelname="bravo"/>
  <hotel hotelid="2" starrating="5" hotelname="alpha"/>
  <hotel hotelid="3" starrating="4" hotelname="alpha"/>
</metro>
"""
)


def run(stylesheet_text, doc=DOC):
    return serialize(apply_stylesheet(parse_stylesheet(stylesheet_text), doc))


def test_interpreter_sort_text_ascending():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro">'
        '<xsl:apply-templates select="hotel"><xsl:sort select="@hotelname"/></xsl:apply-templates>'
        "</xsl:template>"
        '<xsl:template match="hotel"><h id="{@hotelid}"/></xsl:template>'
    )
    # alpha(2), alpha(3) keep document order (stable), then bravo(1).
    assert out == '<h id="2"/><h id="3"/><h id="1"/>'


def test_interpreter_sort_number_descending():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro">'
        '<xsl:apply-templates select="hotel">'
        '<xsl:sort select="@starrating" data-type="number" order="descending"/>'
        "</xsl:apply-templates></xsl:template>"
        '<xsl:template match="hotel"><h id="{@hotelid}"/></xsl:template>'
    )
    assert out == '<h id="2"/><h id="3"/><h id="1"/>'


def test_interpreter_multi_key_sort():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro">'
        '<xsl:apply-templates select="hotel">'
        '<xsl:sort select="@hotelname"/>'
        '<xsl:sort select="@starrating" data-type="number"/>'
        "</xsl:apply-templates></xsl:template>"
        '<xsl:template match="hotel"><h id="{@hotelid}"/></xsl:template>'
    )
    # alpha/4 (id 3) before alpha/5 (id 2), then bravo.
    assert out == '<h id="3"/><h id="2"/><h id="1"/>'


def test_text_sort_of_numbers_is_lexicographic():
    doc = parse_document(
        '<metro><hotel hotelid="1" starrating="10"/><hotel hotelid="2" starrating="9"/></metro>'
    )
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro">'
        '<xsl:apply-templates select="hotel"><xsl:sort select="@starrating"/></xsl:apply-templates>'
        "</xsl:template>"
        '<xsl:template match="hotel"><h id="{@hotelid}"/></xsl:template>',
        doc=doc,
    )
    # "10" < "9" as text.
    assert out == '<h id="1"/><h id="2"/>'


@pytest.mark.parametrize("bad", ['order="sideways"', 'data-type="date"'])
def test_bad_sort_attributes_rejected(bad):
    with pytest.raises(StylesheetParseError):
        parse_stylesheet(
            '<xsl:template match="a">'
            f'<xsl:apply-templates select="b"><xsl:sort select="@x" {bad}/></xsl:apply-templates>'
            "</xsl:template>"
        )


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=6))
    yield database
    database.close()


SORTED_SHEET = (
    '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
    '<xsl:template match="metro"><m>'
    '<xsl:apply-templates select="hotel">'
    '<xsl:sort select="@starrating" data-type="number" order="descending"/>'
    '<xsl:sort select="@hotelid" data-type="number"/>'
    "</xsl:apply-templates></m></xsl:template>"
    '<xsl:template match="hotel"><h id="{@hotelid}" stars="{@starrating}"/></xsl:template>'
)


def test_sort_composes_to_order_by(db):
    view = figure1_view(db.catalog)
    composed = compose(view, parse_stylesheet(SORTED_SHEET), db.catalog)
    h = next(n for n in composed.nodes(include_root=False) if n.tag == "h")
    sql = print_select(h.tag_query)
    assert "ORDER BY" in sql
    assert "starrating DESC" in sql.replace("hotel.starrating", "starrating")


def test_sorted_composition_ordered_equivalence(db):
    view = figure1_view(db.catalog)
    stylesheet = parse_stylesheet(SORTED_SHEET)
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, db.catalog), db)
    assert canonical_form(naive, ordered=True) == canonical_form(
        composed, ordered=True
    )


def test_sort_on_collapsed_chain(db):
    """Sorting confrooms selected through hotel/confroom: the global (per
    metro) ordering the interpreter produces must match the composed
    ORDER BY, which replaces the hotel-major chain order."""
    view = figure1_view(db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m>'
        '<xsl:apply-templates select="hotel/confroom">'
        '<xsl:sort select="@capacity" data-type="number"/>'
        '<xsl:sort select="@c_id" data-type="number"/>'
        "</xsl:apply-templates></m></xsl:template>"
        '<xsl:template match="confroom"><c cap="{@capacity}" id="{@c_id}"/></xsl:template>'
    )
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, db.catalog), db)
    assert canonical_form(naive, ordered=True) == canonical_form(
        composed, ordered=True
    )


def test_non_attribute_sort_key_rejected(db):
    view = figure1_view(db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m>'
        '<xsl:apply-templates select="hotel"><xsl:sort select="."/></xsl:apply-templates>'
        "</m></xsl:template>"
        '<xsl:template match="hotel"><h/></xsl:template>'
    )
    with pytest.raises(UnsupportedFeatureError) as exc:
        compose(view, stylesheet, db.catalog)
    assert exc.value.feature == "sort"


def test_text_sort_of_numeric_column_composes_lexicographically(db):
    """data-type="text" on a numeric column must sort as strings on both
    sides (the composed ORDER BY coerces with || '')."""
    view = figure1_view(db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m>'
        '<xsl:apply-templates select="hotel/confroom">'
        '<xsl:sort select="@rackrate"/>'
        '<xsl:sort select="@c_id" data-type="number"/>'
        "</xsl:apply-templates></m></xsl:template>"
        '<xsl:template match="confroom"><c rate="{@rackrate}" id="{@c_id}"/></xsl:template>'
    )
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, db.catalog), db)
    assert canonical_form(naive, ordered=True) == canonical_form(
        composed, ordered=True
    )


def test_for_each_with_sort_interprets_and_composes(db):
    view = figure1_view(db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m>'
        '<xsl:for-each select="hotel">'
        '<xsl:sort select="@starrating" data-type="number" order="descending"/>'
        '<h stars="{@starrating}" id="{@hotelid}"/>'
        "</xsl:for-each></m></xsl:template>"
    )
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    # The interpreter sorts within each metro.
    for m in naive.child_elements()[0].child_elements():
        stars = [int(h.get("stars")) for h in m.child_elements()]
        assert stars == sorted(stars, reverse=True)
    composed = materialize(compose(view, stylesheet, db.catalog), db)
    assert canonical_form(naive, ordered=True) == canonical_form(
        composed, ordered=True
    )

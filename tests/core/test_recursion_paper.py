"""Tests for the Section 5.3 recursion pushdown (Figures 25-27)."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.core.recursion import compose_recursive_pair
from repro.schema_tree import materialize
from repro.sql.printer import print_select
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure25_stylesheet
from repro.xmlcore.serializer import serialize
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import XSLTProcessor

RECURSIVE = """
<xsl:template match="/metro">
  <xsl:param name="idx" select="4"/>
  <result_metro>
    <xsl:apply-templates select="hotel/hotel_available[@COUNT_a_id&gt;10]/metro_available[@COUNT_a_id&gt;$idx]">
      <xsl:with-param name="idx" select="$idx"/>
    </xsl:apply-templates>
  </result_metro>
</xsl:template>

<xsl:template match="metro_available">
  <xsl:param name="idx"/>
  <xsl:choose>
    <xsl:when test="$idx&lt;=1">
      <xsl:value-of select="."/>
    </xsl:when>
    <xsl:otherwise>
      <result_metroavail>
        <xsl:apply-templates select="self::[@COUNT_a_id&gt;50]/../../..">
          <xsl:with-param name="idx" select="$idx - 1"/>
        </xsl:apply-templates>
      </result_metroavail>
    </xsl:otherwise>
  </xsl:choose>
</xsl:template>
"""


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(
        HotelDataSpec(
            metros=1, hotels_per_metro=4,
            guestrooms_per_hotel=10, availability_per_room=6,
        )
    )
    yield database
    database.close()


@pytest.fixture(scope="module")
def view(db):
    return figure1_view(db.catalog)


@pytest.fixture(scope="module")
def plan(view, db):
    return compose_recursive_pair(view, figure25_stylesheet(), db.catalog)


def test_figure26_view_structure(plan):
    """v' of Figure 26: metro with metroavail_down / metroavail_up."""
    metro = plan.view.root.children[0]
    assert metro.tag == "metro"
    assert print_select(metro.tag_query) == "SELECT metroid, metroname FROM metroarea"
    tags = [c.tag for c in metro.children]
    assert tags == ["metroavail_down", "metroavail_up"]


def test_figure26_down_query_shape(plan):
    sql = print_select(plan.view.root.children[0].children[0].tag_query)
    # The nested TEMP structure of Qmd with the >10 condition inside.
    assert "HAVING COUNT(" in sql
    assert "> 10" in sql
    assert "(SELECT * FROM hotel WHERE metro_id = $m_new.metroid AND starrating > 4)" in sql
    assert "startdate = TEMP.startdate" in sql


def test_figure26_up_query_adds_having(plan):
    down_sql = print_select(plan.view.root.children[0].children[0].tag_query)
    up_sql = print_select(plan.view.root.children[0].children[1].tag_query)
    # Qmu = Qmd + HAVING COUNT(a_id) > 50 (Figure 26).
    assert "> 50" in up_sql
    assert "> 50" not in down_sql


def test_figure27_stylesheet_structure(plan):
    rules = plan.stylesheet.rules
    assert rules[0].match.to_text() == "/metro"
    assert rules[1].match.to_text() == "metroavail_down"
    assert rules[2].match.to_text() == "metroavail_up"
    # R1' selects the down sibling with the dynamic predicate kept.
    entry_apply = rules[0].apply_templates_nodes()[0]
    assert entry_apply.select.to_text().startswith("metroavail_down[")
    assert "$idx" in entry_apply.select.to_text()
    # R2' navigates to the up sibling, R3' back down.
    assert rules[1].apply_templates_nodes()[0].select.to_text() == "../metroavail_up"
    down_again = rules[2].apply_templates_nodes()[0].select.to_text()
    assert down_again.startswith("../metroavail_down[")


def test_with_params_preserved(plan):
    for rule in plan.stylesheet.rules:
        for apply in rule.apply_templates_nodes():
            assert apply.with_params, "the $idx parameter must flow through"


def test_recursion_rounds_match_interpreter(view, db):
    stylesheet = parse_stylesheet(RECURSIVE)
    plan = compose_recursive_pair(view, stylesheet, db.catalog)
    naive = XSLTProcessor(stylesheet, builtin_rules="standard").process_document(
        materialize(view, db)
    )
    pushed_doc = materialize(plan.view, db)
    pushed = XSLTProcessor(
        plan.stylesheet, builtin_rules="standard"
    ).process_document(pushed_doc)
    naive_rounds = serialize(naive).count("<result_metroavail")
    pushed_rounds = serialize(pushed).count("<result_metroavail")
    assert naive_rounds == pushed_rounds > 0


def test_pushed_view_is_smaller(view, db):
    """The pushdown materializes only the two summary node types."""
    from repro.schema_tree.evaluator import ViewEvaluator

    stylesheet = parse_stylesheet(RECURSIVE)
    plan = compose_recursive_pair(view, stylesheet, db.catalog)
    full = ViewEvaluator(db)
    full.materialize(view)
    pushed = ViewEvaluator(db)
    pushed.materialize(plan.view)
    assert pushed.stats.elements_created < full.stats.elements_created


def test_non_recursive_stylesheet_rejected(view, db):
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out/></xsl:template>'
    )
    with pytest.raises(UnsupportedFeatureError):
        compose_recursive_pair(view, stylesheet, db.catalog)


def test_interior_variable_predicate_rejected(view, db):
    stylesheet = parse_stylesheet(
        """
<xsl:template match="/metro">
  <xsl:param name="idx" select="4"/>
  <r><xsl:apply-templates select="hotel[@starrating&gt;$idx]/hotel_available/metro_available"/></r>
</xsl:template>
<xsl:template match="metro_available">
  <xsl:param name="idx"/>
  <x><xsl:apply-templates select="../../.."/></x>
</xsl:template>
"""
    )
    with pytest.raises(UnsupportedFeatureError):
        compose_recursive_pair(view, stylesheet, db.catalog)

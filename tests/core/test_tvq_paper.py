"""Golden tests: the TVQ of Figure 7(a) and TVQ construction behaviour."""

import pytest

from repro.errors import CompositionError, UnsupportedFeatureError
from repro.core.ctg import build_ctg
from repro.core.tvq import build_tvq
from repro.sql.printer import print_select
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.workloads.synthetic import blowup_stylesheet, chain_catalog, chain_view, chain_stylesheet
from repro.xslt.parser import parse_stylesheet


@pytest.fixture(scope="module")
def catalog():
    return hotel_catalog()


@pytest.fixture(scope="module")
def view(catalog):
    return figure1_view(catalog)


@pytest.fixture(scope="module")
def tvq(view, catalog):
    # paper_mode reproduces the figures' exact join+GROUP BY shape; the
    # default mode uses the corrected scalar-subquery unbinding for
    # ungrouped aggregates (see tests/core/test_empty_groups.py).
    return build_tvq(
        build_ctg(view, figure4_stylesheet()), catalog, paper_mode=True
    )


def test_figure7a_structure(tvq):
    root = tvq.root
    assert root.schema_node.is_root
    assert root.tag_query is None
    metro = root.children[0]
    assert metro.schema_node.id == 1 and metro.bv == "m_new"
    confstat = metro.children[0]
    assert confstat.schema_node.id == 4 and confstat.bv == "s_new"
    confroom = confstat.children[0]
    assert confroom.schema_node.id == 5 and confroom.bv == "c_new"


def test_figure7a_metro_query(tvq):
    metro = tvq.root.children[0]
    assert print_select(metro.tag_query) == "SELECT metroid, metroname FROM metroarea"


def test_figure7a_confstat_query(tvq):
    confstat = tvq.root.children[0].children[0]
    sql = print_select(confstat.tag_query)
    # Qs_new of Figure 7(a): SUM over confroom joined with the inlined
    # hotel derived table, grouped by every hotel column. (Column
    # references are source-qualified to dodge the ambiguity latent in the
    # paper's figures.)
    assert sql.startswith(
        "SELECT SUM(confroom.capacity) AS SUM_capacity, TEMP.hotelid"
    )
    assert "(SELECT * FROM hotel WHERE metro_id = $m_new.metroid AND starrating > 4) AS TEMP" in sql
    assert "GROUP BY TEMP.hotelid" in sql
    assert "TEMP.gym" in sql


def test_figure7a_confroom_query(tvq):
    confroom = tvq.root.children[0].children[0].children[0]
    sql = print_select(confroom.tag_query)
    # Qc_new of Figure 7(a): parameterized by $s_new with the
    # hotel_available existence condition.
    assert "chotel_id = $s_new.hotelid" in sql
    assert "EXISTS (SELECT COUNT(a_id) AS COUNT_a_id, startdate" in sql
    assert "rhotel_id = $s_new.hotelid" in sql
    assert "GROUP BY startdate" in sql


def test_bvmap_propagation(tvq):
    metro = tvq.root.children[0]
    assert metro.bvmap == {"m": "m_new"}
    confstat = metro.children[0]
    assert confstat.bvmap == {"m": "m_new", "h": "s_new", "s": "s_new"}
    confroom = confstat.children[0]
    # 's' is removed (Figure 13 line 18); 'c' maps to the new node.
    assert confroom.bvmap == {"m": "m_new", "h": "s_new", "c": "c_new"}


def test_exposure_records_carried_columns(tvq):
    confstat = tvq.root.children[0].children[0]
    assert confstat.exposure["h"]["hotelid"] == "hotelid"
    assert confstat.exposure["s"]["SUM_capacity"] == "SUM_capacity"


def test_recursion_rejected(view, catalog):
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro"><xsl:apply-templates select="hotel"/></xsl:template>'
        '<xsl:template match="hotel"><xsl:apply-templates select=".."/></xsl:template>'
    )
    ctg = build_ctg(view, stylesheet)
    with pytest.raises(UnsupportedFeatureError) as exc:
        build_tvq(ctg, catalog)
    assert exc.value.feature == "recursion"


def test_no_root_rule_rejected(view, catalog):
    stylesheet = parse_stylesheet('<xsl:template match="metro"><m/></xsl:template>')
    ctg = build_ctg(view, stylesheet)
    with pytest.raises(CompositionError):
        build_tvq(ctg, catalog)


def test_blowup_duplication():
    levels = 4
    catalog = chain_catalog(levels)
    view = chain_view(levels, catalog)
    ctg = build_ctg(view, blowup_stylesheet(levels))
    tvq = build_tvq(ctg, catalog)
    # Section 4.2.2: 1 root + 2 + 4 + 8 + 16 = 2^(k+1) - 1 nodes.
    assert tvq.size() == 2 ** (levels + 1) - 1


def test_blowup_respects_max_nodes():
    levels = 8
    catalog = chain_catalog(levels)
    view = chain_view(levels, catalog)
    ctg = build_ctg(view, blowup_stylesheet(levels))
    with pytest.raises(CompositionError):
        build_tvq(ctg, catalog, max_nodes=50)


def test_duplicated_nodes_get_fresh_bvs():
    levels = 2
    catalog = chain_catalog(levels)
    view = chain_view(levels, catalog)
    ctg = build_ctg(view, blowup_stylesheet(levels))
    tvq = build_tvq(ctg, catalog)
    bvs = [n.bv for n in tvq.nodes() if n.bv]
    assert len(bvs) == len(set(bvs))


def test_upward_select_correlates():
    catalog = chain_catalog(2)
    view = chain_view(2, catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="n1"/></xsl:template>'
        '<xsl:template match="n1"><a><xsl:apply-templates select="n2"/></a></xsl:template>'
        '<xsl:template match="n2" mode=""><b><xsl:apply-templates select=".." mode="up"/></b></xsl:template>'
        '<xsl:template match="n1" mode="up"><c><xsl:value-of select="."/></c></xsl:template>'
    )
    ctg = build_ctg(view, stylesheet)
    tvq = build_tvq(ctg, catalog)
    sql_texts = [
        print_select(n.tag_query) for n in tvq.nodes() if n.tag_query is not None
    ]
    # The upward re-derivation correlates every t1 column (null-safe IS).
    assert any("IS $" in s or "IS " in s for s in sql_texts)


def test_describe_matches_structure(tvq):
    text = tvq.describe()
    assert "((1, metro), R2) $m_new" in text
    assert "((5, confroom), R4) $c_new" in text

"""Tests for dead-column elimination on composed views."""

import pytest

from repro.core import compose
from repro.core.optimize import prune_stylesheet_view, required_columns
from repro.schema_tree import materialize
from repro.sql.printer import print_select
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import (
    figure1_view,
    figure4_stylesheet,
    figure15_stylesheet,
    figure17_stylesheet,
)
from repro.xmlcore import canonical_form


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(HotelDataSpec(metros=3, hotels_per_metro=4))
    yield database
    database.close()


@pytest.fixture(scope="module")
def view(db):
    return figure1_view(db.catalog)


@pytest.mark.parametrize(
    "stylesheet_factory",
    [figure4_stylesheet, figure15_stylesheet, figure17_stylesheet],
)
def test_pruning_preserves_output(view, db, stylesheet_factory):
    stylesheet = stylesheet_factory()
    composed = compose(view, stylesheet, db.catalog)
    before = canonical_form(materialize(composed, db), ordered=False)
    report = prune_stylesheet_view(composed, db.catalog)
    after = canonical_form(materialize(composed, db), ordered=False)
    assert before == after
    assert report.columns_removed > 0


def test_pruning_keeps_descendant_parameters(view, db):
    composed = compose(view, figure4_stylesheet(), db.catalog)
    prune_stylesheet_view(composed, db.catalog)
    nodes = {n.tag: n for n in composed.nodes(include_root=False)}
    # result_confstat carries no attributes but its confroom child
    # references $s_new.hotelid — that column must survive.
    sql = print_select(nodes["result_confstat"].tag_query)
    assert "hotelid" in sql
    # The nine other carried hotel columns are gone.
    assert "TEMP.gym" not in sql.split("GROUP BY")[0]


def test_pruning_keeps_attr_columns(view, db):
    composed = compose(view, figure4_stylesheet(), db.catalog)
    prune_stylesheet_view(composed, db.catalog)
    nodes = {n.tag: n for n in composed.nodes(include_root=False)}
    sql = print_select(nodes["confroom"].tag_query)
    for column in ["c_id", "chotel_id", "croomnumber", "capacity", "rackrate"]:
        assert column in sql


def test_group_by_untouched(view, db):
    composed = compose(view, figure4_stylesheet(), db.catalog)
    nodes = {n.tag: n for n in composed.nodes(include_root=False)}
    group_before = len(nodes["result_confstat"].tag_query.group_by)
    prune_stylesheet_view(composed, db.catalog)
    assert len(nodes["result_confstat"].tag_query.group_by) == group_before


def test_required_columns_computation(view, db):
    composed = compose(view, figure4_stylesheet(), db.catalog)
    nodes = {n.tag: n for n in composed.nodes(include_root=False)}
    assert required_columns(nodes["result_confstat"]) == {"hotelid"}
    assert required_columns(nodes["confroom"]) == {
        "c_id", "chotel_id", "croomnumber", "capacity", "rackrate",
    }


def test_publishing_views_not_pruned(view, db):
    """attr_columns=None (surface everything) disables pruning."""
    report = prune_stylesheet_view(view, db.catalog)
    assert report.columns_removed == 0


def test_aggregate_cardinality_preserved(db):
    """Pruning an ungrouped aggregate must not change its 1-row output."""
    from repro.schema_tree.builder import ViewBuilder

    builder = ViewBuilder(db.catalog)
    builder.node(
        "summary",
        "SELECT SUM(capacity) FROM confroom",
        bv="s",
        attr_columns=[],
    )
    view = builder.build()
    prune_stylesheet_view(view, db.catalog)
    doc = materialize(view, db)
    assert len(doc.child_elements()) == 1

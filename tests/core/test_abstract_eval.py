"""Unit tests for MATCHQ and SELECTQ (Section 3.5)."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.core.abstract_eval import abstract_targets, matchq, selectq
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view
from repro.xpath.parser import parse_path
from repro.xslt.model import ApplyTemplates, TemplateRule
from repro.xslt.parser import parse_stylesheet
from repro.xpath.parser import parse_pattern


@pytest.fixture(scope="module")
def view():
    return figure1_view(hotel_catalog())


def rule(match):
    return TemplateRule(match=parse_pattern(match))


def apply(select):
    return ApplyTemplates(parse_path(select))


def test_matchq_root(view):
    assert matchq(view.root, rule("/")) is not None
    assert matchq(view.node_by_id(1), rule("/")) is None


def test_matchq_single_name(view):
    pattern = matchq(view.node_by_id(4), rule("confstat"))
    assert pattern is not None
    assert pattern.context.schema_id == 4
    assert pattern.size() == 1
    # Both confstat nodes match the bare name.
    assert matchq(view.node_by_id(2), rule("confstat")) is not None


def test_matchq_multi_step_suffix(view):
    pattern = matchq(view.node_by_id(5), rule("metro/hotel/confroom"))
    assert pattern is not None
    assert [n.schema_id for n in pattern.nodes()] == [1, 3, 5]
    assert pattern.context.schema_id == 5


def test_matchq_wrong_path_returns_none(view):
    assert matchq(view.node_by_id(2), rule("hotel/confstat")) is None
    assert matchq(view.node_by_id(5), rule("metro/confroom")) is None


def test_matchq_absolute_pattern(view):
    assert matchq(view.node_by_id(1), rule("/metro")) is not None
    assert matchq(view.node_by_id(3), rule("/metro")) is None
    assert matchq(view.node_by_id(3), rule("/metro/hotel")) is not None


def test_matchq_wildcard(view):
    assert matchq(view.node_by_id(5), rule("hotel/*")) is not None


def test_matchq_predicates_attach(view):
    pattern = matchq(
        view.node_by_id(5), rule("metro[@metroname='chicago']/hotel/confroom")
    )
    assert pattern is not None
    metro_tp = pattern.nodes()[0]
    assert metro_tp.schema_id == 1
    assert len(metro_tp.predicates) == 1


def test_matchq_rejects_descendant_axis(view):
    with pytest.raises(UnsupportedFeatureError):
        matchq(view.node_by_id(5), rule("metro//confroom"))


def test_selectq_simple_child(view):
    pattern = selectq(view.node_by_id(1), apply("hotel/confstat"), view.node_by_id(4))
    assert pattern is not None
    assert pattern.context.schema_id == 1
    assert pattern.new_context.schema_id == 4
    assert [n.schema_id for n in pattern.nodes()] == [1, 3, 4]


def test_selectq_wrong_target_none(view):
    # hotel/confstat cannot reach the metro-level confstat (id 2).
    assert selectq(view.node_by_id(1), apply("hotel/confstat"), view.node_by_id(2)) is None


def test_selectq_parent_navigation_figure8(view):
    pattern = selectq(
        view.node_by_id(4),
        apply("../hotel_available/../confroom"),
        view.node_by_id(5),
    )
    assert pattern is not None
    # Figure 8's left pattern: hotel with three children.
    assert pattern.root.schema_id == 3
    child_ids = sorted(c.schema_id for c in pattern.root.children)
    assert child_ids == [4, 5, 6]
    assert pattern.context.schema_id == 4
    assert pattern.new_context.schema_id == 5


def test_selectq_self_step(view):
    pattern = selectq(view.node_by_id(4), apply("."), view.node_by_id(4))
    assert pattern is not None
    assert pattern.context is pattern.new_context


def test_selectq_trailing_parent(view):
    pattern = selectq(view.node_by_id(4), apply(".."), view.node_by_id(3))
    assert pattern is not None
    assert pattern.new_context.schema_id == 3


def test_selectq_from_root(view):
    pattern = selectq(view.root, apply("metro"), view.node_by_id(1))
    assert pattern is not None
    assert pattern.root.schema_node.is_root


def test_selectq_predicates_expand_branches(view):
    pattern = selectq(
        view.node_by_id(4),
        apply(
            ".[@SUM_capacity<200]/../hotel_available/../"
            "confroom[../confstat[@SUM_capacity>100]][@capacity>250]"
        ),
        view.node_by_id(5),
    )
    assert pattern is not None
    # Figure 18: TWO distinct confstat TPNodes under hotel.
    confstats = [n for n in pattern.nodes() if n.schema_id == 4]
    assert len(confstats) == 2
    confroom = pattern.new_context
    assert len(confroom.predicates) == 1  # @capacity>250


def test_selectq_negated_predicate(view):
    pattern = selectq(
        view.node_by_id(1),
        apply("hotel[not(confroom)]/confstat"),
        view.node_by_id(4),
    )
    assert pattern is not None
    negated = [n for n in pattern.nodes() if n.negated]
    assert [n.schema_id for n in negated] == [5]


def test_selectq_rejects_descendant(view):
    with pytest.raises(UnsupportedFeatureError):
        selectq(view.node_by_id(1), apply("hotel//confroom"), view.node_by_id(5))


def test_abstract_targets(view):
    targets = abstract_targets(view.node_by_id(1), parse_path("hotel/confstat"))
    assert [t.id for t in targets] == [4]
    targets = abstract_targets(view.node_by_id(1), parse_path("*"))
    assert sorted(t.id for t in targets) == [2, 3]
    targets = abstract_targets(view.root, parse_path("metro"))
    assert [t.id for t in targets] == [1]


def test_abstract_targets_dead_path(view):
    assert abstract_targets(view.node_by_id(1), parse_path("ghost/x")) == []

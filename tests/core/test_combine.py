"""Unit tests for COMBINE (Figure 8)."""

import pytest

from repro.errors import UnificationError
from repro.core.abstract_eval import matchq, selectq
from repro.core.combine import combine
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view
from repro.xpath.parser import parse_path, parse_pattern
from repro.xslt.model import ApplyTemplates, TemplateRule


@pytest.fixture(scope="module")
def view():
    return figure1_view(hotel_catalog())


def select_pattern(view, source_id, select, target_id):
    return selectq(
        view.node_by_id(source_id),
        ApplyTemplates(parse_path(select)),
        view.node_by_id(target_id),
    )


def match_pattern(view, node_id, match):
    return matchq(view.node_by_id(node_id), TemplateRule(match=parse_pattern(match)))


def test_figure8_combination(view):
    t = select_pattern(view, 4, "../hotel_available/../confroom", 5)
    p = match_pattern(view, 5, "metro/hotel/confroom")
    smt = combine(t, p)
    # Figure 8's result: metro above hotel, hotel with three children.
    assert smt.root.schema_id == 1
    hotel = smt.root.children[0]
    assert hotel.schema_id == 3
    assert sorted(c.schema_id for c in hotel.children) == [4, 5, 6]
    assert smt.context.schema_id == 4
    assert smt.new_context.schema_id == 5


def test_combine_merges_predicates(view):
    t = select_pattern(view, 1, "hotel/confstat", 4)
    p = matchq(
        view.node_by_id(4),
        TemplateRule(match=parse_pattern("hotel[@starrating>4]/confstat")),
    )
    smt = combine(t, p)
    hotel_tp = smt.root.children[0]
    assert hotel_tp.schema_id == 3
    assert len(hotel_tp.predicates) == 1


def test_combine_does_not_mutate_inputs(view):
    t = select_pattern(view, 1, "hotel/confstat", 4)
    p = match_pattern(view, 4, "metro/hotel/confstat")
    before = t.describe()
    combine(t, p)
    assert t.describe() == before


def test_combine_grafts_match_branches(view):
    t = select_pattern(view, 1, "hotel/confstat", 4)
    p = matchq(
        view.node_by_id(4),
        TemplateRule(match=parse_pattern("hotel[confroom[@capacity>1]]/confstat")),
    )
    smt = combine(t, p)
    hotel_tp = smt.root.children[0]
    branch_ids = sorted(c.schema_id for c in hotel_tp.children)
    assert branch_ids == [4, 5]  # chain child + grafted confroom branch


def test_combine_extends_upward(view):
    # Select from confstat to confroom; match anchored at metro.
    t = select_pattern(view, 4, "../confroom", 5)
    assert t.root.schema_id == 3
    p = match_pattern(view, 5, "metro/hotel/confroom")
    smt = combine(t, p)
    assert smt.root.schema_id == 1


def test_combine_requires_contexts(view):
    t = select_pattern(view, 1, "hotel/confstat", 4)
    t_noctx = t.clone()
    object.__setattr__(t_noctx, "new_context", None)
    p = match_pattern(view, 4, "confstat")
    with pytest.raises(UnificationError):
        combine(t_noctx, p)


def test_combine_mismatched_ids_raise(view):
    t = select_pattern(view, 1, "hotel/confstat", 4)
    p = match_pattern(view, 2, "confstat")  # the OTHER confstat node
    with pytest.raises(UnificationError):
        combine(t, p)

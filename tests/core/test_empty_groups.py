"""Regression tests: empty aggregate groups must survive composition.

An ungrouped aggregate tag query (``SELECT SUM(capacity) FROM confroom
WHERE chotel_id = $h.hotelid``) produces exactly one tuple per parent
binding — even when the group is empty (SUM is then NULL and the
attribute is simply omitted). The paper's UNBIND (Figures 10/12) joins
the parent in and GROUPs BY its columns, which silently *drops* empty
groups: a hotel without conference rooms loses its ``<confstat>`` — and
with it the whole ``<result_confstat>`` subtree of Figure 4's output.

Discovered by the property test
``tests/sql/test_unbind_soundness_property.py``. The default composition
mode unbinds ungrouped aggregates as correlated scalar subqueries
instead; ``paper_mode=True`` reproduces the paper's (buggy on this edge)
join+GROUP BY shape for figure-level comparison.
"""

import pytest

from repro.core import compose
from repro.relational.engine import Database
from repro.schema_tree import materialize
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xmlcore import canonical_form, serialize
from repro.xslt import apply_stylesheet


@pytest.fixture()
def db_with_empty_groups():
    """One qualifying hotel with NO conference rooms or availability."""
    db = Database(hotel_catalog())
    db.insert_rows("metroarea", [{"metroid": 1, "metroname": "chicago"}])
    db.insert_rows(
        "hotel",
        [
            {
                "hotelid": 1, "hotelname": "h1", "starrating": 5,
                "chain_id": 1, "metro_id": 1, "state_id": 1,
                "city": "c", "pool": 1, "gym": 0,
            }
        ],
    )
    yield db
    db.close()


def test_naive_pipeline_keeps_empty_confstat(db_with_empty_groups):
    db = db_with_empty_groups
    view = figure1_view(db.catalog)
    doc = materialize(view, db)
    hotel = doc.root_element.find_children("hotel")[0]
    confstat = hotel.find_children("confstat")[0]
    # SUM over the empty group is NULL: the element exists, attribute-less.
    assert "SUM_capacity" not in confstat.attributes


def test_composed_view_keeps_empty_confstat(db_with_empty_groups):
    db = db_with_empty_groups
    view = figure1_view(db.catalog)
    stylesheet = figure4_stylesheet()
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, db.catalog), db)
    assert "<result_confstat>" in serialize(naive)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )


def test_paper_mode_reproduces_the_papers_gap(db_with_empty_groups):
    """paper_mode keeps the figures' shape — and their empty-group loss."""
    db = db_with_empty_groups
    view = figure1_view(db.catalog)
    stylesheet = figure4_stylesheet()
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    paper = materialize(
        compose(view, stylesheet, db.catalog, paper_mode=True), db
    )
    assert "<result_confstat>" in serialize(naive)
    assert "<result_confstat>" not in serialize(paper)


def test_scalar_unbinding_sql_shape(db_with_empty_groups):
    db = db_with_empty_groups
    view = figure1_view(db.catalog)
    composed = compose(view, figure4_stylesheet(), db.catalog)
    from repro.sql.printer import print_select

    nodes = {n.tag: n for n in composed.nodes(include_root=False)}
    sql = print_select(nodes["result_confstat"].tag_query)
    assert "(SELECT SUM(" in sql
    assert "GROUP BY" not in sql


def test_not_predicate_on_missing_aggregate(db_with_empty_groups):
    """not(@SUM_capacity > 100) is TRUE when the attribute is absent."""
    from repro.xslt.parser import parse_stylesheet

    db = db_with_empty_groups
    view = figure1_view(db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m>'
        '<xsl:apply-templates select="hotel/confstat[not(@SUM_capacity&gt;100)]"/>'
        "</m></xsl:template>"
        '<xsl:template match="confstat"><hit/></xsl:template>'
    )
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, db.catalog), db)
    assert "<hit/>" in serialize(naive)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )

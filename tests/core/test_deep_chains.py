"""Equivalence on deep/skipping chains — the nested-inline UNBIND paths.

These shapes exercise ``inline_parameter_deep``'s recursion: a leaf
query that references its grandparent (skipping the parent), chains of
length 4+ where every inline nests inside the previous derived table,
and aggregates at interior levels.
"""

import pytest

from repro.core import compose
from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.schema_tree import ViewBuilder, materialize
from repro.xmlcore import canonical_form
from repro.xslt import apply_stylesheet, parse_stylesheet

CATALOG = Catalog(
    [
        table("ta", ("aid", "INTEGER"), ("ax", "INTEGER")),
        table("tb", ("bid", "INTEGER"), ("b_aid", "INTEGER"), ("bx", "INTEGER")),
        table("tc", ("cid", "INTEGER"), ("c_bid", "INTEGER"),
              ("c_aid", "INTEGER"), ("cx", "INTEGER")),
        table("td", ("did", "INTEGER"), ("d_cid", "INTEGER"), ("dx", "INTEGER")),
    ]
)


@pytest.fixture()
def db():
    database = Database(CATALOG)
    database.insert_rows(
        "ta", [{"aid": 1, "ax": 10}, {"aid": 2, "ax": 20}]
    )
    database.insert_rows(
        "tb",
        [
            {"bid": 10, "b_aid": 1, "bx": 1},
            {"bid": 11, "b_aid": 1, "bx": 2},
            {"bid": 20, "b_aid": 2, "bx": 3},
        ],
    )
    database.insert_rows(
        "tc",
        [
            {"cid": 100, "c_bid": 10, "c_aid": 1, "cx": 5},
            {"cid": 101, "c_bid": 10, "c_aid": 1, "cx": 6},
            {"cid": 102, "c_bid": 11, "c_aid": 1, "cx": 7},
            {"cid": 200, "c_bid": 20, "c_aid": 2, "cx": 8},
        ],
    )
    database.insert_rows(
        "td",
        [
            {"did": 1000, "d_cid": 100, "dx": 1},
            {"did": 1001, "d_cid": 100, "dx": 2},
            {"did": 1002, "d_cid": 102, "dx": 3},
            {"did": 2000, "d_cid": 200, "dx": 4},
        ],
    )
    yield database
    database.close()


def straight_chain_view():
    builder = ViewBuilder(CATALOG)
    a = builder.node("a", "SELECT * FROM ta", bv="a")
    b = a.child("b", "SELECT * FROM tb WHERE b_aid = $a.aid", bv="b")
    c = b.child("c", "SELECT * FROM tc WHERE c_bid = $b.bid", bv="c")
    c.child("d", "SELECT * FROM td WHERE d_cid = $c.cid", bv="d")
    return builder.build()


def grandparent_skip_view():
    """The c level references $a directly, skipping $b."""
    builder = ViewBuilder(CATALOG)
    a = builder.node("a", "SELECT * FROM ta", bv="a")
    b = a.child("b", "SELECT * FROM tb WHERE b_aid = $a.aid", bv="b")
    b.child("c", "SELECT * FROM tc WHERE c_aid = $a.aid", bv="c")
    return builder.build()


def aggregate_interior_view():
    """An aggregate at an interior level with a child below it."""
    builder = ViewBuilder(CATALOG)
    a = builder.node("a", "SELECT * FROM ta", bv="a")
    summary = a.child(
        "bsum",
        "SELECT COUNT(bid) AS n, MAX(bx) AS top FROM tb WHERE b_aid = $a.aid",
        bv="s",
    )
    summary.child(
        "c", "SELECT * FROM tc WHERE c_aid = $a.aid AND cx > $s.n", bv="c"
    )
    return builder.build()


def assert_equivalent(view, stylesheet_text, db):
    stylesheet = parse_stylesheet(stylesheet_text)
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, CATALOG), db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )


def test_four_level_single_hop_chain(db):
    """Chain a->d collapsed one rule at a time: three nested inlines."""
    assert_equivalent(
        straight_chain_view(),
        '<xsl:template match="/"><out><xsl:apply-templates select="a/b/c/d"/></out></xsl:template>'
        '<xsl:template match="d"><hit><xsl:value-of select="."/></hit></xsl:template>',
        db,
    )


def test_four_level_two_hop_chain(db):
    assert_equivalent(
        straight_chain_view(),
        '<xsl:template match="/"><out><xsl:apply-templates select="a/b"/></out></xsl:template>'
        '<xsl:template match="b"><bb><xsl:apply-templates select="c/d"/></bb></xsl:template>'
        '<xsl:template match="d"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_grandparent_skip_multiplicity(db):
    """Skipping levels must preserve per-parent multiplicities: each b
    under a=1 repeats the same c rows."""
    assert_equivalent(
        grandparent_skip_view(),
        '<xsl:template match="/"><out><xsl:apply-templates select="a/b/c"/></out></xsl:template>'
        '<xsl:template match="c"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_grandparent_skip_with_predicates(db):
    assert_equivalent(
        grandparent_skip_view(),
        '<xsl:template match="/"><out><xsl:apply-templates select="a[@ax&gt;15]/b/c[@cx&gt;7]"/></out></xsl:template>'
        '<xsl:template match="c"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_aggregate_interior_level(db):
    """The interior aggregate feeds its child's parameter."""
    assert_equivalent(
        aggregate_interior_view(),
        '<xsl:template match="/"><out><xsl:apply-templates select="a/bsum/c"/></out></xsl:template>'
        '<xsl:template match="c"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_aggregate_interior_attribute_output(db):
    assert_equivalent(
        aggregate_interior_view(),
        '<xsl:template match="/"><out><xsl:apply-templates select="a/bsum"/></out></xsl:template>'
        '<xsl:template match="bsum"><s n="{@n}" top="{@top}"/></xsl:template>',
        db,
    )


def test_deep_forced_unbind_cascade(db):
    """Three bare apply-templates rules in a row: forced unbinding must
    cascade, nesting three derived tables."""
    assert_equivalent(
        straight_chain_view(),
        '<xsl:template match="/"><out><xsl:apply-templates select="a"/></out></xsl:template>'
        '<xsl:template match="a"><xsl:apply-templates select="b"/></xsl:template>'
        '<xsl:template match="b"><xsl:apply-templates select="c"/></xsl:template>'
        '<xsl:template match="c"><xsl:apply-templates select="d"/></xsl:template>'
        '<xsl:template match="d"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_sibling_existence_on_deep_chain(db):
    assert_equivalent(
        straight_chain_view(),
        '<xsl:template match="/"><out><xsl:apply-templates select="a/b"/></out></xsl:template>'
        '<xsl:template match="b"><bb>'
        '<xsl:apply-templates select="c[d]/../c/d"/>'
        "</bb></xsl:template>"
        '<xsl:template match="d"><xsl:value-of select="."/></xsl:template>',
        db,
    )


def test_empty_database_deep_chain():
    db = Database(CATALOG)
    try:
        assert_equivalent(
            straight_chain_view(),
            '<xsl:template match="/"><out><xsl:apply-templates select="a/b/c/d"/></out></xsl:template>'
            '<xsl:template match="d"><hit/></xsl:template>',
            db,
        )
    finally:
        db.close()

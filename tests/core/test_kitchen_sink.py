"""Kitchen-sink integration: every composable feature in one stylesheet.

One stylesheet combining modes, flow control, general value-of, AVTs,
predicates (attribute, path-existence, negation, aggregates), dynamic
conflicts, parent navigation, and forced unbinding — composed end to end
and checked against the interpreter.
"""

import pytest

from repro.core import compose
from repro.core.optimize import prune_stylesheet_view
from repro.schema_tree import materialize
from repro.schema_tree.io import view_from_xml, view_to_xml
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view
from repro.xmlcore import canonical_form
from repro.xslt import apply_stylesheet, parse_stylesheet

KITCHEN_SINK = """
<xsl:template match="/">
  <report>
    <xsl:apply-templates select="metro"/>
  </report>
</xsl:template>

<xsl:template match="metro">
  <city name="{@metroname}">
    <xsl:if test="hotel">
      <has_hotels/>
    </xsl:if>
    <xsl:apply-templates select="confstat" mode="summary"/>
    <xsl:apply-templates select="hotel[not(confroom[@capacity&gt;500])]"/>
  </city>
</xsl:template>

<xsl:template match="metro/confstat" mode="summary">
  <citywide cap="{@SUM_capacity}"/>
</xsl:template>

<xsl:template match="hotel[@pool=1]" priority="3">
  <pool_hotel stars="{@starrating}">
    <xsl:apply-templates select="confstat"/>
  </pool_hotel>
</xsl:template>

<xsl:template match="hotel">
  <xsl:choose>
    <xsl:when test="@gym = 1">
      <gym_hotel><xsl:value-of select="confroom"/></gym_hotel>
    </xsl:when>
    <xsl:otherwise>
      <plain_hotel id="{@hotelid}"/>
    </xsl:otherwise>
  </xsl:choose>
</xsl:template>

<xsl:template match="hotel/confstat">
  <stats total="{@SUM_capacity}">
    <xsl:apply-templates select="../confroom[@capacity&gt;100]"/>
  </stats>
</xsl:template>

<xsl:template match="confroom">
  <xsl:value-of select="."/>
</xsl:template>
"""


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(
        HotelDataSpec(metros=4, hotels_per_metro=5, confrooms_per_hotel=3)
    )
    yield database
    database.close()


@pytest.fixture(scope="module")
def view(db):
    return figure1_view(db.catalog)


@pytest.fixture(scope="module")
def stylesheet():
    return parse_stylesheet(KITCHEN_SINK)


def test_kitchen_sink_composes(view, db, stylesheet):
    composed = compose(view, stylesheet, db.catalog)
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    assert canonical_form(naive, ordered=False) == canonical_form(
        materialize(composed, db), ordered=False
    )


def test_kitchen_sink_output_is_nontrivial(view, db, stylesheet):
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    tags = {e.tag for e in naive.iter_elements()}
    # Every feature path must actually fire on the test data.
    assert {"city", "has_hotels", "citywide", "stats"} <= tags
    assert ("pool_hotel" in tags) or ("gym_hotel" in tags) or ("plain_hotel" in tags)


def test_kitchen_sink_survives_pruning(view, db, stylesheet):
    composed = compose(view, stylesheet, db.catalog)
    before = canonical_form(materialize(composed, db), ordered=False)
    prune_stylesheet_view(composed, db.catalog)
    after = canonical_form(materialize(composed, db), ordered=False)
    assert before == after


def test_kitchen_sink_view_roundtrips_through_xml(view, db, stylesheet):
    composed = compose(view, stylesheet, db.catalog)
    restored = view_from_xml(view_to_xml(composed), db.catalog)
    assert canonical_form(materialize(composed, db)) == canonical_form(
        materialize(restored, db)
    )


def test_kitchen_sink_composed_never_touches_availability(view, db, stylesheet):
    from repro.sql.analysis import referenced_tables

    composed = compose(view, stylesheet, db.catalog)
    tables = set()
    for node in composed.nodes(include_root=False):
        if node.tag_query is not None:
            tables.update(referenced_tables(node.tag_query))
    assert "availability" not in tables
    assert "guestroom" not in tables

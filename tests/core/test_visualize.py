"""Tests for DOT rendering of composition structures."""

from repro.core.ctg import build_ctg
from repro.core.tvq import build_tvq
from repro.core.visualize import ctg_to_dot, tvq_to_dot, view_to_dot
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view, figure4_stylesheet


def test_view_to_dot():
    view = figure1_view(hotel_catalog())
    dot = view_to_dot(view)
    assert dot.startswith("digraph view {")
    assert '"(1) <metro> $m"' in dot
    assert "n1 -> n3;" in dot  # metro -> hotel
    assert dot.rstrip().endswith("}")


def test_ctg_to_dot():
    view = figure1_view(hotel_catalog())
    ctg = build_ctg(view, figure4_stylesheet())
    dot = ctg_to_dot(ctg)
    assert '"((0, root), R1)"' in dot
    assert 'label="hotel/confstat"' in dot
    assert dot.count("->") == len(ctg.edges)


def test_tvq_to_dot():
    catalog = hotel_catalog()
    view = figure1_view(catalog)
    tvq = build_tvq(build_ctg(view, figure4_stylesheet()), catalog)
    dot = tvq_to_dot(tvq)
    assert "$m_new" in dot
    assert dot.count("->") == tvq.size() - 1


def test_quotes_escaped():
    view = figure1_view(hotel_catalog())
    dot = view_to_dot(view)
    # every label is quoted and parse-safe (no stray unescaped quotes)
    for line in dot.splitlines():
        assert line.count('"') % 2 == 0

"""Property-based equivalence: Compose(v,x)(I) == x(v(I)) on random inputs.

The strategy space: random tree-shaped views over a small linked-table
catalog, random composable stylesheets (suffix match patterns, optional
attribute predicates, child-chain and parent-hopping selects, value-of
output), and random database instances including NULLs. Each example
checks the paper's central theorem end-to-end.
"""

from __future__ import annotations

import random as stdlib_random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import compose
from repro.errors import UnsupportedFeatureError
from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.schema_tree import materialize
from repro.schema_tree.builder import ViewBuilder
from repro.xmlcore import canonical_form
from repro.xslt import apply_stylesheet
from repro.xslt.parser import parse_stylesheet

MAX_DEPTH = 3


def make_catalog() -> Catalog:
    return Catalog(
        [
            table(
                f"t{level}",
                ("id", "INTEGER"),
                ("parent_id", "INTEGER"),
                ("a", "INTEGER"),
                ("b", "INTEGER"),
                primary_key="id",
            )
            for level in range(MAX_DEPTH + 1)
        ]
    )


CATALOG = make_catalog()


@st.composite
def view_shapes(draw):
    """A random tree shape: list of (tag, parent_index, depth)."""
    nodes = [("n0", None, 0)]
    count = draw(st.integers(1, 4))
    for index in range(1, count + 1):
        parent_index = draw(st.integers(0, len(nodes) - 1))
        while nodes[parent_index][2] >= MAX_DEPTH:
            parent_index -= 1
        depth = nodes[parent_index][2] + 1
        nodes.append((f"n{index}", parent_index, depth))
    return nodes


def build_view(shape, filters, aggregate_leaves=False):
    builder = ViewBuilder(CATALOG)
    handles = []
    children_seen = {i for _, i, _ in shape if i is not None}
    for index, (tag, parent_index, depth) in enumerate(shape):
        condition = ""
        if filters[index % len(filters)]:
            condition = " AND a > 25"
        if parent_index is None:
            handle = builder.node(
                tag, f"SELECT * FROM t{depth} WHERE parent_id = 0{condition}",
                bv=f"v{index}",
            )
        else:
            parent = handles[parent_index]
            if aggregate_leaves and index not in children_seen and index % 2 == 1:
                # Ungrouped aggregate leaf: one summary tuple per parent,
                # present even over empty groups (the scalar-unbinding
                # path must preserve this).
                query = (
                    f"SELECT SUM(b) AS total, COUNT(id) AS cnt FROM t{depth} "
                    f"WHERE parent_id = $v{parent_index}.id{condition}"
                )
            else:
                query = (
                    f"SELECT * FROM t{depth} WHERE parent_id = "
                    f"$v{parent_index}.id{condition}"
                )
            handle = parent.child(tag, query, bv=f"v{index}")
        handles.append(handle)
    return builder.build()


def populate(db, seed):
    rng = stdlib_random.Random(seed)
    next_id = 0
    parents = {0: [0]}  # level -> candidate parent ids (0 = roots)
    for level in range(MAX_DEPTH + 1):
        rows = []
        ids = []
        for parent in parents.get(level, []):
            for _ in range(rng.randint(0, 3)):
                next_id += 1
                ids.append(next_id)
                rows.append(
                    {
                        "id": next_id,
                        "parent_id": parent,
                        "a": rng.choice([None, 10, 30, 50, 70]),
                        "b": rng.randint(0, 100),
                    }
                )
        db.insert_rows(f"t{level}", rows)
        parents[level + 1] = ids


@st.composite
def stylesheets_for(draw, shape):
    """A random composable stylesheet against the given view shape."""
    children_of = {}
    for index, (tag, parent_index, _depth) in enumerate(shape):
        if parent_index is not None:
            children_of.setdefault(parent_index, []).append(index)

    rules = []
    top_level = [i for i, (_t, p, _d) in enumerate(shape) if p is None]
    start = draw(st.sampled_from(top_level))
    rules.append(
        '<xsl:template match="/"><out>'
        f'<xsl:apply-templates select="{shape[start][0]}"/>'
        "</out></xsl:template>"
    )
    # Walk the view emitting a rule per reached node.
    frontier = [start]
    seen = set()
    while frontier:
        index = frontier.pop()
        if index in seen:
            continue
        seen.add(index)
        tag = shape[index][0]
        opening = f"<r{tag}>"
        if draw(st.booleans()):
            opening = f'<r{tag} av="{{@b}}">'
        body_parts = [opening]
        if draw(st.booleans()):
            body_parts.append('<xsl:value-of select="@a"/>')
        if draw(st.booleans()):
            body_parts.append('<xsl:value-of select="."/>')
        for child_index in children_of.get(index, []):
            if draw(st.booleans()):
                child_tag = shape[child_index][0]
                predicate = draw(
                    st.sampled_from(["", "[@a>20]", "[@b&lt;50]", "[not(@a)]"])
                )
                sort = draw(
                    st.sampled_from(
                        [
                            "",
                            '<xsl:sort select="@b" data-type="number"/>',
                            '<xsl:sort select="@a" order="descending" data-type="number"/>'
                            '<xsl:sort select="@id" data-type="number"/>',
                        ]
                    )
                )
                if sort:
                    body_parts.append(
                        f'<xsl:apply-templates select="{child_tag}{predicate}">'
                        f"{sort}</xsl:apply-templates>"
                    )
                else:
                    body_parts.append(
                        f'<xsl:apply-templates select="{child_tag}{predicate}"/>'
                    )
                frontier.append(child_index)
        body_parts.append(f"</r{tag}>")
        match = tag
        if draw(st.booleans()):
            match = f"{tag}[@b>10]"
        rules.append(
            f'<xsl:template match="{match}">{"".join(body_parts)}</xsl:template>'
        )
    return "".join(rules)


@st.composite
def scenarios(draw):
    shape = draw(view_shapes())
    filters = draw(st.lists(st.booleans(), min_size=2, max_size=2))
    stylesheet_text = draw(stylesheets_for(shape))
    seed = draw(st.integers(0, 10_000))
    aggregates = draw(st.booleans())
    return shape, filters, stylesheet_text, seed, aggregates


@given(scenarios())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_composition_equivalence(scenario):
    shape, filters, stylesheet_text, seed, aggregates = scenario
    view = build_view(shape, filters, aggregate_leaves=aggregates)
    stylesheet = parse_stylesheet(stylesheet_text)
    db = Database(CATALOG)
    try:
        populate(db, seed)
        try:
            composed_view = compose(view, stylesheet, CATALOG)
        except UnsupportedFeatureError:
            # Random stylesheets may stray outside the dialect; that must
            # be an explicit rejection, never a wrong answer.
            return
        naive = apply_stylesheet(stylesheet, materialize(view, db))
        composed = materialize(composed_view, db)
        assert canonical_form(naive, ordered=False) == canonical_form(
            composed, ordered=False
        ), f"\nstylesheet: {stylesheet_text}\nview:\n{view.describe()}"
    finally:
        db.close()


@given(scenarios())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_composition_is_deterministic(scenario):
    shape, filters, stylesheet_text, _seed, aggregates = scenario
    view = build_view(shape, filters, aggregate_leaves=aggregates)
    stylesheet = parse_stylesheet(stylesheet_text)
    try:
        first = compose(view, stylesheet, CATALOG)
        second = compose(view, stylesheet, CATALOG)
    except UnsupportedFeatureError:
        return
    assert first.describe() == second.describe()


@given(scenarios())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_composed_views_validate(scenario):
    from repro.schema_tree.validate import validate_view

    shape, filters, stylesheet_text, _seed, aggregates = scenario
    view = build_view(shape, filters, aggregate_leaves=aggregates)
    stylesheet = parse_stylesheet(stylesheet_text)
    try:
        composed = compose(view, stylesheet, CATALOG)
    except UnsupportedFeatureError:
        return
    validate_view(composed, CATALOG)

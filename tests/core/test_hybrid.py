"""Tests for the hybrid executor's planning ladder."""

import pytest

from repro.core.hybrid import HybridExecutor
from repro.schema_tree import materialize
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import (
    figure1_view,
    figure4_stylesheet,
    figure25_stylesheet,
)
from repro.xmlcore import canonical_form
from repro.xslt import apply_stylesheet
from repro.xslt.parser import parse_stylesheet


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=4))
    yield database
    database.close()


@pytest.fixture(scope="module")
def view(db):
    return figure1_view(db.catalog)


def test_composable_stylesheet_plans_composed(view, db):
    executor = HybridExecutor(view, figure4_stylesheet(), db.catalog)
    assert executor.plan.kind == "composed"
    assert executor.plan.stylesheet is None
    result = executor.execute(db)
    naive = apply_stylesheet(figure4_stylesheet(), materialize(view, db))
    assert canonical_form(result, ordered=False) == canonical_form(
        naive, ordered=False
    )


def test_recursive_stylesheet_plans_recursive(view, db):
    executor = HybridExecutor(view, figure25_stylesheet(), db.catalog)
    assert executor.plan.kind == "recursive"
    assert executor.plan.builtin_rules == "standard"
    assert executor.plan.notes  # records why full composition failed
    executor.execute(db)  # runs without error


def test_uncomposable_falls_back(view, db):
    # '//' is outside every composable dialect.
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m><xsl:apply-templates select="hotel//confroom"/></m></xsl:template>'
        '<xsl:template match="confroom"><c/></xsl:template>'
    )
    executor = HybridExecutor(view, stylesheet, db.catalog)
    assert executor.plan.kind == "fallback"
    result = executor.execute(db)
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    assert canonical_form(result, ordered=False) == canonical_form(
        naive, ordered=False
    )


def test_fallback_respects_builtin_setting(view, db):
    stylesheet = parse_stylesheet(
        # No root rule at all: needs standard builtins to do anything,
        # and // keeps it out of the composable dialect.
        '<xsl:template match="metro"><m><xsl:apply-templates select="hotel//confroom"/></m></xsl:template>'
    )
    silent = HybridExecutor(view, stylesheet, db.catalog)
    assert silent.plan.kind == "fallback"
    assert serialize_empty(silent.execute(db))
    noisy = HybridExecutor(
        view, stylesheet, db.catalog, fallback_builtin_rules="standard"
    )
    assert not serialize_empty(noisy.execute(db))


def serialize_empty(document) -> bool:
    from repro.xmlcore.serializer import serialize

    return serialize(document) == ""


def test_plan_notes_explain_rejections(view, db):
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m>text-content</m></xsl:template>'
    )
    executor = HybridExecutor(view, stylesheet, db.catalog)
    assert executor.plan.kind == "fallback"
    assert any("text" in note for note in executor.plan.notes)


def test_blowup_falls_back_to_interpretation(db):
    """When TVQ unfolding exceeds the bound, the hybrid plan degrades to
    interpretation rather than failing."""
    from repro.workloads.synthetic import (
        blowup_stylesheet,
        chain_catalog,
        chain_view,
        populate_chain,
    )
    from repro.relational.engine import Database

    catalog = chain_catalog(12)
    chain_db = Database(catalog)
    populate_chain(chain_db, 12, fanout=1, roots=1)
    view = chain_view(12, catalog)
    executor = HybridExecutor(
        view, blowup_stylesheet(12), catalog, max_nodes=100
    )
    assert executor.plan.kind == "fallback"
    assert any("blowup" in note for note in executor.plan.notes)
    result = executor.execute(chain_db)
    naive = apply_stylesheet(
        blowup_stylesheet(12), materialize(view, chain_db)
    )
    assert canonical_form(result, ordered=False) == canonical_form(
        naive, ordered=False
    )
    chain_db.close()

"""Golden tests: the stylesheet views of Figures 7(c) and 16, plus the
central equivalence theorem on the paper's workload."""

import pytest

from repro.core import compose
from repro.schema_tree import materialize
from repro.sql.printer import print_select
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import (
    figure1_view,
    figure4_stylesheet,
    figure15_stylesheet,
)
from repro.xmlcore import canonical_form
from repro.xslt import apply_stylesheet


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(HotelDataSpec(metros=3, hotels_per_metro=4))
    yield database
    database.close()


@pytest.fixture(scope="module")
def view(db):
    return figure1_view(db.catalog)


@pytest.fixture(scope="module")
def figure7c(view, db):
    return compose(view, figure4_stylesheet(), db.catalog, paper_mode=True)


def tags_by_depth(view):
    out = []

    def visit(node, depth):
        out.append((depth, node.tag))
        for child in node.children:
            visit(child, depth + 1)

    for top in view.root.children:
        visit(top, 0)
    return out


def test_figure7c_structure(figure7c):
    assert tags_by_depth(figure7c) == [
        (0, "HTML"),
        (1, "HEAD"),
        (1, "BODY"),
        (2, "result_metro"),
        (3, "A"),
        (3, "result_confstat"),
        (4, "B"),
        (4, "confroom"),
    ]


def test_figure7c_queries_attach_to_the_right_nodes(figure7c):
    nodes = {n.tag: n for n in figure7c.nodes(include_root=False)}
    assert nodes["HTML"].tag_query is None
    assert nodes["A"].tag_query is None
    assert print_select(nodes["result_metro"].tag_query) == (
        "SELECT metroid, metroname FROM metroarea"
    )
    assert nodes["result_metro"].bv == "m_new"
    assert nodes["result_confstat"].bv == "s_new"
    assert "$s_new.hotelid" in print_select(nodes["confroom"].tag_query)


def test_figure7c_literal_elements_carry_no_data(figure7c):
    nodes = {n.tag: n for n in figure7c.nodes(include_root=False)}
    for tag in ["HTML", "HEAD", "BODY", "A", "B", "result_metro", "result_confstat"]:
        assert nodes[tag].attr_columns == []


def test_figure7c_context_element_carries_original_columns(figure7c):
    nodes = {n.tag: n for n in figure7c.nodes(include_root=False)}
    assert nodes["confroom"].attr_columns == [
        "c_id", "chotel_id", "croomnumber", "capacity", "rackrate",
    ]


def test_equivalence_theorem_figure4(view, db):
    """v'(I) = x(v(I)) — the paper's correctness property."""
    naive = apply_stylesheet(figure4_stylesheet(), materialize(view, db))
    composed = materialize(compose(view, figure4_stylesheet(), db.catalog), db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )


def test_figure16_forced_unbinding(view, db):
    composed = compose(view, figure15_stylesheet(), db.catalog, paper_mode=True)
    nodes = {n.tag: n for n in composed.nodes(include_root=False)}
    # R2 vanished: result_confstat hangs directly under BODY.
    assert [n.tag for n in nodes["BODY"].children] == ["result_confstat"]
    sql = print_select(nodes["result_confstat"].tag_query)
    # Figure 16's nesting: metroarea inlined INSIDE the hotel subquery.
    assert "(SELECT metroid, metroname FROM metroarea) AS TEMP" in sql
    assert "metro_id = TEMP.metroid" in sql
    # The metro columns are carried up and grouped.
    assert "TEMP.metroname" in sql or "metroname" in sql
    assert "GROUP BY" in sql


def test_equivalence_theorem_figure15(view, db):
    naive = apply_stylesheet(figure15_stylesheet(), materialize(view, db))
    composed = materialize(compose(view, figure15_stylesheet(), db.catalog), db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )


def test_composed_view_revalidates(figure7c, db):
    from repro.schema_tree.validate import validate_view

    validate_view(figure7c, db.catalog)


def test_composition_reduces_queries(view, db):
    db.stats.reset()
    materialize(view, db)
    naive_queries = db.stats.queries_executed
    composed = compose(view, figure4_stylesheet(), db.catalog)
    db.stats.reset()
    materialize(composed, db)
    composed_queries = db.stats.queries_executed
    assert composed_queries < naive_queries


def test_composition_skips_unreferenced_nodes(view, db):
    """Nodes the stylesheet never touches are never materialized."""
    composed = compose(view, figure4_stylesheet(), db.catalog)
    tags = {n.tag for n in composed.nodes(include_root=False)}
    assert "hotel_available" not in tags
    assert "metro_available" not in tags
    assert "metro" not in tags  # replaced by result_metro

"""Golden tests for Section 5.1: predicate composition (Figures 17/18/20)."""

import pytest

from repro.core import compose
from repro.core.predicates import (
    FALSE_CONDITION,
    OwnQueryResolver,
    ParamResolver,
    translate_predicate,
)
from repro.schema_tree import materialize
from repro.sql.analysis import DictCatalog
from repro.sql.parser import parse_select
from repro.sql.printer import print_expr, print_select
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure17_stylesheet
from repro.xmlcore import canonical_form
from repro.xpath.parser import parse_expression
from repro.xslt import apply_stylesheet


@pytest.fixture(scope="module")
def db():
    database = build_hotel_database(HotelDataSpec(metros=3, hotels_per_metro=4))
    yield database
    database.close()


@pytest.fixture(scope="module")
def view(db):
    return figure1_view(db.catalog)


def test_figure20_unbound_query(view, db):
    composed = compose(view, figure17_stylesheet(), db.catalog)
    nodes = {n.tag: n for n in composed.nodes(include_root=False)}
    sql = print_select(nodes["confroom"].tag_query)
    # Every condition of Figure 20, modulo canonical attribute naming and
    # the semantically-correct $m_new for the metro predicate:
    assert "chotel_id = $s_new.hotelid" in sql
    assert "capacity > 250" in sql
    assert "$s_new.SUM_capacity < 200" in sql
    assert "$m_new.metroname = 'chicago'" in sql
    assert "HAVING SUM(confroom.capacity) > 100" in sql.replace(
        "SUM(capacity)", "SUM(confroom.capacity)"
    )
    assert sql.count("EXISTS") == 2


def test_equivalence_theorem_figure17(view, db):
    naive = apply_stylesheet(figure17_stylesheet(), materialize(view, db))
    composed = materialize(compose(view, figure17_stylesheet(), db.catalog), db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )


# -- translate_predicate unit coverage ---------------------------------------

CATALOG = DictCatalog({"confroom": ["c_id", "capacity"]})


def own_resolver(sql="SELECT SUM(capacity) AS SUM_capacity, c_id FROM confroom"):
    return OwnQueryResolver(parse_select(sql), CATALOG)


def test_plain_comparison_goes_to_where():
    translated = translate_predicate(parse_expression("@c_id > 5"), own_resolver())
    assert not translated.needs_having
    assert print_expr(translated.condition) == "c_id > 5"


def test_aggregate_comparison_goes_to_having():
    translated = translate_predicate(
        parse_expression("@SUM_capacity > 100"), own_resolver()
    )
    assert translated.needs_having
    assert print_expr(translated.condition) == "SUM(capacity) > 100"


def test_star_columns_resolvable():
    resolver = OwnQueryResolver(parse_select("SELECT * FROM confroom"), CATALOG)
    translated = translate_predicate(parse_expression("@capacity = 1"), resolver)
    assert print_expr(translated.condition) == "confroom.capacity = 1"


def test_missing_attribute_is_statically_false():
    translated = translate_predicate(parse_expression("@ghost = 1"), own_resolver())
    assert translated.condition == FALSE_CONDITION


def test_not_of_missing_attribute_is_true():
    translated = translate_predicate(
        parse_expression("not(@ghost = 1)"), own_resolver()
    )
    # Two-valued negation: NULL-valued comparisons coalesce to false
    # before the NOT, so the result is statically true.
    assert print_expr(translated.condition) == "NOT COALESCE(0 = 1, 0)"


def test_bare_attribute_is_existence():
    translated = translate_predicate(parse_expression("@c_id"), own_resolver())
    assert "IS NULL" in print_expr(translated.condition)


def test_boolean_connectives():
    translated = translate_predicate(
        parse_expression("@c_id = 1 or @capacity > 2 and @c_id != 3"),
        own_resolver(),
    )
    text = print_expr(translated.condition)
    assert "OR" in text and "AND" in text and "<>" in text


def test_param_resolver_produces_parameters():
    translated = translate_predicate(
        parse_expression("@metroname = 'chicago'"),
        ParamResolver("m_new", ["metroid", "metroname"]),
    )
    assert print_expr(translated.condition) == "$m_new.metroname = 'chicago'"


def test_param_resolver_missing_column_false():
    translated = translate_predicate(
        parse_expression("@ghost = 1"), ParamResolver("m", ["metroid"])
    )
    assert translated.condition == FALSE_CONDITION


def test_variables_rejected():
    from repro.errors import UnsupportedFeatureError

    with pytest.raises(UnsupportedFeatureError):
        translate_predicate(parse_expression("@c_id < $idx"), own_resolver())


def test_arithmetic_in_values():
    resolver = OwnQueryResolver(parse_select("SELECT * FROM confroom"), CATALOG)
    translated = translate_predicate(
        parse_expression("@capacity - 100 > 50"), resolver
    )
    assert "- 100 > 50" in print_expr(translated.condition)


def test_predicate_selectivity_observed(view, db):
    """The chicago-only predicate of Figure 17 restricts output to one metro."""
    composed = compose(view, figure17_stylesheet(), db.catalog)
    doc = materialize(composed, db)
    confrooms = [e for e in doc.iter_elements() if e.tag == "confroom"]
    for confroom in confrooms:
        assert int(confroom.get("capacity")) > 250

"""Golden tests: the CTG of Figure 6 and its construction rules."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.core.ctg import build_ctg
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xslt.parser import parse_stylesheet


@pytest.fixture(scope="module")
def view():
    return figure1_view(hotel_catalog())


@pytest.fixture(scope="module")
def ctg(view):
    return build_ctg(view, figure4_stylesheet())


def node_keys(ctg):
    return sorted(
        (n.schema_node.id, n.rule.position + 1) for n in ctg.nodes
    )


def test_figure6_nodes(ctg):
    # ((0, root), R1), ((1, metro), R2), ((4, confstat), R3), ((5, confroom), R4)
    assert node_keys(ctg) == [(0, 1), (1, 2), (4, 3), (5, 4)]


def test_figure6_edges(ctg):
    edges = [
        (e.source.schema_node.id, e.target.schema_node.id, e.apply.select.to_text())
        for e in ctg.edges
    ]
    assert edges == [
        (0, 1, "metro"),
        (1, 4, "hotel/confstat"),
        (4, 5, "../hotel_available/../confroom"),
    ]


def test_metro_confstat_pruned(ctg, view):
    # (2, confstat) matches R3 but is unreachable, so pruning removes it.
    assert all(n.schema_node.id != 2 for n in ctg.nodes)


def test_edge_smts_match_figure6(ctg):
    smt_e2 = ctg.edges[1].smt
    assert [n.schema_id for n in smt_e2.nodes()] == [1, 3, 4]
    smt_e3 = ctg.edges[2].smt
    assert smt_e3.root.schema_id == 1


def test_ctg_is_acyclic(ctg):
    assert not ctg.has_cycle()
    assert ctg.multi_incoming_nodes() == []


def test_describe_output(ctg):
    text = ctg.describe()
    assert "((0, root), R1)" in text
    assert "((4, confstat), R3)" in text


def test_mode_mismatch_suppresses_edges(view):
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="metro" mode="x"/></xsl:template>'
        '<xsl:template match="metro"><m/></xsl:template>'
    )
    ctg = build_ctg(view, stylesheet)
    # metro's rule is in the default mode but the apply asks for mode x:
    # no edge, so the metro node is pruned.
    assert node_keys(ctg) == [(0, 1)]


def test_static_conflict_resolution_drops_losers(view):
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel"><low/></xsl:template>'
        '<xsl:template match="metro/hotel"><high/></xsl:template>'
    )
    ctg = build_ctg(view, stylesheet)
    hotel_nodes = [n for n in ctg.nodes if n.schema_node.id == 3]
    assert len(hotel_nodes) == 1
    assert hotel_nodes[0].rule.match.to_text() == "metro/hotel"


def test_dynamic_conflict_raises(view):
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel"><low/></xsl:template>'
        '<xsl:template match="metro/hotel[@starrating&gt;4]"><high/></xsl:template>'
    )
    with pytest.raises(UnsupportedFeatureError) as exc:
        build_ctg(view, stylesheet)
    assert exc.value.feature == "conflicting-rules"


def test_allow_conflicts_flag(view):
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel"><a/></xsl:template>'
        '<xsl:template match="metro/hotel[@starrating&gt;4]"><b/></xsl:template>'
    )
    ctg = build_ctg(view, stylesheet, allow_conflicts=True)
    hotel_nodes = [n for n in ctg.nodes if n.schema_node.id == 3]
    assert len(hotel_nodes) == 2


def test_wildcard_select_reaches_all_children(view):
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro"><xsl:apply-templates select="*"/></xsl:template>'
        '<xsl:template match="confstat"><cs/></xsl:template>'
        '<xsl:template match="hotel"><h/></xsl:template>'
    )
    ctg = build_ctg(view, stylesheet)
    targets = sorted(
        e.target.schema_node.id for e in ctg.edges if e.apply.select.to_text() == "*"
    )
    assert targets == [2, 3]


def test_recursive_stylesheet_has_cycle(view):
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro"><xsl:apply-templates select="hotel"/></xsl:template>'
        '<xsl:template match="hotel"><xsl:apply-templates select=".."/></xsl:template>'
    )
    ctg = build_ctg(view, stylesheet)
    assert ctg.has_cycle()

"""Unit tests for the schema-tree model."""

import pytest

from repro.errors import ViewDefinitionError
from repro.schema_tree.builder import ViewBuilder
from repro.schema_tree.model import SchemaNode, SchemaTreeQuery
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view


@pytest.fixture()
def view():
    return figure1_view(hotel_catalog())


def test_paper_node_ids(view):
    # Figure 1's numbering is preserved.
    assert view.node_by_id(1).tag == "metro"
    assert view.node_by_id(2).tag == "confstat"
    assert view.node_by_id(3).tag == "hotel"
    assert view.node_by_id(4).tag == "confstat"
    assert view.node_by_id(5).tag == "confroom"
    assert view.node_by_id(6).tag == "hotel_available"
    assert view.node_by_id(7).tag == "metro_available"


def test_size_excludes_synthetic_root(view):
    assert view.size() == 7
    assert len(view.nodes(include_root=True)) == 8


def test_parameters_derived_from_query(view):
    hotel = view.node_by_id(3)
    assert hotel.parameters == ["m"]
    metro_available = view.node_by_id(7)
    assert metro_available.parameters == ["m", "a"]


def test_path_from_root(view):
    confroom = view.node_by_id(5)
    tags = [n.tag for n in confroom.path_from_root()]
    assert tags == ["", "metro", "hotel", "confroom"]


def test_lowest_common_ancestor(view):
    confstat = view.node_by_id(4)
    confroom = view.node_by_id(5)
    assert SchemaTreeQuery.lowest_common_ancestor(confstat, confroom).id == 3
    metro_available = view.node_by_id(7)
    assert SchemaTreeQuery.lowest_common_ancestor(confstat, metro_available).id == 3
    assert SchemaTreeQuery.lowest_common_ancestor(confstat, confstat).id == 4


def test_path_between(view):
    hotel = view.node_by_id(3)
    metro_available = view.node_by_id(7)
    ids = [n.id for n in SchemaTreeQuery.path_between(hotel, metro_available)]
    assert ids == [3, 6, 7]


def test_path_between_rejects_non_ancestor(view):
    with pytest.raises(ViewDefinitionError):
        SchemaTreeQuery.path_between(view.node_by_id(5), view.node_by_id(4))


def test_child_by_tag_distinguishes_duplicates(view):
    metro = view.node_by_id(1)
    assert [n.id for n in metro.child_by_tag("confstat")] == [2]
    hotel = view.node_by_id(3)
    assert [n.id for n in hotel.child_by_tag("confstat")] == [4]


def test_node_by_id_missing(view):
    with pytest.raises(ViewDefinitionError):
        view.node_by_id(99)


def test_describe_mentions_every_node(view):
    text = view.describe()
    for tag in ["metro", "hotel", "confroom", "hotel_available", "metro_available"]:
        assert tag in text


def test_root_must_have_id_zero():
    with pytest.raises(ViewDefinitionError):
        SchemaTreeQuery(SchemaNode(5, "x"))


def test_walk_preorder(view):
    ids = [n.id for n in view.nodes(include_root=False)]
    assert ids == [1, 2, 3, 4, 5, 6, 7]

"""Tests for catalog/view XML (de)serialization."""

import pytest

from repro.errors import ViewDefinitionError
from repro.core import compose
from repro.schema_tree import materialize
from repro.schema_tree.io import (
    catalog_from_xml,
    catalog_to_xml,
    load_catalog,
    load_view,
    save_catalog,
    save_view,
    view_from_xml,
    view_to_xml,
)
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xmlcore import canonical_form


def test_catalog_roundtrip():
    catalog = hotel_catalog()
    text = catalog_to_xml(catalog)
    restored = catalog_from_xml(text)
    assert restored.table_names() == catalog.table_names()
    assert restored.columns_of("hotel") == catalog.columns_of("hotel")
    assert restored.table("hotel").primary_key == "hotelid"
    assert [c.type for c in restored.table("hotel").columns] == [
        c.type for c in catalog.table("hotel").columns
    ]


def test_view_roundtrip_structure():
    catalog = hotel_catalog()
    view = figure1_view(catalog)
    text = view_to_xml(view)
    restored = view_from_xml(text, catalog)
    assert restored.describe() == view.describe()


def test_view_roundtrip_preserves_queries():
    catalog = hotel_catalog()
    view = figure1_view(catalog)
    restored = view_from_xml(view_to_xml(view), catalog)
    from repro.sql.printer import print_select

    for original, copy in zip(
        view.nodes(include_root=False), restored.nodes(include_root=False)
    ):
        if original.tag_query is None:
            assert copy.tag_query is None
        else:
            assert print_select(copy.tag_query) == print_select(original.tag_query)


def test_composed_view_roundtrips():
    """Composed views carry projection metadata; it must survive."""
    catalog = hotel_catalog()
    view = figure1_view(catalog)
    composed = compose(view, figure4_stylesheet(), catalog)
    restored = view_from_xml(view_to_xml(composed), catalog)
    nodes = {n.tag: n for n in restored.nodes(include_root=False)}
    assert nodes["HTML"].tag_query is None
    assert nodes["result_metro"].attr_columns == []
    assert nodes["confroom"].attr_columns == [
        "c_id", "chotel_id", "croomnumber", "capacity", "rackrate",
    ]


def test_roundtripped_composed_view_evaluates_identically(hotel_db):
    view = figure1_view(hotel_db.catalog)
    composed = compose(view, figure4_stylesheet(), hotel_db.catalog)
    restored = view_from_xml(view_to_xml(composed), hotel_db.catalog)
    original_doc = materialize(composed, hotel_db)
    restored_doc = materialize(restored, hotel_db)
    assert canonical_form(original_doc) == canonical_form(restored_doc)


def test_file_helpers(tmp_path, hotel_db):
    catalog_path = tmp_path / "catalog.xml"
    view_path = tmp_path / "view.xml"
    save_catalog(hotel_db.catalog, str(catalog_path))
    save_view(figure1_view(hotel_db.catalog), str(view_path))
    catalog = load_catalog(str(catalog_path))
    view = load_view(str(view_path), catalog)
    assert view.size() == 7


def test_literal_attributes_roundtrip():
    from repro.schema_tree.model import SchemaNode, SchemaTreeQuery

    view = SchemaTreeQuery()
    node = SchemaNode(1, "banner", literal_attributes={"class": "wide", "id": "x"})
    view.root.add_child(node)
    restored = view_from_xml(view_to_xml(view), validate=False)
    assert restored.nodes(include_root=False)[0].literal_attributes == {
        "class": "wide", "id": "x",
    }


@pytest.mark.parametrize(
    "bad",
    [
        "<notview/>",
        "<view><node/></view>",                      # missing tag
        "<view><weird tag='x'/></view>",
        "<catalog><table/></catalog>",               # missing name
        "<catalog><table name='t'><column/></table></catalog>",
    ],
)
def test_malformed_definitions_raise(bad):
    with pytest.raises(ViewDefinitionError):
        if bad.startswith("<catalog"):
            catalog_from_xml(bad)
        else:
            view_from_xml(bad, validate=False)


def test_validation_applies_on_load():
    text = (
        '<view><node tag="a" query="SELECT * FROM ghost"/></view>'
    )
    with pytest.raises(ViewDefinitionError):
        view_from_xml(text, hotel_catalog(), validate=True)
    # Without a catalog the structural check still passes.
    view_from_xml(text, validate=True)

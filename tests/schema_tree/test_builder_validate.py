"""Unit tests for the view builder and static validation."""

import pytest

from repro.errors import ViewDefinitionError
from repro.relational.schema import Catalog, table
from repro.schema_tree.builder import ViewBuilder
from repro.schema_tree.validate import validate_view

CATALOG = Catalog(
    [
        table("parent", ("id", "INTEGER"), ("name", "TEXT")),
        table("child", ("id", "INTEGER"), ("parent_id", "INTEGER")),
    ]
)


def test_builder_assigns_sequential_ids():
    builder = ViewBuilder(CATALOG)
    a = builder.node("a", "SELECT * FROM parent", bv="p")
    b = a.child("b", "SELECT * FROM child WHERE parent_id = $p.id", bv="c")
    view = builder.build()
    assert a.node.id == 1
    assert b.node.id == 2


def test_builder_auto_binding_variable():
    builder = ViewBuilder(CATALOG)
    node = builder.node("a", "SELECT * FROM parent")
    assert node.node.bv is not None


def test_builder_canonicalizes_aggregates():
    builder = ViewBuilder(CATALOG)
    node = builder.node("a", "SELECT COUNT(id) FROM parent")
    builder.build()
    assert node.node.tag_query.items[0].alias == "COUNT_id"


def test_builder_rejects_duplicate_bv():
    builder = ViewBuilder(CATALOG)
    builder.node("a", "SELECT * FROM parent", bv="p")
    with pytest.raises(ViewDefinitionError):
        builder.node("b", "SELECT * FROM parent", bv="p")


def test_builder_rejects_empty_tag():
    builder = ViewBuilder(CATALOG)
    with pytest.raises(ViewDefinitionError):
        builder.node("", "SELECT * FROM parent")


def test_validate_rejects_unknown_table():
    builder = ViewBuilder(CATALOG)
    builder.node("a", "SELECT * FROM ghost")
    with pytest.raises(ViewDefinitionError):
        builder.build()


def test_validate_rejects_unbound_parameter():
    builder = ViewBuilder(CATALOG)
    builder.node("a", "SELECT * FROM child WHERE parent_id = $nope.id")
    with pytest.raises(ViewDefinitionError):
        builder.build()


def test_validate_rejects_self_reference():
    builder = ViewBuilder(CATALOG)
    builder.node("a", "SELECT * FROM parent WHERE id = $p.id", bv="p")
    with pytest.raises(ViewDefinitionError):
        builder.build()


def test_validate_rejects_sibling_parameter():
    builder = ViewBuilder(CATALOG)
    builder.node("a", "SELECT * FROM parent", bv="p")
    builder.node("b", "SELECT * FROM child WHERE parent_id = $p.id", bv="c")
    # $p is bound by a *sibling*, not an ancestor.
    with pytest.raises(ViewDefinitionError):
        builder.build()


def test_validate_attr_columns_subset():
    builder = ViewBuilder(CATALOG)
    builder.node("a", "SELECT id, name FROM parent", attr_columns=["name"])
    builder.build()
    builder2 = ViewBuilder(CATALOG)
    builder2.node("a", "SELECT id FROM parent", attr_columns=["ghost"])
    with pytest.raises(ViewDefinitionError):
        builder2.build()


def test_validate_without_catalog_checks_structure_only():
    builder = ViewBuilder(None)
    builder.node("a", "SELECT * FROM whatever")
    view = builder.build()
    validate_view(view, None)

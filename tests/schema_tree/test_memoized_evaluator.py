"""Tests for the memoizing view evaluator."""

from repro.schema_tree.evaluator import ViewEvaluator
from repro.workloads.paper import figure1_view
from repro.xmlcore import canonical_form


def test_memoized_output_identical(hotel_db):
    view = figure1_view(hotel_db.catalog)
    plain = ViewEvaluator(hotel_db).materialize(view)
    memoized = ViewEvaluator(hotel_db, memoize=True).materialize(view)
    assert canonical_form(plain) == canonical_form(memoized)


def test_memoization_hits_on_repeated_parameters(hotel_db):
    view = figure1_view(hotel_db.catalog)
    evaluator = ViewEvaluator(hotel_db, memoize=True)
    evaluator.materialize(view)
    # metro_available's query depends on (metroid, startdate); several
    # hotels in a metro share start dates, so hits occur.
    assert evaluator.stats.cache_hits >= 0
    assert evaluator.stats.cache_misses > 0


def test_memoization_reduces_queries(hotel_db):
    view = figure1_view(hotel_db.catalog)
    hotel_db.stats.reset()
    ViewEvaluator(hotel_db).materialize(view)
    plain_queries = hotel_db.stats.queries_executed
    hotel_db.stats.reset()
    ViewEvaluator(hotel_db, memoize=True).materialize(view)
    memoized_queries = hotel_db.stats.queries_executed
    assert memoized_queries <= plain_queries


def test_memoization_key_distinguishes_parameters(hotel_db):
    """Different parent bindings must not share results."""
    view = figure1_view(hotel_db.catalog)
    memoized = ViewEvaluator(hotel_db, memoize=True).materialize(view)
    metros = memoized.child_elements()
    # Each metro has a distinct confstat sum (seeded data); sharing a
    # cache entry across metros would collapse them.
    sums = {
        m.find_children("confstat")[0].get("SUM_capacity") for m in metros
    }
    assert len(sums) > 1


def test_memoization_on_composed_views(hotel_db):
    """Composed views execute correctly under memoization too."""
    from repro.core import compose
    from repro.workloads.paper import figure4_stylesheet

    view = figure1_view(hotel_db.catalog)
    composed = compose(view, figure4_stylesheet(), hotel_db.catalog)
    plain = ViewEvaluator(hotel_db).materialize(composed)
    memoized = ViewEvaluator(hotel_db, memoize=True).materialize(composed)
    assert canonical_form(plain) == canonical_form(memoized)

"""Unit tests for view materialization."""

import pytest

from repro.errors import ViewEvaluationError
from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.schema_tree.builder import ViewBuilder
from repro.schema_tree.evaluator import ViewEvaluator, format_value, materialize
from repro.schema_tree.model import SchemaNode
from repro.xmlcore.serializer import serialize


@pytest.fixture()
def db():
    catalog = Catalog(
        [
            table("parent", ("id", "INTEGER"), ("name", "TEXT")),
            table(
                "child",
                ("id", "INTEGER"),
                ("parent_id", "INTEGER"),
                ("val", "REAL"),
            ),
        ]
    )
    database = Database(catalog)
    database.insert_rows("parent", [{"id": 1, "name": "a"}, {"id": 2, "name": "b"}])
    database.insert_rows(
        "child",
        [
            {"id": 10, "parent_id": 1, "val": 1.0},
            {"id": 11, "parent_id": 1, "val": 2.5},
            {"id": 12, "parent_id": 2, "val": None},
        ],
    )
    yield database
    database.close()


def simple_view(db, attr_columns=None):
    builder = ViewBuilder(db.catalog)
    parent = builder.node("p", "SELECT * FROM parent", bv="pp",
                          attr_columns=attr_columns)
    parent.child("c", "SELECT * FROM child WHERE parent_id = $pp.id", bv="cc")
    return builder.build()


def test_nested_loop_materialization(db):
    doc = materialize(simple_view(db), db)
    text = serialize(doc)
    assert text == (
        '<p id="1" name="a">'
        '<c id="10" parent_id="1" val="1"/>'
        '<c id="11" parent_id="1" val="2.5"/>'
        "</p>"
        '<p id="2" name="b"><c id="12" parent_id="2"/></p>'
    )


def test_null_attributes_omitted(db):
    doc = materialize(simple_view(db), db)
    last_child = doc.child_elements()[1].child_elements()[0]
    assert "val" not in last_child.attributes


def test_attr_columns_projection(db):
    doc = materialize(simple_view(db, attr_columns=["name"]), db)
    first = doc.child_elements()[0]
    assert first.attributes == {"name": "a"}


def test_queryless_node_emits_once_per_parent(db):
    view = simple_view(db)
    parent = view.node_by_id(1)
    literal = SchemaNode(10, "wrapper", literal_attributes={"k": "v"})
    parent.children.insert(0, literal)
    literal.parent = parent
    doc = materialize(view, db)
    wrappers = [e for e in doc.iter_elements() if e.tag == "wrapper"]
    assert len(wrappers) == 2
    assert wrappers[0].attributes == {"k": "v"}


def test_attr_source_bv_pulls_from_environment(db):
    view = simple_view(db)
    parent = view.node_by_id(1)
    literal = SchemaNode(
        10, "info", attr_columns=["name"], attr_source_bv="pp"
    )
    parent.add_child(literal)
    doc = materialize(view, db)
    infos = [e for e in doc.iter_elements() if e.tag == "info"]
    assert [e.get("name") for e in infos] == ["a", "b"]


def test_attr_source_bv_unbound_raises(db):
    view = simple_view(db)
    view.root.add_child(
        SchemaNode(10, "info", attr_columns=["name"], attr_source_bv="nope")
    )
    with pytest.raises(ViewEvaluationError):
        materialize(view, db)


def test_missing_attr_column_raises(db):
    view = simple_view(db)
    view.node_by_id(1).attr_columns = ["ghost"]
    with pytest.raises(ViewEvaluationError):
        materialize(view, db)


def test_stats_count_elements_and_attributes(db):
    evaluator = ViewEvaluator(db)
    evaluator.materialize(simple_view(db))
    assert evaluator.stats.elements_created == 5  # 2 parents + 3 children
    assert evaluator.stats.attributes_created == 4 + 8  # nulls omitted


def test_format_value():
    assert format_value(None) is None
    assert format_value(5) == "5"
    assert format_value(5.0) == "5"
    assert format_value(5.5) == "5.5"
    assert format_value("x") == "x"


def test_figure1_materialization_shape(hotel_db):
    from repro.workloads.paper import figure1_view

    doc = materialize(figure1_view(hotel_db.catalog), hotel_db)
    metros = doc.child_elements()
    assert len(metros) == 3
    for metro in metros:
        assert metro.tag == "metro"
        assert metro.find_children("confstat")
        for hotel in metro.find_children("hotel"):
            assert int(hotel.get("starrating")) > 4
            for available in hotel.find_children("hotel_available"):
                assert available.find_children("metro_available")

"""Bulk decorrelated evaluation: equivalence with the nested-loop evaluator.

The property tests draw random synthetic views (plain joins, non-key
projections that create duplicate sibling rows and duplicate parent
bindings, DISTINCT, ungrouped and grouped aggregates, query-less wrapper
nodes) over random database instances and check that
:class:`~repro.schema_tree.bulk_evaluator.BulkViewEvaluator` produces
canonically identical XML to the Section 2.1 nested-loop semantics —
falling back per node where it must, never silently diverging.
"""

from __future__ import annotations

import random as stdlib_random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compose import compose
from repro.errors import ViewEvaluationError
from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.schema_tree.builder import ViewBuilder
from repro.schema_tree.bulk_evaluator import BulkViewEvaluator, materialize_bulk
from repro.schema_tree.evaluator import ViewEvaluator, materialize
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.workloads.synthetic import (
    chain_catalog,
    chain_stylesheet,
    chain_view,
    populate_chain,
)
from repro.xmlcore import canonical_form

MAX_DEPTH = 3

KINDS_INNER = ("plain", "proj", "distinct", "literal")
KINDS_LEAF = KINDS_INNER + ("agg", "gagg")


def make_catalog() -> Catalog:
    return Catalog(
        [
            table(
                f"t{level}",
                ("id", "INTEGER"),
                ("parent_id", "INTEGER"),
                ("a", "INTEGER"),
                ("b", "INTEGER"),
                ("label", "TEXT"),
                primary_key="id",
            )
            for level in range(MAX_DEPTH + 1)
        ]
    )


CATALOG = make_catalog()


def _query_for(kind: str, depth: int, context) -> str | None:
    """The tag query for one node; ``context`` is ``(bv, join_column)`` of
    the nearest query-bearing ancestor, or ``None`` at the top."""
    if kind == "literal":
        return None
    if context is None:
        where = "parent_id = 0"
    else:
        bv, join_column = context
        where = f"parent_id = ${bv}.{join_column}"
    t = f"t{depth}"
    if kind == "plain":
        return f"SELECT * FROM {t} WHERE {where} ORDER BY id"
    if kind == "proj":
        # Non-key projection: duplicate sibling rows, and children keyed
        # on parent_id share bindings across siblings.
        return f"SELECT parent_id, a, label FROM {t} WHERE {where}"
    if kind == "distinct":
        return f"SELECT DISTINCT parent_id, label FROM {t} WHERE {where}"
    if kind == "agg":
        return (
            f"SELECT COUNT(id) AS cnt, SUM(b) AS total FROM {t} WHERE {where}"
        )
    if kind == "gagg":
        return (
            f"SELECT label, COUNT(id) AS cnt FROM {t} WHERE {where} "
            "GROUP BY label ORDER BY label"
        )
    raise AssertionError(kind)


_JOIN_COLUMN = {"plain": "id", "proj": "parent_id", "distinct": "parent_id"}


@st.composite
def scenarios(draw):
    """A random view shape with per-node query kinds, plus a data seed."""
    nodes = [(None, 0)]  # (parent_index, depth)
    count = draw(st.integers(1, 4))
    for _ in range(count):
        parent_index = draw(st.integers(0, len(nodes) - 1))
        while nodes[parent_index][1] >= MAX_DEPTH:
            parent_index -= 1
        nodes.append((parent_index, nodes[parent_index][1] + 1))
    has_children = {p for p, _ in nodes if p is not None}
    kinds = [
        draw(st.sampled_from(KINDS_INNER if i in has_children else KINDS_LEAF))
        for i in range(len(nodes))
    ]
    seed = draw(st.integers(0, 10_000))
    return nodes, kinds, seed


def build_view(nodes, kinds):
    builder = ViewBuilder(CATALOG)
    handles = []
    contexts = []  # context each node passes to its children
    for index, (parent_index, depth) in enumerate(nodes):
        kind = kinds[index]
        if parent_index is None:
            parent_handle, parent_context = None, None
        else:
            parent_handle = handles[parent_index]
            parent_context = contexts[parent_index]
        query = _query_for(kind, depth, parent_context)
        bv = f"v{index}" if query is not None else None
        if parent_handle is None:
            handle = builder.node(f"n{index}", query, bv=bv)
        else:
            handle = parent_handle.child(f"n{index}", query, bv=bv)
        handles.append(handle)
        if kind in _JOIN_COLUMN:
            contexts.append((bv, _JOIN_COLUMN[kind]))
        else:
            # Aggregates are leaves; literal wrappers pass the ancestor
            # context through unchanged.
            contexts.append(parent_context)
    return builder.build()


def populate(db: Database, seed: int) -> None:
    rng = stdlib_random.Random(seed)
    next_id = 0
    parents = [0]
    for level in range(MAX_DEPTH + 1):
        rows = []
        ids = []
        for parent in parents:
            for _ in range(rng.randint(0, 3)):
                next_id += 1
                ids.append(next_id)
                rows.append(
                    {
                        "id": next_id,
                        "parent_id": parent,
                        "a": rng.choice([None, 1, 2, 3]),
                        "b": rng.randint(0, 50),
                        "label": rng.choice(["x", "y", "z", None]),
                    }
                )
        db.insert_rows(f"t{level}", rows)
        parents = ids or [0]


def assert_equivalent(view, db):
    baseline = ViewEvaluator(db).materialize(view)
    evaluator = BulkViewEvaluator(db)
    document = evaluator.materialize(view)
    assert canonical_form(document, ordered=False) == canonical_form(
        baseline, ordered=False
    )
    return evaluator


@given(scenarios())
@settings(max_examples=50, deadline=None)
def test_bulk_equals_nested_on_random_views(scenario):
    nodes, kinds, seed = scenario
    view = build_view(nodes, kinds)
    with Database(make_catalog()) as db:
        populate(db, seed)
        assert_equivalent(view, db)


@given(
    levels=st.integers(2, 4),
    fanout=st.integers(1, 3),
    roots=st.integers(1, 3),
    seed=st.integers(0, 1_000),
)
@settings(max_examples=25, deadline=None)
def test_bulk_equals_nested_on_random_chains(levels, fanout, roots, seed):
    catalog = chain_catalog(levels)
    view = chain_view(levels, catalog)
    with Database(catalog) as db:
        populate_chain(db, levels, fanout=fanout, roots=roots, seed=seed)
        evaluator = assert_equivalent(view, db)
        assert not evaluator.fallback_nodes
        assert evaluator.bulk_queries_executed == levels


@given(
    levels=st.integers(2, 4),
    depth=st.integers(1, 4),
    seed=st.integers(0, 1_000),
)
@settings(max_examples=25, deadline=None)
def test_bulk_equals_nested_on_composed_stylesheet_views(levels, depth, seed):
    """Composed views (query-less literal nodes included) stay equivalent."""
    catalog = chain_catalog(levels)
    view = chain_view(levels, catalog)
    composed = compose(view, chain_stylesheet(levels, depth), catalog)
    with Database(catalog) as db:
        populate_chain(db, levels, fanout=2, roots=2, seed=seed)
        assert_equivalent(composed, db)


# ---------------------------------------------------------------------------
# Deterministic cases
# ---------------------------------------------------------------------------


def test_figure1_bulk_query_bound_and_equality():
    """Acceptance: 7 queries for the 7-node Figure 1 view where the
    nested loop runs hundreds, with canonically identical output."""
    db = build_hotel_database(HotelDataSpec().scaled(4))
    view = figure1_view(db.catalog)
    db.stats.reset()
    baseline = ViewEvaluator(db).materialize(view)
    nested_queries = db.stats.queries_executed
    db.stats.reset()
    evaluator = BulkViewEvaluator(db)
    document = evaluator.materialize(view)
    assert not evaluator.fallback_nodes
    assert db.stats.queries_executed == 7
    assert nested_queries > 100
    assert canonical_form(document, ordered=False) == canonical_form(
        baseline, ordered=False
    )
    db.close()


def test_figure1_bulk_preserves_document_order():
    """The Figure 1 queries carry ORDER BY keys, so even the *ordered*
    canonical forms must match."""
    db = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=3))
    view = figure1_view(db.catalog)
    baseline = ViewEvaluator(db).materialize(view)
    document = materialize_bulk(view, db)
    assert canonical_form(document) == canonical_form(baseline)
    db.close()


def test_composed_figure4_bulk_equality(hotel_db):
    view = figure1_view(hotel_db.catalog)
    composed = compose(view, figure4_stylesheet(), hotel_db.catalog)
    baseline = ViewEvaluator(hotel_db).materialize(composed)
    evaluator = BulkViewEvaluator(hotel_db)
    document = evaluator.materialize(composed)
    assert not evaluator.fallback_nodes
    assert canonical_form(document, ordered=False) == canonical_form(
        baseline, ordered=False
    )


def test_strategy_dispatch(hotel_db):
    view = figure1_view(hotel_db.catalog)
    nested = materialize(view, hotel_db, strategy="nested-loop")
    bulk = materialize(view, hotel_db, strategy="bulk")
    assert canonical_form(bulk, ordered=False) == canonical_form(
        nested, ordered=False
    )
    with pytest.raises(ViewEvaluationError):
        materialize(view, hotel_db, strategy="turbo")


def test_unsupported_output_columns_fall_back_and_taint():
    """An unaliased computed column cannot be bulk-merged: the node and
    its descendants run correlated, are recorded, and stay correct."""
    builder = ViewBuilder(CATALOG)
    top = builder.node(
        "n0", "SELECT id, a + b FROM t0 WHERE parent_id = 0", bv="p"
    )
    top.child("n1", "SELECT * FROM t1 WHERE parent_id = $p.id", bv="c")
    view = builder.build(validate=False)
    with Database(make_catalog()) as db:
        populate(db, seed=5)
        evaluator = assert_equivalent(view, db)
        assert len(evaluator.fallback_nodes) == 2
        assert evaluator.bulk_queries_executed == 0
        reasons = " / ".join(r.reason for r in evaluator.fallback_nodes)
        assert "not derivable" in reasons
        assert "ancestor column names" in reasons


def test_duplicate_parent_bindings_divide_evenly():
    """Two identical parent tuples must each get one copy of the child
    multiset, not the doubled join result."""
    builder = ViewBuilder(CATALOG)
    top = builder.node("n0", "SELECT a FROM t0 WHERE parent_id = 0", bv="p")
    top.child("n1", "SELECT label FROM t1 WHERE parent_id = $p.a")
    view = builder.build()
    with Database(make_catalog()) as db:
        db.insert_rows(
            "t0",
            [
                {"id": i, "parent_id": 0, "a": 1, "b": 0, "label": "d"}
                for i in (1, 2)
            ],
        )
        db.insert_rows(
            "t1",
            [
                {"id": 10 + i, "parent_id": 1, "a": None, "b": 0,
                 "label": f"L{i}"}
                for i in range(3)
            ],
        )
        evaluator = assert_equivalent(view, db)
        assert not evaluator.fallback_nodes


def test_grouped_aggregate_under_duplicate_bindings_falls_back():
    """GROUP BY merges duplicate bindings' groups; the runtime merge must
    detect it and re-run correlated rather than emit wrong counts."""
    builder = ViewBuilder(CATALOG)
    top = builder.node("n0", "SELECT a FROM t0 WHERE parent_id = 0", bv="p")
    top.child(
        "n1",
        "SELECT label, COUNT(id) AS cnt FROM t1 "
        "WHERE parent_id = $p.a GROUP BY label",
    )
    view = builder.build()
    with Database(make_catalog()) as db:
        db.insert_rows(
            "t0",
            [
                {"id": i, "parent_id": 0, "a": 1, "b": 0, "label": "d"}
                for i in (1, 2)
            ],
        )
        db.insert_rows(
            "t1",
            [
                {"id": 10 + i, "parent_id": 1, "a": None, "b": 0, "label": "x"}
                for i in range(2)
            ],
        )
        evaluator = assert_equivalent(view, db)
        assert any(
            "duplicate parent bindings" in r.reason
            for r in evaluator.fallback_nodes
        )


def test_empty_group_synthesis_for_ungrouped_aggregates():
    """Parents with no matching child tuples still get the (0, NULL)
    aggregate row the scalar semantics produce."""
    builder = ViewBuilder(CATALOG)
    top = builder.node("n0", "SELECT id FROM t0 WHERE parent_id = 0", bv="p")
    top.child(
        "n1",
        "SELECT COUNT(id) AS cnt, SUM(b) AS total FROM t1 "
        "WHERE parent_id = $p.id",
    )
    view = builder.build()
    with Database(make_catalog()) as db:
        db.insert_rows(
            "t0",
            [
                {"id": i, "parent_id": 0, "a": None, "b": 0, "label": "d"}
                for i in (1, 2)
            ],
        )
        # Only parent 1 has children.
        db.insert_rows(
            "t1",
            [{"id": 11, "parent_id": 1, "a": None, "b": 7, "label": "x"}],
        )
        evaluator = assert_equivalent(view, db)
        assert not evaluator.fallback_nodes
        document = materialize_bulk(view, db)
        empty = document.child_elements()[1].find_children("n1")[0]
        assert empty.get("cnt") == "0"
        assert empty.get("total") is None


def test_bulk_stats_match_nested(hotel_db):
    view = figure1_view(hotel_db.catalog)
    nested = ViewEvaluator(hotel_db)
    nested.materialize(view)
    bulk = BulkViewEvaluator(hotel_db)
    bulk.materialize(view)
    assert bulk.stats.elements_created == nested.stats.elements_created
    assert bulk.stats.attributes_created == nested.stats.attributes_created

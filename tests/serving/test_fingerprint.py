"""Content fingerprints: structural identity in, cache keys out."""

from __future__ import annotations

import copy

from repro.serving.fingerprint import (
    clear_fingerprint_memo,
    fingerprint_catalog,
    fingerprint_stylesheet,
    fingerprint_text,
    fingerprint_view,
    plan_key,
)
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import (
    figure1_view,
    figure4_stylesheet,
    figure17_stylesheet,
)


def test_fingerprint_text_is_injective_over_part_boundaries():
    assert fingerprint_text("ab", "c") != fingerprint_text("a", "bc")
    assert fingerprint_text("a") != fingerprint_text("a", "")
    assert fingerprint_text("x", "y") == fingerprint_text("x", "y")


def test_structurally_equal_views_share_a_fingerprint():
    catalog = hotel_catalog()
    # Two independently built (distinct) objects with identical content.
    first, second = figure1_view(catalog), figure1_view(catalog)
    assert first is not second
    assert fingerprint_view(first) == fingerprint_view(second)


def test_catalog_and_stylesheet_fingerprints_discriminate():
    catalog = hotel_catalog()
    assert fingerprint_catalog(catalog) == fingerprint_catalog(catalog)
    fig4, fig17 = figure4_stylesheet(), figure17_stylesheet()
    assert fingerprint_stylesheet(fig4) == fingerprint_stylesheet(
        figure4_stylesheet()
    )
    assert fingerprint_stylesheet(fig4) != fingerprint_stylesheet(fig17)
    assert fingerprint_stylesheet(None) != fingerprint_stylesheet(fig4)


def test_editing_one_template_changes_the_plan_key():
    """The headline invalidation story: edit one stylesheet template and
    the content key changes, so the next request is a correct miss."""
    catalog = hotel_catalog()
    catalog_fp = fingerprint_catalog(catalog)
    view = figure1_view(catalog)
    original = figure4_stylesheet()
    edited = copy.deepcopy(original)
    edited.rules[0].priority = 42.0
    assert plan_key(catalog_fp, view, original) != plan_key(
        catalog_fp, view, edited
    )


def test_plan_key_folds_in_options():
    catalog = hotel_catalog()
    catalog_fp = fingerprint_catalog(catalog)
    view = figure1_view(catalog)
    stylesheet = figure4_stylesheet()
    base = plan_key(catalog_fp, view, stylesheet)
    assert base == plan_key(catalog_fp, view, stylesheet)
    assert base != plan_key(catalog_fp, view, stylesheet, prune=False)
    assert base != plan_key(catalog_fp, view, stylesheet, paper_mode=True)
    # Without a stylesheet there is nothing to prune: the flag is ignored.
    assert plan_key(catalog_fp, view, None, prune=True) == plan_key(
        catalog_fp, view, None, prune=False
    )


def test_memo_caches_per_object_and_clears():
    clear_fingerprint_memo()
    view = figure1_view(hotel_catalog())
    stylesheet = figure4_stylesheet()
    assert fingerprint_view(view) == fingerprint_view(view)
    fingerprint_stylesheet(stylesheet)
    assert clear_fingerprint_memo() == 2
    assert clear_fingerprint_memo() == 0

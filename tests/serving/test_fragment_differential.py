"""Differential property of fragment-cache serving (hypothesis).

The byte cache's one correctness claim, as a property over random write
sequences: whatever mix of base-table writes lands between requests, a
fragment-mode server's response bytes equal an uncached serial
materialization of the live database — for every execution strategy and
every pinning policy. Fragment serving composes three mechanisms (row /
block / node delta splicing, span recording, splice-at-serialize), each
with its own fallback; the property holds no matter which path a
request actually takes, which is exactly what makes the fallbacks safe
to take silently.

The server chains state across examples on purpose: cached results,
recorded spans, and survival statistics from one example are the input
of the next, so the sequence explores cold caches, warm caches, and
mid-flight policy re-selection alike.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maintenance import (
    WriteTracker,
    hotel_calendar_write,
    hotel_conference_write,
    hotel_payload_write,
    hotel_write,
)
from repro.schema_tree.evaluator import STRATEGIES, materialize
from repro.serving import ViewServer
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view
from repro.xmlcore.serializer import serialize

#: Two metros, several served hotels: big enough that block splices and
#: span survival actually occur, small enough to keep examples cheap.
SPEC = HotelDataSpec(metros=2, hotels_per_metro=3, guestrooms_per_hotel=3)

#: write kind -> how to apply one step of it.
WRITES = {
    "mix": lambda db, step, tracker: hotel_write(db, step, tracker),
    "conference": lambda db, step, tracker: hotel_conference_write(
        db, step, tracker, hotels=1
    ),
    "calendar": lambda db, step, tracker: hotel_calendar_write(
        db, step, tracker, hotels=1
    ),
    "payload": lambda db, step, tracker: hotel_payload_write(
        db, step, tracker, rows=1
    ),
}

_ENV: dict = {}


def _env():
    """One shared database and one fragment server per pinning policy."""
    if not _ENV:
        db = build_hotel_database(SPEC, cross_thread=True)
        tracker = WriteTracker()
        db.attach_tracker(tracker)
        servers = {
            policy: ViewServer(
                db.catalog,
                source=db,
                workers=1,
                tracker=tracker,
                staleness="strict",
                maintenance="fragment",
                fragment_policy=policy,
            )
            for policy in ("all", "auto", "none")
        }
        _ENV.update(
            db=db,
            tracker=tracker,
            servers=servers,
            view=figure1_view(db.catalog),
            step=0,
        )
    return _ENV


def writes():
    return st.lists(
        st.sampled_from(sorted(WRITES)), min_size=1, max_size=4
    )


@given(write_kinds=writes(), policy=st.sampled_from(("all", "auto", "none")))
@settings(max_examples=60, deadline=None)
def test_fragment_bytes_equal_full_serialize(write_kinds, policy):
    env = _env()
    db, tracker, view = env["db"], env["tracker"], env["view"]
    for kind in write_kinds:
        WRITES[kind](db, env["step"], tracker)
        env["step"] += 1
    server = env["servers"][policy]
    reference = serialize(materialize(view, db))
    for strategy in STRATEGIES:
        trace = server.render(view, strategy=strategy)
        assert trace.xml == reference, (policy, strategy, write_kinds)


def test_close_shared_servers():
    """Not a property: releases the module-level pool at the end."""
    env = _env()
    for server in env["servers"].values():
        server.close()
    env["db"].close()
    _ENV.clear()

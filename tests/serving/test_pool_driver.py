"""ConnectionPool behavior through the driver interface, per backend.

Pins the pool's three driver-mediated duties on every registered
backend (skipping those not installed):

* **release sanitization** — a session released mid-transaction (the
  state an interrupted statement leaves behind) is rolled back via
  ``driver.sanitize`` before the next borrower sees it, and a session
  whose connection is beyond repair is replaced, not re-queued;
* **refresh re-snapshot** — ``refresh()`` brings the clone forward
  through ``EngineSnapshot.refresh``, so post-snapshot source writes
  become visible (the stale-read regression the bypass_cache fix
  closed: a bypassed read must see refreshed data, not the original
  snapshot);
* **file-mode read-only open** — file pools open through
  ``driver.open_read_only`` and refuse writes.
"""

from __future__ import annotations

import pytest

from repro.errors import DriverUnavailableError, ViewEvaluationError
from repro.relational.driver import BACKEND_NAMES, resolve_driver
from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.serving.pool import ConnectionPool


@pytest.fixture(params=list(BACKEND_NAMES))
def driver(request):
    try:
        return resolve_driver(request.param)
    except DriverUnavailableError as exc:
        pytest.skip(str(exc))


def _catalog() -> Catalog:
    return Catalog([
        table("t", ("id", "INTEGER"), ("v", "TEXT"), primary_key="id"),
    ])


def _source(driver, rows: int = 3) -> Database:
    db = Database(_catalog(), driver=driver)
    db.insert_rows("t", [{"id": n, "v": f"v{n}"} for n in range(rows)])
    return db


def test_pool_adopts_source_driver(driver):
    with _source(driver) as source:
        with ConnectionPool(source.catalog, source=source, size=2) as pool:
            assert pool.driver is source.driver
            with pool.session() as session:
                assert session.driver is source.driver
                assert session.table_count("t") == 3


def test_release_sanitizes_open_transaction(driver):
    with _source(driver) as source:
        with ConnectionPool(source.catalog, source=source, size=1) as pool:
            session = pool.acquire()
            # The state an interrupted statement leaves behind: an open
            # (read) transaction on the raw connection.
            session.connection.execute("BEGIN")
            session.connection.execute("SELECT * FROM t").fetchall()
            pool.release(session)
            # The next borrower gets a clean, working session.
            with pool.session() as again:
                assert again.table_count("t") == 3
            assert pool.outstanding() == 0


def test_release_replaces_broken_session(driver):
    with _source(driver) as source:
        with ConnectionPool(source.catalog, source=source, size=1) as pool:
            session = pool.acquire()
            session.connection.close()  # poison it behind the pool's back
            pool.release(session)
            # The pool replaced the session rather than re-queueing the
            # corpse: still one session, and it works.
            with pool.session() as again:
                assert again is not session
                assert again.table_count("t") == 3
            assert pool.outstanding() == 0


def test_refresh_resnapshots_source_writes(driver):
    """Post-snapshot writes are invisible until refresh, visible after —
    the invariant the bypass_cache stale-read fix depends on."""
    with _source(driver) as source:
        with ConnectionPool(source.catalog, source=source, size=2) as pool:
            with pool.session() as session:
                assert session.table_count("t") == 3
            source.insert_rows("t", [{"id": 100, "v": "late"}])
            with pool.session() as session:
                assert session.table_count("t") == 3  # snapshot semantics
            assert pool.refresh() is True
            for _ in range(2):  # every pooled session sees the refresh
                with pool.session() as session:
                    assert session.table_count("t") == 4


def test_refresh_after_release_sanitization(driver):
    """A sanitized (rolled-back) session does not pin the old snapshot:
    refresh still lands and the same session object serves fresh data."""
    with _source(driver) as source:
        with ConnectionPool(source.catalog, source=source, size=1) as pool:
            session = pool.acquire()
            session.connection.execute("BEGIN")
            session.connection.execute("SELECT * FROM t").fetchall()
            pool.release(session)
            source.insert_rows("t", [{"id": 100, "v": "late"}])
            assert pool.refresh() is True
            with pool.session() as again:
                assert again.table_count("t") == 4


def test_file_mode_pool_is_read_only(driver, tmp_path):
    path = str(tmp_path / "pool-db")
    db = Database(_catalog(), path=str(path), driver=driver)
    db.insert_rows("t", [{"id": 1, "v": "a"}])
    db.close()
    with ConnectionPool(_catalog(), path=path, size=2, driver=driver) as pool:
        assert pool.refresh() is False  # file pools have no snapshot
        with pool.session() as session:
            assert session.table_count("t") == 1
            with pytest.raises(
                (ViewEvaluationError,) + tuple(pool.driver.errors)
            ):
                session.run_sql("DELETE FROM t")

"""Per-node read sets: the dirty-selection input of delta maintenance.

:func:`repro.serving.fingerprint.node_read_sets` is what incremental
maintenance intersects with the write tracker's version vector to decide
which schema nodes a write dirtied. A table missing from a node's entry
is a subtree that silently never refreshes — so these tests pin the map
against :func:`repro.sql.analysis.referenced_tables` node by node,
exercise the subquery hiding places (derived tables, EXISTS) through a
hand-built view, and tie the per-node map back to the whole-view union
(:func:`~repro.serving.fingerprint.view_read_set`) that coarse
invalidation uses.
"""

from __future__ import annotations

from repro.core.compose import compose
from repro.core.optimize import prune_stylesheet_view
from repro.schema_tree.builder import ViewBuilder
from repro.serving.fingerprint import node_read_sets, view_read_set
from repro.serving.plan_cache import CompiledPlan
from repro.sql.analysis import referenced_tables
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view, figure4_stylesheet


def paper_targets():
    """The raw Figure 1 view and its Figure 4 composition."""
    catalog = hotel_catalog()
    raw = figure1_view(catalog)
    composed = compose(raw, figure4_stylesheet(), catalog)
    prune_stylesheet_view(composed, catalog)
    return raw, composed


# ---------------------------------------------------------------------------
# The map matches the extractor, node by node
# ---------------------------------------------------------------------------


def test_every_query_bearing_node_has_its_exact_read_set():
    for target in paper_targets():
        reads = node_read_sets(target)
        for node in target.nodes(include_root=False):
            if node.tag_query is None:
                assert node.id not in reads
            else:
                assert reads[node.id] == tuple(
                    sorted(referenced_tables(node.tag_query))
                )


def test_figure1_leaf_reads_are_narrower_than_the_view():
    """The premise of delta maintenance: the availability-reading leaves
    are a strict subset of the schema tree, so an availability write
    dirties some nodes but not all."""
    raw, _composed = paper_targets()
    reads = node_read_sets(raw)
    touching = [i for i, t in reads.items() if "availability" in t]
    assert touching  # some node reads it ...
    assert len(touching) < len(reads)  # ... but not every node


# ---------------------------------------------------------------------------
# Subquery hiding places, through a hand-built view
# ---------------------------------------------------------------------------


def test_derived_table_and_exists_subqueries_reach_the_node_entry():
    builder = ViewBuilder(hotel_catalog())
    metro = builder.node(
        "metro",
        "SELECT T.mid AS mid FROM (SELECT areaid AS mid FROM metroarea) AS T",
        bv="m",
    )
    metro.child(
        "busy",
        "SELECT hotelid FROM hotel WHERE EXISTS "
        "(SELECT * FROM availability WHERE status = 'open')",
        bv="h",
    )
    metro.child("label")  # literal: no query, no entry
    view = builder.build(validate=False)
    reads = node_read_sets(view)

    by_tag = {n.tag: n for n in view.nodes(include_root=False)}
    assert reads[by_tag["metro"].id] == ("metroarea",)
    assert reads[by_tag["busy"].id] == ("availability", "hotel")
    assert by_tag["label"].id not in reads
    assert view_read_set(view) == ("availability", "hotel", "metroarea")


# ---------------------------------------------------------------------------
# Union and plumbing
# ---------------------------------------------------------------------------


def test_union_of_node_entries_is_the_view_read_set():
    for target in paper_targets():
        reads = node_read_sets(target)
        union = set()
        for tables in reads.values():
            union.update(tables)
        assert tuple(sorted(union)) == view_read_set(target)


def test_compiled_plan_defaults_to_an_empty_map():
    """CompiledPlan's field default keeps old call sites valid; the
    server always fills it (an empty map would just mean "nothing ever
    dirty", i.e. permanent full fallback - safe, never wrong)."""
    plan = CompiledPlan(key="k", view=None, tables=("hotel",))
    assert plan.node_read_sets == {}

"""Concurrency equivalence: the served path is byte-identical to serial.

The contract under test is the serving layer's only correctness claim:
for any (view, stylesheet, strategy), a :class:`ViewServer` handling 8
concurrent requests — identical or mixed — returns exactly the XML a
serial :func:`~repro.schema_tree.evaluator.materialize` of the same
composed-and-pruned view produces. The property tests draw random
synthetic views (reusing the generator from the bulk-evaluator suite),
random chain stylesheets, and random mixed workloads over the hotel and
orders databases; together they run well over 200 hypothesis examples.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compose import compose
from repro.core.optimize import prune_stylesheet_view
from repro.relational.engine import Database
from repro.schema_tree.evaluator import STRATEGIES, materialize
from repro.serving import PublishRequest, ViewServer
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.orders import (
    OrdersDataSpec,
    build_orders_database,
    invoice_stylesheet,
    orders_view,
    summary_stylesheet,
)
from repro.workloads.paper import (
    figure1_view,
    figure4_stylesheet,
    figure17_stylesheet,
)
from repro.workloads.synthetic import (
    chain_catalog,
    chain_stylesheet,
    chain_view,
    populate_chain,
)
from repro.xmlcore.serializer import serialize
from tests.schema_tree.test_bulk_evaluator import (
    build_view,
    make_catalog,
    populate,
    scenarios,
)

N_CONCURRENT = 8


def serial_xml(db, view, stylesheet, strategy, prune=True):
    """The serial reference: compose + prune + materialize + serialize."""
    if stylesheet is None:
        target = view
    else:
        target = compose(view, stylesheet, db.catalog)
        if prune:
            prune_stylesheet_view(target, db.catalog)
    return serialize(materialize(target, db, strategy=strategy))


# ---------------------------------------------------------------------------
# Random synthetic views (no stylesheet): every strategy, 8 identical
# concurrent requests.
# ---------------------------------------------------------------------------


@given(scenarios(), st.sampled_from(STRATEGIES))
@settings(max_examples=100, deadline=None)
def test_random_views_concurrent_equals_serial(scenario, strategy):
    nodes, kinds, seed = scenario
    view = build_view(nodes, kinds)
    with Database(make_catalog()) as db:
        populate(db, seed)
        expected = serial_xml(db, view, None, strategy)
        with ViewServer(
            db.catalog, source=db, workers=N_CONCURRENT
        ) as server:
            traces = server.render_many(
                PublishRequest(view, strategy=strategy)
                for _ in range(N_CONCURRENT)
            )
        for trace in traces:
            assert trace.error is None
            assert trace.xml == expected


# ---------------------------------------------------------------------------
# Random chain stylesheets: the full compose + prune pipeline runs inside
# the server; concurrent identical requests share one compiled plan.
# ---------------------------------------------------------------------------


@given(
    levels=st.integers(2, 4),
    depth=st.integers(1, 3),
    seed=st.integers(0, 1_000),
    strategy=st.sampled_from(STRATEGIES),
)
@settings(max_examples=50, deadline=None)
def test_composed_chains_concurrent_equals_serial(levels, depth, seed, strategy):
    catalog = chain_catalog(levels)
    view = chain_view(levels, catalog)
    stylesheet = chain_stylesheet(levels, depth)
    with Database(catalog) as db:
        populate_chain(db, levels, fanout=2, roots=2, seed=seed)
        expected = serial_xml(db, view, stylesheet, strategy)
        with ViewServer(catalog, source=db, workers=N_CONCURRENT) as server:
            traces = server.render_many(
                PublishRequest(view, stylesheet, strategy=strategy)
                for _ in range(N_CONCURRENT)
            )
            cache = server.plan_cache.stats()
        for trace in traces:
            assert trace.error is None
            assert trace.xml == expected
        # Single-flight compilation: 8 concurrent requests for one
        # content key cost exactly one compile.
        assert cache["misses"] == 1
        assert cache["hits"] == N_CONCURRENT - 1


# ---------------------------------------------------------------------------
# Mixed workloads over long-lived servers: each example throws 8 random
# (stylesheet, strategy) requests at a shared server and checks every
# response against its serial reference.
# ---------------------------------------------------------------------------


def _mixed_env(db, view, stylesheets):
    """A shared server plus the serial reference XML for every combo."""
    server = ViewServer(db.catalog, source=db, workers=N_CONCURRENT)
    expected = {
        (name, strategy): serial_xml(db, view, stylesheet, strategy)
        for name, stylesheet in stylesheets.items()
        for strategy in STRATEGIES
    }
    return server, expected


@pytest.fixture(scope="module")
def hotel_env():
    db = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=3))
    view = figure1_view(db.catalog)
    stylesheets = {
        "none": None,
        "figure4": figure4_stylesheet(),
        "figure17": figure17_stylesheet(),
    }
    server, expected = _mixed_env(db, view, stylesheets)
    yield view, stylesheets, server, expected
    server.close()
    db.close()


@pytest.fixture(scope="module")
def orders_env():
    db = build_orders_database(OrdersDataSpec(customers=6))
    view = orders_view(db.catalog)
    stylesheets = {
        "none": None,
        "invoice": invoice_stylesheet(),
        "summary": summary_stylesheet(),
    }
    server, expected = _mixed_env(db, view, stylesheets)
    yield view, stylesheets, server, expected
    server.close()
    db.close()


def _combos(stylesheet_names):
    return st.lists(
        st.tuples(
            st.sampled_from(stylesheet_names), st.sampled_from(STRATEGIES)
        ),
        min_size=N_CONCURRENT,
        max_size=N_CONCURRENT,
    )


def _check_mixed_batch(env, batch):
    view, stylesheets, server, expected = env
    traces = server.render_many(
        PublishRequest(view, stylesheets[name], strategy=strategy)
        for name, strategy in batch
    )
    for (name, strategy), trace in zip(batch, traces):
        assert trace.error is None, trace.error
        assert trace.strategy == strategy
        assert trace.xml == expected[(name, strategy)]


@given(batch=_combos(["none", "figure4", "figure17"]))
@settings(max_examples=40, deadline=None)
def test_hotel_mixed_workload_concurrent_equals_serial(hotel_env, batch):
    _check_mixed_batch(hotel_env, batch)


@given(batch=_combos(["none", "invoice", "summary"]))
@settings(max_examples=30, deadline=None)
def test_orders_mixed_workload_concurrent_equals_serial(orders_env, batch):
    _check_mixed_batch(orders_env, batch)


# ---------------------------------------------------------------------------
# Deterministic anchors (fast, no hypothesis): the acceptance demo.
# ---------------------------------------------------------------------------


def test_all_strategies_agree_under_concurrency_on_figure4():
    db = build_hotel_database(HotelDataSpec(metros=3, hotels_per_metro=4))
    view = figure1_view(db.catalog)
    stylesheet = figure4_stylesheet()
    references = {
        strategy: serial_xml(db, view, stylesheet, strategy)
        for strategy in STRATEGIES
    }
    # All three strategies agree serially...
    assert len(set(references.values())) == 1
    # ...and the server reproduces each under 8-way concurrency.
    with ViewServer(db.catalog, source=db, workers=N_CONCURRENT) as server:
        traces = server.render_many(
            PublishRequest(view, stylesheet, strategy=strategy)
            for strategy in STRATEGIES
            for _ in range(N_CONCURRENT)
        )
    for trace in traces:
        assert trace.error is None
        assert trace.xml == references[trace.strategy]
    db.close()

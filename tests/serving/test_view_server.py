"""ViewServer request path: traces, metrics, cache behavior, errors."""

from __future__ import annotations

import copy
import sqlite3

import pytest

from repro.errors import ReproError
from repro.schema_tree.builder import ViewBuilder
from repro.serving import PublishRequest, RequestTrace, ViewServer, percentile
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_catalog,
)
from repro.workloads.paper import figure1_view, figure4_stylesheet


@pytest.fixture()
def served_hotel():
    db = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=3))
    server = ViewServer(db.catalog, source=db, workers=2)
    yield db, server
    server.close()
    db.close()


def test_render_trace_records_work_and_cache_state(served_hotel):
    db, server = served_hotel
    view = figure1_view(db.catalog)
    first = server.render(view, figure4_stylesheet(), label="warmup")
    assert first.error is None
    assert not first.cache_hit
    assert first.label == "warmup"
    assert first.xml.startswith("<")
    assert first.queries_executed > 0
    assert first.rows_fetched > 0
    assert first.elements_created > 0
    assert first.plan_seconds > 0
    assert first.total_seconds >= first.execute_seconds
    assert first.worker.startswith("viewserver")

    second = server.render(view, figure4_stylesheet())
    assert second.cache_hit
    assert second.xml == first.xml
    assert server.plan_cache.stats()["misses"] == 1
    assert server.plan_cache.stats()["hits"] == 1


def test_trace_to_dict_omits_xml_unless_asked():
    trace = RequestTrace(
        request_id=1, label="", strategy="bulk", cache_hit=True,
        plan_key="f" * 64, xml="<a/>",
    )
    record = trace.to_dict()
    assert "xml" not in record
    assert record["plan_key"] == "f" * 16
    assert trace.to_dict(include_xml=True)["xml"] == "<a/>"


def test_metrics_aggregate_requests_and_engine_work(served_hotel):
    db, server = served_hotel
    view = figure1_view(db.catalog)
    for _ in range(3):
        server.render(view, strategy="bulk")
    metrics = server.metrics()
    assert metrics["requests_served"] == 3
    assert metrics["errors"] == 0
    assert metrics["workers"] == 2
    assert metrics["cache"]["misses"] == 1
    assert metrics["cache"]["hits"] == 2
    assert metrics["queries_executed"] > 0
    assert metrics["rows_fetched"] > 0


def test_explicit_invalidation_forces_a_recompile(served_hotel):
    db, server = served_hotel
    view = figure1_view(db.catalog)
    request = PublishRequest(view, figure4_stylesheet())
    assert not server.submit(request).result().cache_hit
    assert server.invalidate(request)
    assert not server.invalidate(request)  # already dropped
    assert not server.submit(request).result().cache_hit
    assert server.plan_cache.stats()["misses"] == 2


def test_edited_stylesheet_is_an_automatic_miss(served_hotel):
    """Editing one template changes the content key: no explicit
    invalidation needed, the next request simply misses."""
    db, server = served_hotel
    view = figure1_view(db.catalog)
    original = figure4_stylesheet()
    server.render(view, original)
    assert server.render(view, original).cache_hit
    edited = copy.deepcopy(original)
    edited.rules[0].priority = 42.0
    trace = server.render(view, edited)
    assert not trace.cache_hit
    assert server.plan_cache.stats()["misses"] == 2
    assert len(server.plan_cache) == 2  # both plans stay resident


def test_unknown_strategy_is_rejected_at_submit(served_hotel):
    db, server = served_hotel
    with pytest.raises(ReproError, match="unknown strategy"):
        server.submit(
            PublishRequest(figure1_view(db.catalog), strategy="turbo")
        )


def test_failing_request_yields_an_error_trace(served_hotel):
    db, server = served_hotel
    builder = ViewBuilder(db.catalog)
    builder.node("bad", "SELECT * FROM no_such_table", bv="x")
    broken = builder.build(validate=False)
    trace = server.render(broken)
    assert trace.error is not None
    assert "no_such_table" in trace.error
    assert trace.xml is None
    metrics = server.metrics()
    assert metrics["errors"] == 1
    assert metrics["requests_served"] == 1


def test_render_many_preserves_request_order(served_hotel):
    db, server = served_hotel
    view = figure1_view(db.catalog)
    requests = [
        PublishRequest(view, strategy="nested-loop", label=f"r{i}")
        for i in range(6)
    ]
    traces = server.render_many(requests)
    assert [trace.label for trace in traces] == [f"r{i}" for i in range(6)]
    assert len({trace.request_id for trace in traces}) == 6


def test_keep_xml_false_drops_bodies_but_keeps_timings():
    db = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=2))
    with ViewServer(db.catalog, source=db, workers=1, keep_xml=False) as server:
        trace = server.render(figure1_view(db.catalog))
        assert trace.xml is None
        assert trace.serialize_seconds > 0
    db.close()


def test_server_over_database_file(tmp_path):
    db = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=2))
    path = str(tmp_path / "hotel.db")
    dest = sqlite3.connect(path)
    db.connection.backup(dest)
    dest.close()
    with ViewServer(hotel_catalog(), path=path, workers=2) as server:
        trace = server.render(figure1_view(server.catalog))
        assert trace.error is None
        assert trace.xml.startswith("<")
    db.close()


def test_closed_server_rejects_new_requests():
    db = build_hotel_database(HotelDataSpec(metros=1, hotels_per_metro=1))
    server = ViewServer(db.catalog, source=db, workers=1)
    server.close()
    server.close()  # idempotent
    with pytest.raises(RuntimeError):
        server.submit(PublishRequest(figure1_view(db.catalog)))
    db.close()


def test_worker_count_validation():
    with pytest.raises(ValueError):
        ViewServer(hotel_catalog(), path="unused.db", workers=0)


def test_percentile_interpolation():
    assert percentile([], 95) == 0.0
    assert percentile([7.0], 50) == 7.0
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == 2.5

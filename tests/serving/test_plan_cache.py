"""Deterministic PlanCache behavior: LRU order, exact counters,
single-flight compilation, and the 16-thread hammer."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ReproError
from repro.serving.plan_cache import CompiledPlan, PlanCache


def plan(key: str) -> CompiledPlan:
    return CompiledPlan(key=key, view=None)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PlanCache(0)


def test_get_put_and_exact_counters():
    cache = PlanCache(capacity=4)
    assert cache.get("a") is None  # miss
    cache.put("a", plan("a"))
    assert cache.get("a").key == "a"  # hit
    assert cache.get("a").key == "a"  # hit
    assert cache.get("b") is None  # miss
    assert cache.stats() == {
        "hits": 2,
        "misses": 2,
        "evictions": 0,
        "invalidations": 0,
        "size": 1,
        "capacity": 4,
    }


def test_lru_eviction_order():
    cache = PlanCache(capacity=2)
    cache.put("a", plan("a"))
    cache.put("b", plan("b"))
    # Touch "a" so "b" becomes least recently used.
    assert cache.get("a") is not None
    cache.put("c", plan("c"))
    assert cache.keys() == ["a", "c"]
    assert "b" not in cache
    assert cache.evictions == 1
    # Inserting past capacity again evicts the new LRU entry ("a").
    cache.put("d", plan("d"))
    assert cache.keys() == ["c", "d"]
    assert cache.evictions == 2


def test_put_refreshes_recency():
    cache = PlanCache(capacity=2)
    cache.put("a", plan("a"))
    cache.put("b", plan("b"))
    cache.put("a", plan("a2"))  # replace: "a" is now most recent
    cache.put("c", plan("c"))
    assert cache.keys() == ["a", "c"]
    assert cache.get("a").key == "a2"


def test_get_or_build_counts_one_miss_then_hits():
    cache = PlanCache()
    builds = []

    def build():
        builds.append(1)
        return plan("k")

    first, hit = cache.get_or_build("k", build)
    assert not hit
    second, hit = cache.get_or_build("k", build)
    assert hit and second is first
    assert len(builds) == 1
    assert (cache.misses, cache.hits) == (1, 1)


def test_failed_build_withdraws_inflight_marker():
    cache = PlanCache()

    def boom():
        raise ReproError("compile failed")

    with pytest.raises(ReproError):
        cache.get_or_build("k", boom)
    assert "k" not in cache
    # The key is retryable: a later build succeeds and counts a new miss.
    rebuilt, hit = cache.get_or_build("k", lambda: plan("k"))
    assert not hit and rebuilt.key == "k"
    assert cache.misses == 2


def test_invalidate_and_clear_counters():
    cache = PlanCache()
    cache.put("a", plan("a"))
    cache.put("b", plan("b"))
    assert cache.invalidate("a")
    assert not cache.invalidate("a")  # already gone
    assert cache.invalidations == 1
    cache.get("b")  # hit
    assert cache.clear() == 1
    assert len(cache) == 0
    # clear() counts invalidations but preserves the hit/miss history.
    assert cache.invalidations == 2
    assert (cache.hits, cache.misses) == (1, 0)


def test_invalidate_tables_drops_intersecting_plans_only():
    cache = PlanCache()
    cache.put("h", CompiledPlan(key="h", view=None, tables=("hotel", "metroarea")))
    cache.put("a", CompiledPlan(key="a", view=None, tables=("availability",)))
    cache.put("c", CompiledPlan(key="c", view=None, tables=("hotelchain",)))
    assert cache.invalidate_tables(["hotel", "availability"]) == 2
    assert cache.keys() == ["c"]
    assert cache.invalidations == 2
    assert cache.invalidate_tables(["hotel"]) == 0  # already gone


def test_invalidate_tables_skips_plans_without_a_read_set():
    cache = PlanCache()
    cache.put("bare", plan("bare"))  # tables=() — unknown read set
    assert cache.invalidate_tables(["hotel"]) == 0
    assert "bare" in cache


def test_stats_and_keys_are_consistent_under_concurrent_mutation():
    """stats()/keys() snapshot under the cache lock: hammer them while
    writers churn the entry table and check each snapshot is coherent."""
    cache = PlanCache(capacity=8)
    stop = threading.Event()
    bad: list[str] = []

    def churn():
        n = 0
        while not stop.is_set():
            key = f"k{n % 16}"
            cache.put(key, CompiledPlan(key=key, view=None, tables=("t",)))
            if n % 7 == 0:
                cache.invalidate_tables(["t"])
            n += 1

    def observe():
        while not stop.is_set():
            stats = cache.stats()
            if not 0 <= stats["size"] <= stats["capacity"]:
                bad.append(f"size out of bounds: {stats}")
            if len(cache.keys()) > cache.capacity:
                bad.append("keys() longer than capacity")

    writers = [threading.Thread(target=churn) for _ in range(2)]
    readers = [threading.Thread(target=observe) for _ in range(2)]
    for thread in writers + readers:
        thread.start()
    time.sleep(0.2)
    stop.set()
    for thread in writers + readers:
        thread.join()
    assert not bad, bad[0]


def test_sixteen_thread_hammer_on_single_entry_cache():
    """16 threads race get_or_build on one key in a capacity-1 cache:
    exactly one build runs (one miss), everyone else waits and hits."""
    cache = PlanCache(capacity=1)
    thread_count = 16
    barrier = threading.Barrier(thread_count)
    builds = []
    results: list[tuple[CompiledPlan, bool]] = []
    results_lock = threading.Lock()

    def build():
        builds.append(1)
        time.sleep(0.05)  # hold the build long enough for everyone to pile up
        return plan("hot")

    def worker():
        barrier.wait()
        got = cache.get_or_build("hot", build)
        with results_lock:
            results.append(got)

    threads = [threading.Thread(target=worker) for _ in range(thread_count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(builds) == 1
    assert len(results) == thread_count
    plans = {id(got_plan) for got_plan, _ in results}
    assert len(plans) == 1  # every thread got the same plan object
    assert sum(1 for _, hit in results if not hit) == 1
    assert cache.misses == 1
    assert cache.hits == thread_count - 1
    assert cache.evictions == 0

"""ConnectionPool: read-only sessions, snapshot semantics, stats."""

from __future__ import annotations

import queue
import sqlite3

import pytest

from repro.errors import ViewEvaluationError
from repro.serving.pool import ConnectionPool
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_catalog,
)


@pytest.fixture()
def small_hotel_db():
    db = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=2))
    yield db
    db.close()


def test_needs_exactly_one_of_path_and_source(small_hotel_db, tmp_path):
    with pytest.raises(ValueError):
        ConnectionPool(hotel_catalog())
    with pytest.raises(ValueError):
        ConnectionPool(
            hotel_catalog(),
            path=str(tmp_path / "x.db"),
            source=small_hotel_db,
        )
    with pytest.raises(ValueError):
        ConnectionPool(hotel_catalog(), source=small_hotel_db, size=0)


def test_clone_pool_sessions_are_read_only(small_hotel_db):
    with ConnectionPool(small_hotel_db.catalog, source=small_hotel_db) as pool:
        with pool.session() as db:
            assert db.read_only
            assert db.table_count("metroarea") == 2
            # The engine-level guard rejects the write before sqlite sees it.
            with pytest.raises(ViewEvaluationError):
                db.insert_rows("metroarea", [])
            # Raw SQL writes die on PRAGMA query_only at the sqlite level.
            with pytest.raises(sqlite3.OperationalError):
                db.run_sql("DELETE FROM metroarea")


def test_clone_pool_has_snapshot_semantics(small_hotel_db):
    with ConnectionPool(small_hotel_db.catalog, source=small_hotel_db) as pool:
        before = small_hotel_db.table_count("metroarea")
        small_hotel_db.run_sql(
            "INSERT INTO metroarea (metroid, metroname) VALUES (999, 'nowhere')"
        )
        with pool.session() as db:
            # Later writes to the source are invisible to the snapshot.
            assert db.table_count("metroarea") == before
        assert small_hotel_db.table_count("metroarea") == before + 1


def test_file_pool_serves_a_database_file(small_hotel_db, tmp_path):
    path = str(tmp_path / "hotel.db")
    dest = sqlite3.connect(path)
    small_hotel_db.connection.backup(dest)
    dest.close()
    with ConnectionPool(
        small_hotel_db.catalog, path=path, size=2
    ) as pool:
        with pool.session() as db:
            assert db.read_only
            assert db.table_count("metroarea") == 2
            with pytest.raises(ViewEvaluationError):
                db.insert_rows("metroarea", [])


def test_acquire_blocks_when_exhausted(small_hotel_db):
    pool = ConnectionPool(small_hotel_db.catalog, source=small_hotel_db, size=1)
    try:
        held = pool.acquire()
        with pytest.raises(queue.Empty):
            pool.acquire(timeout=0.05)
        pool.release(held)
        again = pool.acquire(timeout=0.05)
        assert again is held  # LIFO reuse keeps caches warm
        pool.release(again)
    finally:
        pool.close()


def test_aggregate_and_reset_stats(small_hotel_db):
    with ConnectionPool(
        small_hotel_db.catalog, source=small_hotel_db, size=2
    ) as pool:
        with pool.session() as db:
            db.run_sql("SELECT * FROM metroarea")
            db.stats.record(5)
        aggregate = pool.aggregate_stats()
        assert aggregate.queries_executed == 1
        assert aggregate.rows_fetched == 5
        pool.reset_stats()
        assert pool.aggregate_stats().queries_executed == 0


def test_closed_pool_rejects_acquire(small_hotel_db):
    pool = ConnectionPool(small_hotel_db.catalog, source=small_hotel_db)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(RuntimeError):
        pool.acquire()


# ---------------------------------------------------------------------------
# Release sanitization: no leaks, no poisoned connections
# ---------------------------------------------------------------------------


def test_session_context_never_leaks_on_exception(small_hotel_db):
    with ConnectionPool(
        small_hotel_db.catalog, source=small_hotel_db, size=1
    ) as pool:
        with pytest.raises(RuntimeError):
            with pool.session():
                raise RuntimeError("mid-evaluation failure")
        assert pool.outstanding() == 0
        # The single session is borrowable again immediately.
        with pool.session() as db:
            assert db.table_count("metroarea") == 2
        assert pool.outstanding() == 0


def test_release_rolls_back_open_transaction(small_hotel_db):
    """A borrower abandoned mid-transaction (e.g. after an interrupted
    statement) must not hand the next borrower a connection that is
    still inside that transaction."""
    with ConnectionPool(
        small_hotel_db.catalog, source=small_hotel_db, size=1
    ) as pool:
        session = pool.acquire()
        session.connection.execute("BEGIN")
        session.connection.execute("SELECT COUNT(*) FROM metroarea")
        assert session.connection.in_transaction
        pool.release(session)
        again = pool.acquire()
        assert again is session
        assert not again.connection.in_transaction
        pool.release(again)


def test_release_clears_lingering_cancel_check(small_hotel_db):
    def boom():
        raise AssertionError("stale cancel hook fired")

    with ConnectionPool(
        small_hotel_db.catalog, source=small_hotel_db, size=1
    ) as pool:
        session = pool.acquire()
        session.cancel_check = boom
        pool.release(session)
        with pool.session() as db:
            assert db.cancel_check is None
            from repro.sql.parser import parse_select

            db.run_query(parse_select("SELECT * FROM metroarea"))


def test_release_replaces_a_broken_session(small_hotel_db):
    """A session whose connection died is swapped for a fresh one: the
    pool never shrinks and never re-queues a poisoned connection."""
    with ConnectionPool(
        small_hotel_db.catalog, source=small_hotel_db, size=2
    ) as pool:
        session = pool.acquire()
        session.connection.close()  # simulate a fatally broken connection
        pool.release(session)
        assert pool.outstanding() == 0
        # Both slots still serve queries.
        first = pool.acquire()
        second = pool.acquire()
        for db in (first, second):
            assert db.table_count("metroarea") == 2
        assert session not in (first, second)
        pool.release(first)
        pool.release(second)
        # aggregate_stats still sees exactly ``size`` sessions.
        assert len(pool._sessions) == 2


def test_release_into_closed_pool_closes_the_session(small_hotel_db):
    pool = ConnectionPool(
        small_hotel_db.catalog, source=small_hotel_db, size=2
    )
    held = pool.acquire()
    pool.close()
    pool.release(held)  # must not raise, must not queue
    with pytest.raises(sqlite3.ProgrammingError):
        held.connection.execute("SELECT 1")


def test_admission_gate_refuses_acquire_without_consuming_a_session(
    small_hotel_db,
):
    """The fleet's crash windows ride this hook: while the gate raises,
    ``acquire`` fails fast and no idle session is consumed, so the pool
    serves at full strength the moment the window closes."""
    from repro.errors import ReplicaUnavailable

    refusing = [True]

    def gate():
        if refusing[0]:
            raise ReplicaUnavailable("shard0:replica-1")

    with ConnectionPool(
        small_hotel_db.catalog, source=small_hotel_db, size=1,
        admission=gate,
    ) as pool:
        with pytest.raises(ReplicaUnavailable):
            pool.acquire()
        assert pool.outstanding() == 0
        refusing[0] = False
        session = pool.acquire()
        assert session.table_count("metroarea") == 2
        pool.release(session)

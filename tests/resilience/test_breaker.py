"""CircuitBreaker: the closed → open → half-open state machine."""

from __future__ import annotations

import pytest

from repro.resilience import BREAKER_STATES, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown_ms=100.0, clock=clock)


def test_validates_construction():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=1, cooldown_ms=0)


def test_untracked_keys_are_closed_and_allowed(breaker):
    assert breaker.state("unseen") == "closed"
    assert breaker.allow("unseen")
    assert breaker.retry_after_ms("unseen") == 0.0


def test_opens_after_threshold_consecutive_failures(breaker):
    breaker.record_failure("k")
    breaker.record_failure("k")
    assert breaker.state("k") == "closed"
    assert breaker.allow("k")
    breaker.record_failure("k")
    assert breaker.state("k") == "open"
    assert not breaker.allow("k")
    assert breaker.stats()["opened"] == 1
    assert breaker.stats()["short_circuits"] == 1


def test_success_resets_the_failure_count(breaker):
    breaker.record_failure("k")
    breaker.record_failure("k")
    breaker.record_success("k")
    breaker.record_failure("k")
    breaker.record_failure("k")
    assert breaker.state("k") == "closed"  # never hit 3 consecutively


def test_cooldown_half_opens_then_success_closes(breaker, clock):
    for _ in range(3):
        breaker.record_failure("k")
    assert not breaker.allow("k")
    assert breaker.retry_after_ms("k") == pytest.approx(100.0)
    clock.advance(0.05)
    assert not breaker.allow("k")
    assert breaker.retry_after_ms("k") == pytest.approx(50.0)
    clock.advance(0.06)
    assert breaker.allow("k")  # cooldown elapsed: half-open trial
    assert breaker.state("k") == "half-open"
    breaker.record_success("k")
    assert breaker.state("k") == "closed"
    stats = breaker.stats()
    assert stats["half_opened"] == 1
    assert stats["closed"] == 1


def test_half_open_failure_reopens_and_restarts_cooldown(breaker, clock):
    for _ in range(3):
        breaker.record_failure("k")
    clock.advance(0.2)
    assert breaker.allow("k")
    breaker.record_failure("k")  # first trial failure re-opens immediately
    assert breaker.state("k") == "open"
    assert not breaker.allow("k")
    assert breaker.retry_after_ms("k") == pytest.approx(100.0)
    assert breaker.stats()["opened"] == 2


def test_keys_are_independent(breaker):
    for _ in range(3):
        breaker.record_failure("bad")
    assert breaker.state("bad") == "open"
    assert breaker.allow("good")
    assert breaker.state("good") == "closed"


def test_stats_histogram_covers_all_states(breaker, clock):
    breaker.record_failure("a")
    for _ in range(3):
        breaker.record_failure("b")
    for _ in range(3):
        breaker.record_failure("c")
    clock.advance(0.2)
    assert breaker.allow("c")  # half-opens c
    histogram = breaker.stats()["states"]
    assert set(histogram) == set(BREAKER_STATES)
    assert histogram == {"closed": 1, "open": 1, "half-open": 1}


def test_half_open_trial_budget_boundary(clock):
    # A budget of 3 concurrent probes: exactly 3 allow() calls pass
    # after the cooldown, the 4th short-circuits until one resolves.
    breaker = CircuitBreaker(
        threshold=2, cooldown_ms=100.0, half_open_max=3, clock=clock
    )
    breaker.record_failure("k")
    breaker.record_failure("k")
    clock.advance(0.2)
    for _ in range(3):
        assert breaker.allow("k")
    assert breaker.state("k") == "half-open"
    assert breaker.stats()["half_open_trials"] == 3
    before = breaker.stats()["short_circuits"]
    assert not breaker.allow("k")  # budget spent
    assert breaker.stats()["short_circuits"] == before + 1
    # One probe succeeding closes the circuit and frees everything.
    breaker.record_success("k")
    assert breaker.state("k") == "closed"
    assert breaker.stats()["half_open_trials"] == 0
    assert breaker.allow("k")


def test_half_open_probe_completion_refills_the_budget(clock):
    # With half_open_max=2, a probe that fails both re-opens the
    # circuit AND releases its trial slot — after the next cooldown the
    # full budget is available again (no slot leak across re-opens).
    breaker = CircuitBreaker(
        threshold=1, cooldown_ms=100.0, half_open_max=2, clock=clock
    )
    breaker.record_failure("k")
    clock.advance(0.2)
    assert breaker.allow("k")
    assert breaker.allow("k")
    assert not breaker.allow("k")
    breaker.record_failure("k")  # one probe fails: straight back to open
    assert breaker.state("k") == "open"
    assert not breaker.allow("k")
    clock.advance(0.2)
    assert breaker.allow("k")  # fresh cooldown, fresh budget
    assert breaker.allow("k")
    assert not breaker.allow("k")
    assert breaker.stats()["half_open_trials"] == 2


def test_half_open_max_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=1, half_open_max=0)
    assert CircuitBreaker(threshold=1, half_open_max=1).half_open_max == 1

"""CircuitBreaker: the closed → open → half-open state machine."""

from __future__ import annotations

import pytest

from repro.resilience import BREAKER_STATES, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown_ms=100.0, clock=clock)


def test_validates_construction():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=1, cooldown_ms=0)


def test_untracked_keys_are_closed_and_allowed(breaker):
    assert breaker.state("unseen") == "closed"
    assert breaker.allow("unseen")
    assert breaker.retry_after_ms("unseen") == 0.0


def test_opens_after_threshold_consecutive_failures(breaker):
    breaker.record_failure("k")
    breaker.record_failure("k")
    assert breaker.state("k") == "closed"
    assert breaker.allow("k")
    breaker.record_failure("k")
    assert breaker.state("k") == "open"
    assert not breaker.allow("k")
    assert breaker.stats()["opened"] == 1
    assert breaker.stats()["short_circuits"] == 1


def test_success_resets_the_failure_count(breaker):
    breaker.record_failure("k")
    breaker.record_failure("k")
    breaker.record_success("k")
    breaker.record_failure("k")
    breaker.record_failure("k")
    assert breaker.state("k") == "closed"  # never hit 3 consecutively


def test_cooldown_half_opens_then_success_closes(breaker, clock):
    for _ in range(3):
        breaker.record_failure("k")
    assert not breaker.allow("k")
    assert breaker.retry_after_ms("k") == pytest.approx(100.0)
    clock.advance(0.05)
    assert not breaker.allow("k")
    assert breaker.retry_after_ms("k") == pytest.approx(50.0)
    clock.advance(0.06)
    assert breaker.allow("k")  # cooldown elapsed: half-open trial
    assert breaker.state("k") == "half-open"
    breaker.record_success("k")
    assert breaker.state("k") == "closed"
    stats = breaker.stats()
    assert stats["half_opened"] == 1
    assert stats["closed"] == 1


def test_half_open_failure_reopens_and_restarts_cooldown(breaker, clock):
    for _ in range(3):
        breaker.record_failure("k")
    clock.advance(0.2)
    assert breaker.allow("k")
    breaker.record_failure("k")  # first trial failure re-opens immediately
    assert breaker.state("k") == "open"
    assert not breaker.allow("k")
    assert breaker.retry_after_ms("k") == pytest.approx(100.0)
    assert breaker.stats()["opened"] == 2


def test_keys_are_independent(breaker):
    for _ in range(3):
        breaker.record_failure("bad")
    assert breaker.state("bad") == "open"
    assert breaker.allow("good")
    assert breaker.state("good") == "closed"


def test_stats_histogram_covers_all_states(breaker, clock):
    breaker.record_failure("a")
    for _ in range(3):
        breaker.record_failure("b")
    for _ in range(3):
        breaker.record_failure("c")
    clock.advance(0.2)
    assert breaker.allow("c")  # half-opens c
    histogram = breaker.stats()["states"]
    assert set(histogram) == set(BREAKER_STATES)
    assert histogram == {"closed": 1, "open": 1, "half-open": 1}

"""ViewServer under a ResiliencePolicy: retries, deadlines, breaker,
admission control, and the degraded-stale fallback."""

from __future__ import annotations

import threading
import time

import pytest

from repro.maintenance import WriteTracker, hotel_write
from repro.resilience import FaultPlan, FaultSpec, ResiliencePolicy
from repro.serving import OUTCOMES, PublishRequest, ViewServer
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure4_stylesheet


class ScriptedPlan(FaultPlan):
    """A FaultPlan whose first ``len(script)`` query checks are scripted.

    Script items: ``"error"`` / ``"wrong-shape"`` (returned as the fault
    kind), a callable (invoked, no fault), or ``None`` (no fault). Once
    the script is exhausted every check is clean.
    """

    def __init__(self, script):
        super().__init__(FaultSpec(), seed=0)
        self._script = list(script)

    def check_query(self, site):
        self._advance(site)
        if not self.enabled:
            return None
        with self._lock:
            action = self._script.pop(0) if self._script else None
        if callable(action):
            action()
            return None
        if action == "error":
            self._count("error")
        return action


def _small_db(cross_thread: bool = False):
    return build_hotel_database(
        HotelDataSpec(metros=2, hotels_per_metro=2),
        cross_thread=cross_thread,
    )


def _request(db, **kwargs):
    return PublishRequest(
        view=figure1_view(db.catalog),
        stylesheet=figure4_stylesheet(),
        **kwargs,
    )


def _tracked_server(db, staleness="bounded:1", **kwargs):
    tracker = WriteTracker()
    db.attach_tracker(tracker)
    return tracker, ViewServer(
        db.catalog,
        source=db,
        workers=2,
        tracker=tracker,
        staleness=staleness,
        **kwargs,
    )


def test_transient_failure_retries_then_succeeds():
    db = _small_db()
    faults = ScriptedPlan(["error"])
    policy = ResiliencePolicy(retries=2, backoff_base_ms=0.1,
                              backoff_max_ms=0.5)
    reference = None
    with ViewServer(db.catalog, source=db, workers=2) as plain:
        reference = plain.render(figure1_view(db.catalog),
                                 figure4_stylesheet())
    with ViewServer(
        db.catalog, source=db, workers=2, resilience=policy, faults=faults
    ) as server:
        trace = server.submit(_request(db)).result()
        assert trace.outcome == "success"
        assert trace.error is None
        assert trace.retries == 1
        assert trace.xml == reference.xml
        metrics = server.metrics()
        assert metrics["resilience"]["retries"] == 1
        assert metrics["outcomes"]["success"] == 1
        assert server.pool.outstanding() == 0
    db.close()


def test_retry_budget_exhaustion_is_an_error_without_fallback():
    db = _small_db()
    faults = FaultPlan(FaultSpec(every_n=1), seed=0)  # every query fails
    policy = ResiliencePolicy(retries=2, backoff_base_ms=0.1,
                              backoff_max_ms=0.5)
    with ViewServer(
        db.catalog, source=db, workers=2, resilience=policy, faults=faults
    ) as server:
        trace = server.submit(_request(db)).result()
        assert trace.outcome == "error"
        assert trace.retries == 2
        assert trace.error is not None
        assert trace.xml is None
    db.close()


def test_degraded_stale_serves_last_known_good_with_lag():
    db = _small_db(cross_thread=True)
    faults = FaultPlan(FaultSpec(every_n=1), seed=0, enabled=False)
    policy = ResiliencePolicy(retries=1, backoff_base_ms=0.1,
                              backoff_max_ms=0.5)
    tracker, server = _tracked_server(
        db, staleness="bounded:1", resilience=policy, faults=faults
    )
    try:
        warm = server.submit(_request(db)).result()
        assert warm.freshness == "miss" and warm.error is None
        hotel_write(db, 0, tracker)
        hotel_write(db, 1, tracker)  # lag 2 > bound 1: entry is stale
        faults.arm()
        trace = server.submit(_request(db)).result()
        assert trace.outcome == "degraded"
        assert trace.freshness == "degraded-stale"
        assert trace.error is None
        assert trace.degraded_cause is not None
        assert trace.version_lag >= 2  # the honest staleness served
        assert trace.xml == warm.xml  # last-known-good bytes, verbatim
        metrics = server.metrics()
        assert metrics["resilience"]["degraded_serves"] == 1
        assert metrics["freshness"]["degraded-stale"] == 1
        assert metrics["outcomes"]["degraded"] == 1
    finally:
        server.close()
        db.close()


@pytest.mark.parametrize("staleness,degraded", [("strict", True),
                                                ("bounded:1", False)])
def test_no_silent_stale_under_strict_or_degraded_off(staleness, degraded):
    """strict policy + failure => error (never silent stale bytes); the
    same holds when the operator turned the fallback off."""
    db = _small_db(cross_thread=True)
    faults = FaultPlan(FaultSpec(every_n=1), seed=0, enabled=False)
    policy = ResiliencePolicy(retries=0, degraded=degraded)
    tracker, server = _tracked_server(
        db, staleness=staleness, resilience=policy, faults=faults
    )
    try:
        warm = server.submit(_request(db)).result()
        assert warm.error is None
        hotel_write(db, 0, tracker)
        hotel_write(db, 1, tracker)
        faults.arm()
        trace = server.submit(_request(db)).result()
        assert trace.outcome == "error"
        assert trace.error is not None
        assert trace.freshness != "degraded-stale"
        assert trace.xml is None
        assert server.metrics()["resilience"]["degraded_serves"] == 0
    finally:
        server.close()
        db.close()


def test_deadline_exceeded_without_fallback_is_reported():
    db = _small_db()
    policy = ResiliencePolicy(deadline_ms=0.001)  # expires immediately
    with ViewServer(
        db.catalog, source=db, workers=1, resilience=policy
    ) as server:
        trace = server.submit(_request(db)).result()
        assert trace.outcome == "deadline"
        assert "deadline" in trace.error
        metrics = server.metrics()
        assert metrics["resilience"]["deadline_hits"] == 1
        assert metrics["outcomes"]["deadline"] == 1
    db.close()


def test_deadline_blown_mid_evaluation_degrades_to_stale():
    db = _small_db(cross_thread=True)
    # One scripted 80ms stall inside the recompute: the next query
    # boundary's cancel_check sees the 30ms budget gone.
    faults = ScriptedPlan([lambda: time.sleep(0.08)])
    faults.disarm()
    policy = ResiliencePolicy(deadline_ms=30.0, retries=3)
    tracker, server = _tracked_server(
        db, staleness="bounded:1", resilience=policy, faults=faults
    )
    try:
        warm = server.submit(_request(db)).result()
        assert warm.error is None  # well under the deadline when healthy
        hotel_write(db, 0, tracker)
        hotel_write(db, 1, tracker)
        faults.arm()
        trace = server.submit(_request(db)).result()
        assert trace.outcome == "degraded"
        assert "DeadlineExceeded" in trace.degraded_cause
        assert trace.xml == warm.xml
        assert server.metrics()["resilience"]["deadline_hits"] == 1
    finally:
        server.close()
        db.close()


def test_admission_control_sheds_beyond_queue_limit():
    db = _small_db()
    started = threading.Event()
    release = threading.Event()

    def block():
        started.set()
        assert release.wait(timeout=10)

    faults = ScriptedPlan([block])
    policy = ResiliencePolicy(queue_limit=0)
    with ViewServer(
        db.catalog, source=db, workers=1, resilience=policy, faults=faults
    ) as server:
        first = server.submit(_request(db))
        assert started.wait(timeout=10)  # the only worker is busy
        shed = server.submit(_request(db)).result()
        assert shed.outcome == "rejected"
        assert "shed" in shed.error
        assert shed.freshness == "bypass"
        release.set()
        assert first.result().outcome == "success"
        metrics = server.metrics()
        assert metrics["resilience"]["shed_requests"] == 1
        assert metrics["outcomes"]["rejected"] == 1
        assert metrics["outcomes"]["success"] == 1
    db.close()


def test_breaker_opens_short_circuits_and_recovers():
    db = _small_db()
    faults = FaultPlan(FaultSpec(every_n=1), seed=0)
    policy = ResiliencePolicy(
        retries=0, breaker_threshold=2, breaker_cooldown_ms=50.0
    )
    with ViewServer(
        db.catalog, source=db, workers=1, resilience=policy, faults=faults
    ) as server:
        key = server.plan_key_for(_request(db))
        for _ in range(2):
            assert server.submit(_request(db)).result().outcome == "error"
        breaker = server.plan_cache.breaker
        assert breaker.state(key) == "open"
        shorted = server.submit(_request(db)).result()
        # A breaker refusal is backpressure, not a computation failure.
        assert shorted.outcome == "rejected"
        assert "circuit breaker open" in shorted.error
        assert breaker.stats()["short_circuits"] >= 1
        # Cooldown elapses, the fault clears: a half-open trial closes it.
        faults.disarm()
        time.sleep(0.06)
        healed = server.submit(_request(db)).result()
        assert healed.outcome == "success"
        assert breaker.state(key) == "closed"
    db.close()


def test_compile_failures_feed_the_breaker():
    db = _small_db()
    faults = FaultPlan(FaultSpec(compile_error_rate=1.0), seed=0)
    policy = ResiliencePolicy(retries=0, breaker_threshold=1,
                              breaker_cooldown_ms=60_000.0)
    with ViewServer(
        db.catalog, source=db, workers=1, resilience=policy, faults=faults
    ) as server:
        first = server.submit(_request(db)).result()
        assert first.outcome == "error"
        assert "injected compile failure" in first.error
        # The breaker opened on the compile failure: the next request
        # short-circuits before attempting another compile.
        second = server.submit(_request(db)).result()
        assert "circuit breaker open" in second.error
        assert server.metrics()["cache"]["misses"] == 1  # one build, ever
    db.close()


def test_wrong_shape_results_fail_loudly_never_silently():
    db = _small_db()
    faults = FaultPlan(FaultSpec(wrong_shape_rate=1.0), seed=0)
    with ViewServer(
        db.catalog, source=db, workers=1, faults=faults
    ) as server:
        trace = server.submit(_request(db)).result()
        assert trace.outcome == "error"
        assert trace.error is not None
        assert trace.xml is None
    db.close()


def test_no_connections_leak_under_sustained_chaos():
    db = _small_db()
    faults = FaultPlan(FaultSpec(error_rate=0.5, wrong_shape_rate=0.2),
                       seed=11)
    policy = ResiliencePolicy(retries=1, backoff_base_ms=0.1,
                              backoff_max_ms=0.5)
    with ViewServer(
        db.catalog, source=db, workers=3, resilience=policy, faults=faults
    ) as server:
        traces = server.render_many(_request(db) for _ in range(40))
        assert len(traces) == 40
        assert all(t.outcome in OUTCOMES for t in traces)
        assert server.pool.outstanding() == 0
    db.close()


def test_metrics_report_resilience_and_fault_sections():
    db = _small_db()
    faults = FaultPlan(FaultSpec(error_rate=0.1), seed=3)
    policy = ResiliencePolicy(deadline_ms=5000.0, retries=2,
                              breaker_threshold=4, queue_limit=16)
    with ViewServer(
        db.catalog, source=db, workers=2, resilience=policy, faults=faults
    ) as server:
        server.submit(_request(db)).result()
        metrics = server.metrics()
        assert set(metrics["outcomes"]) == set(OUTCOMES)
        resilience = metrics["resilience"]
        assert resilience["policy"] == policy.describe()
        for field in ("retries", "deadline_hits", "shed_requests",
                      "degraded_serves"):
            assert resilience[field] >= 0
        assert resilience["breaker"]["threshold"] == 4
        assert metrics["faults"]["seed"] == 3
        assert metrics["faults"]["checks"] > 0
    db.close()


def test_server_without_policy_reports_no_resilience_section():
    db = _small_db()
    with ViewServer(db.catalog, source=db, workers=1) as server:
        server.submit(_request(db)).result()
        metrics = server.metrics()
        assert "resilience" not in metrics
        assert "faults" not in metrics
        assert metrics["outcomes"]["success"] == 1
    db.close()

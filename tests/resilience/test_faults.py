"""FaultPlan / FaultyEngine: deterministic, site-addressed injection."""

from __future__ import annotations

import sqlite3

import pytest

from repro.resilience import FaultPlan, FaultSpec, FaultyEngine
from repro.resilience.faults import TRANSIENT_MESSAGES
from repro.sql.parser import parse_select
from repro.workloads.hotel import HotelDataSpec, build_hotel_database


def _schedule(plan: FaultPlan, site: str, calls: int) -> list:
    return [plan.check_query(site) for _ in range(calls)]


def test_spec_validates_rates():
    with pytest.raises(ValueError):
        FaultSpec(error_rate=1.5)
    with pytest.raises(ValueError):
        FaultSpec(latency_ms=-1)
    with pytest.raises(ValueError):
        FaultSpec(every_n=-2)


def test_same_seed_same_schedule():
    spec = FaultSpec(error_rate=0.3, wrong_shape_rate=0.1)
    first = _schedule(FaultPlan(spec, seed=42), "hotel", 200)
    second = _schedule(FaultPlan(spec, seed=42), "hotel", 200)
    assert first == second
    assert any(kind == "error" for kind in first)
    # A different seed produces a different schedule (overwhelmingly).
    assert _schedule(FaultPlan(spec, seed=43), "hotel", 200) != first


def test_sites_are_independent_streams():
    """Each site hashes its own counter, so interleaving between sites
    cannot change any site's schedule."""
    spec = FaultSpec(error_rate=0.3)
    plain = FaultPlan(spec, seed=7)
    hotel_only = _schedule(plain, "hotel", 50)
    interleaved_plan = FaultPlan(spec, seed=7)
    interleaved = []
    for _ in range(50):
        interleaved.append(interleaved_plan.check_query("hotel"))
        interleaved_plan.check_query("metroarea")
    assert interleaved == hotel_only


def test_disarm_advances_counters_without_injecting():
    plan = FaultPlan(FaultSpec(error_rate=1.0), seed=1, enabled=False)
    assert _schedule(plan, "hotel", 5) == [None] * 5
    plan.arm()
    assert plan.check_query("hotel") == "error"
    assert plan.stats()["checks"] == 6
    assert plan.stats()["injected"]["error"] == 1


def test_every_n_fires_deterministically():
    plan = FaultPlan(FaultSpec(every_n=3), seed=0)
    kinds = _schedule(plan, "hotel", 9)
    assert kinds == [None, None, "error"] * 3


def test_tables_restriction_scopes_query_faults():
    plan = FaultPlan(
        FaultSpec(every_n=1, tables=frozenset({"hotel"})), seed=0
    )
    assert plan.check_query("hotel") == "error"
    assert plan.check_query("metroarea") is None


def test_error_messages_rotate_and_classify_transient():
    from repro.errors import classify_error

    plan = FaultPlan(FaultSpec(every_n=1), seed=0)
    seen = set()
    for _ in range(len(TRANSIENT_MESSAGES)):
        assert plan.check_query("hotel") == "error"
        error = plan.error_for("hotel")
        assert classify_error(error) == "transient"
        seen.add(str(error))
    assert seen == set(TRANSIENT_MESSAGES)


def test_check_compile_raises_operational_error():
    plan = FaultPlan(FaultSpec(compile_error_rate=1.0), seed=0)
    with pytest.raises(sqlite3.OperationalError) as exc:
        plan.check_compile("abcdef0123456789deadbeef")
    assert "abcdef0123456789" in str(exc.value)
    plan.disarm()
    plan.check_compile("abcdef0123456789deadbeef")  # disarmed: no raise


@pytest.fixture()
def small_db():
    db = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=2))
    yield db
    db.close()


def test_faulty_engine_injects_real_errors_and_counts_work(small_db):
    engine = FaultyEngine(small_db, FaultPlan(FaultSpec(every_n=2), seed=0))
    query = parse_select("SELECT * FROM metroarea")
    before = small_db.stats.snapshot()["queries_executed"]
    rows = engine.run_query(query)
    assert len(rows) == 2
    with pytest.raises(sqlite3.OperationalError):
        engine.run_query(query)
    # The doomed attempt is still counted as an executed query.
    assert small_db.stats.snapshot()["queries_executed"] == before + 2


def test_faulty_engine_wrong_shape_drops_a_column(small_db):
    engine = FaultyEngine(
        small_db,
        FaultPlan(FaultSpec(wrong_shape_rate=1.0), seed=0),
    )
    rows = engine.run_query(parse_select("SELECT * FROM metroarea"))
    clean = small_db.run_query(parse_select("SELECT * FROM metroarea"))
    assert rows and set(rows[0]) < set(clean[0])


def test_faulty_engine_delegates_everything_else(small_db):
    engine = FaultyEngine(small_db, FaultPlan(FaultSpec(), seed=0))
    assert engine.wrapped is small_db
    assert engine.catalog is small_db.catalog
    assert engine.connection is small_db.connection
    assert engine.table_count("metroarea") == 2


def test_faulty_engine_honours_cancel_check_before_injection(small_db):
    class Cancelled(Exception):
        pass

    def cancel():
        raise Cancelled()

    engine = FaultyEngine(
        small_db,
        FaultPlan(FaultSpec(latency_rate=1.0, latency_ms=5000.0), seed=0),
    )
    engine.cancel_check = cancel
    with pytest.raises(Cancelled):
        engine.run_query(parse_select("SELECT * FROM metroarea"))
    # The cancelled call never reached the plan: no latency was injected.
    assert engine._plan.stats()["injected"]["latency"] == 0

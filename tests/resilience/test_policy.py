"""ResiliencePolicy knobs and the Deadline time budget."""

from __future__ import annotations

import random

import pytest

from repro.errors import DeadlineExceeded, ReproError
from repro.resilience import Deadline, ResiliencePolicy


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.mark.parametrize(
    "kwargs",
    [
        {"deadline_ms": 0},
        {"deadline_ms": -5},
        {"retries": -1},
        {"backoff_base_ms": -1},
        {"breaker_threshold": -1},
        {"breaker_cooldown_ms": 0},
        {"queue_limit": -1},
    ],
)
def test_policy_validates(kwargs):
    with pytest.raises(ReproError):
        ResiliencePolicy(**kwargs)


def test_backoff_is_capped_exponential_with_full_jitter():
    policy = ResiliencePolicy(
        retries=5, backoff_base_ms=10.0, backoff_max_ms=40.0
    )
    rng = random.Random(0)
    for attempt, ceiling in [(1, 10.0), (2, 20.0), (3, 40.0), (4, 40.0)]:
        draws = [policy.backoff_ms(attempt, rng=rng) for _ in range(50)]
        assert all(0.0 <= d <= ceiling for d in draws)
        # Full jitter actually spreads over the range, it's not constant.
        assert max(draws) - min(draws) > ceiling / 4


def test_describe_mentions_every_active_knob():
    text = ResiliencePolicy(
        deadline_ms=250.0,
        retries=2,
        breaker_threshold=3,
        queue_limit=8,
        degraded=False,
    ).describe()
    for fragment in ("deadline=250ms", "retries=2", "breaker=3",
                     "queue=8", "no-degraded"):
        assert fragment in text


def test_unbounded_deadline_is_a_free_noop():
    deadline = Deadline.start(None)
    assert deadline.remaining_ms() is None
    assert not deadline.expired
    deadline.check()  # never raises


def test_deadline_expires_on_the_fake_clock():
    clock = FakeClock()
    deadline = Deadline.start(100.0, clock=clock)
    deadline.check()
    clock.advance(0.05)
    assert deadline.remaining_ms() == pytest.approx(50.0)
    clock.advance(0.06)
    assert deadline.remaining_ms() == 0.0  # clamped, never negative
    assert deadline.expired
    with pytest.raises(DeadlineExceeded) as exc:
        deadline.check()
    assert exc.value.deadline_ms == 100.0
    assert exc.value.elapsed_ms >= 100.0


def test_classify_error_taxonomy():
    import sqlite3

    from repro.errors import (
        CircuitOpen,
        RequestRejected,
        ViewEvaluationError,
        classify_error,
    )

    assert classify_error(DeadlineExceeded(10, 11)) == "deadline"
    assert classify_error(RequestRejected("shed")) == "rejected"
    assert classify_error(CircuitOpen("key", 50.0)) == "rejected"
    assert (
        classify_error(sqlite3.OperationalError("database is locked"))
        == "transient"
    )
    assert (
        classify_error(sqlite3.OperationalError("no such table: x"))
        == "permanent"
    )
    assert classify_error(ValueError("nope")) == "permanent"
    # The chain is walked: a wrapped transient stays transient...
    wrapped = ViewEvaluationError("sqlite error: disk I/O error")
    wrapped.__cause__ = sqlite3.OperationalError("disk I/O error")
    assert classify_error(wrapped) == "transient"
    # ...and a wrapped deadline stays a deadline.
    shell = RuntimeError("boom")
    shell.__context__ = DeadlineExceeded(5, 6)
    assert classify_error(shell) == "deadline"

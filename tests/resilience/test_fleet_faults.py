"""FleetFaultPlan: seeded whole-member fault windows with role targeting."""

from __future__ import annotations

import pytest

from repro.resilience import FLEET_FAULT_KINDS, FleetFaultPlan, FleetFaultSpec


def _schedule(plan, kind, shard, member, checks):
    return [plan.active(kind, shard, member) for _ in range(checks)]


def test_same_seed_same_schedule():
    spec = FleetFaultSpec(crash_rate=0.5, window=4)
    first = _schedule(
        FleetFaultPlan(spec, seed=7), "replica-crash", 0, "replica-1", 64
    )
    second = _schedule(
        FleetFaultPlan(spec, seed=7), "replica-crash", 0, "replica-1", 64
    )
    assert first == second
    assert any(first) and not all(first)


def test_different_seeds_and_sites_draw_independently():
    spec = FleetFaultSpec(crash_rate=0.5, window=4)
    base = _schedule(
        FleetFaultPlan(spec, seed=7), "replica-crash", 0, "replica-1", 64
    )
    reseeded = _schedule(
        FleetFaultPlan(spec, seed=8), "replica-crash", 0, "replica-1", 64
    )
    other_site = _schedule(
        FleetFaultPlan(spec, seed=7), "replica-crash", 1, "replica-1", 64
    )
    assert base != reseeded
    assert base != other_site


def test_faults_arrive_in_whole_windows():
    plan = FleetFaultPlan(FleetFaultSpec(crash_rate=0.5, window=4), seed=7)
    draws = _schedule(plan, "replica-crash", 0, "replica-1", 64)
    for start in range(0, 64, 4):
        window = draws[start:start + 4]
        assert window == [window[0]] * 4  # one decision per window


def test_role_targeting_is_structural():
    """Crash/stall never hit the primary, partition never hits replicas
    — and the wrong-role checks do not advance the site counters, so
    they cannot perturb the schedule of the right-role sites."""
    plan = FleetFaultPlan(
        FleetFaultSpec(crash_rate=1.0, stall_rate=1.0, partition_rate=1.0),
        seed=0,
    )
    assert not plan.active("replica-crash", 0, "primary")
    assert not plan.active("apply-stall", 0, "primary")
    assert not plan.active("partition", 0, "replica-1")
    assert plan.stats()["checks"] == 0
    assert plan.active("replica-crash", 0, "replica-1")
    assert plan.active("apply-stall", 0, "replica-1")
    assert plan.active("partition", 0, "primary")
    assert plan.stats()["checks"] == 3


def test_disarm_stops_injection_but_counters_advance():
    plan = FleetFaultPlan(FleetFaultSpec(crash_rate=1.0, window=2), seed=0)
    assert plan.active("replica-crash", 0, "replica-1")
    plan.disarm()
    assert not plan.active("replica-crash", 0, "replica-1")
    stats = plan.stats()
    assert stats["enabled"] is False
    assert stats["checks"] == 2  # the disarmed check still counted
    plan.arm()
    assert plan.active("replica-crash", 0, "replica-1")
    assert plan.stats()["injected"]["replica-crash"] == 2


def test_stats_report_per_kind_injections():
    plan = FleetFaultPlan(
        FleetFaultSpec(crash_rate=1.0, partition_rate=0.0), seed=0
    )
    plan.active("replica-crash", 0, "replica-1")
    plan.active("partition", 0, "primary")  # rate 0: checked, not injected
    stats = plan.stats()
    assert stats["seed"] == 0
    assert stats["checks"] == 2
    assert stats["injected"] == {
        "replica-crash": 1, "apply-stall": 0, "partition": 0,
    }


def test_for_kind_builds_single_kind_plans():
    for kind in FLEET_FAULT_KINDS:
        plan = FleetFaultPlan.for_kind(kind, rate=1.0, seed=3, window=2)
        assert plan.spec.rate_for(kind) == 1.0
        for other in FLEET_FAULT_KINDS:
            if other != kind:
                assert plan.spec.rate_for(other) == 0.0
    with pytest.raises(ValueError):
        FleetFaultPlan.for_kind("meteor-strike")


def test_unknown_kind_and_bad_spec_are_rejected():
    plan = FleetFaultPlan(FleetFaultSpec())
    with pytest.raises(ValueError):
        plan.active("meteor-strike", 0, "replica-1")
    with pytest.raises(ValueError):
        FleetFaultSpec(crash_rate=1.5)
    with pytest.raises(ValueError):
        FleetFaultSpec(window=0)
    with pytest.raises(ValueError):
        FleetFaultSpec().rate_for("meteor-strike")

"""Tests for the exception hierarchy and error reporting quality."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name


def test_hierarchy_groups():
    assert issubclass(errors.XMLParseError, errors.XMLError)
    assert issubclass(errors.XPathSyntaxError, errors.XPathError)
    assert issubclass(errors.SQLSyntaxError, errors.SQLError)
    assert issubclass(errors.UnsupportedFeatureError, errors.CompositionError)
    assert issubclass(errors.UnificationError, errors.CompositionError)
    assert issubclass(errors.ViewDefinitionError, errors.ViewError)
    assert issubclass(errors.StylesheetParseError, errors.XSLTError)


def test_xml_parse_error_carries_position():
    error = errors.XMLParseError("bad", line=3, column=7)
    assert error.line == 3 and error.column == 7
    assert "line 3" in str(error)


def test_xpath_error_includes_expression():
    error = errors.XPathSyntaxError("oops", "a//b", 2)
    assert "a//b" in str(error)
    assert "offset 2" in str(error)


def test_sql_error_truncates_long_statements():
    long_sql = "SELECT " + "x, " * 200 + "y FROM t"
    error = errors.SQLSyntaxError("oops", long_sql, 5)
    assert "..." in str(error)


def test_unsupported_feature_records_feature():
    error = errors.UnsupportedFeatureError("recursion", "cyclic CTG")
    assert error.feature == "recursion"
    assert "cyclic CTG" in str(error)


def test_catching_base_class_is_sufficient():
    from repro.sql.parser import parse_select

    with pytest.raises(errors.ReproError):
        parse_select("not sql at all !")

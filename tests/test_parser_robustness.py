"""Fuzz robustness: every parser either succeeds or raises its own
documented error type — never an unrelated exception."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    SQLSyntaxError,
    StylesheetParseError,
    ViewDefinitionError,
    XMLParseError,
    XPathSyntaxError,
)
from repro.schema_tree.io import catalog_from_xml, view_from_xml
from repro.sql.parser import parse_select
from repro.xmlcore.parser import parse_document
from repro.xpath.parser import parse_expression, parse_path, parse_pattern
from repro.xslt.parser import parse_stylesheet

# Text biased toward structural characters so the parsers get deep.
xmlish = st.text(
    alphabet=st.sampled_from(list("<>/=\"'&;abc xsl:tmpl{}[]")), max_size=60
)
pathish = st.text(
    alphabet=st.sampled_from(list("abc/@.*[]()<>=!$0123 'x'")), max_size=40
)
sqlish = st.text(
    alphabet=st.sampled_from(
        list("SELECT FROM WHERE abc,*().=<>$'0123 ")
    ),
    max_size=60,
)


@given(xmlish)
@settings(max_examples=300, deadline=None)
def test_xml_parser_total(text):
    try:
        parse_document(text)
    except XMLParseError:
        pass


@given(pathish)
@settings(max_examples=300, deadline=None)
def test_xpath_path_parser_total(text):
    try:
        parse_path(text)
    except XPathSyntaxError:
        pass


@given(pathish)
@settings(max_examples=200, deadline=None)
def test_xpath_expression_parser_total(text):
    try:
        parse_expression(text)
    except XPathSyntaxError:
        pass


@given(pathish)
@settings(max_examples=200, deadline=None)
def test_xpath_pattern_parser_total(text):
    try:
        parse_pattern(text)
    except XPathSyntaxError:
        pass


@given(sqlish)
@settings(max_examples=300, deadline=None)
def test_sql_parser_total(text):
    try:
        parse_select(text)
    except SQLSyntaxError:
        pass


@given(xmlish)
@settings(max_examples=200, deadline=None)
def test_stylesheet_parser_total(text):
    try:
        parse_stylesheet(text)
    except (StylesheetParseError, XMLParseError, XPathSyntaxError):
        pass


@given(xmlish)
@settings(max_examples=150, deadline=None)
def test_view_io_total(text):
    try:
        view_from_xml(text, validate=False)
    except (ViewDefinitionError, XMLParseError, SQLSyntaxError):
        pass
    try:
        catalog_from_xml(text)
    except (ViewDefinitionError, XMLParseError):
        pass

"""Unit tests for instance-level XPath evaluation."""

import pytest

from repro.errors import XPathEvaluationError
from repro.xmlcore.parser import parse_document
from repro.xpath.evaluator import XPathEvaluator, evaluate_path, evaluate_predicate
from repro.xpath.parser import parse_expression, parse_path

DOC = parse_document(
    """
<metro metroname="chicago">
  <confstat sum="900"/>
  <hotel hotelid="1" starrating="5">
    <confstat sum="150"/>
    <confroom capacity="300" rackrate="50.5"/>
    <confroom capacity="100"/>
    <hotel_available count="12"/>
  </hotel>
  <hotel hotelid="2" starrating="3">
    <confstat sum="80"/>
  </hotel>
</metro>
"""
)
METRO = DOC.root_element
HOTEL1 = METRO.find_children("hotel")[0]
HOTEL2 = METRO.find_children("hotel")[1]


def tags(nodes):
    return [getattr(n, "tag", "?") for n in nodes]


def test_child_step():
    assert tags(evaluate_path("hotel", METRO)) == ["hotel", "hotel"]


def test_child_chain():
    assert tags(evaluate_path("hotel/confroom", METRO)) == ["confroom", "confroom"]


def test_parent_step():
    confstat = HOTEL1.find_children("confstat")[0]
    assert evaluate_path("..", confstat) == [HOTEL1]


def test_parent_then_sibling():
    confstat = HOTEL1.find_children("confstat")[0]
    result = evaluate_path("../hotel_available/../confroom", confstat)
    assert tags(result) == ["confroom", "confroom"]


def test_self_step():
    assert evaluate_path(".", HOTEL1) == [HOTEL1]


def test_absolute_path_from_any_context():
    assert tags(evaluate_path("/metro/hotel", HOTEL1)) == ["hotel", "hotel"]


def test_descendant_or_self():
    assert tags(evaluate_path("//confroom", METRO)) == ["confroom", "confroom"]
    assert len(evaluate_path("//confstat", DOC)) == 3


def test_wildcard_step():
    assert len(evaluate_path("*", HOTEL1)) == 4


def test_predicate_numeric_comparison():
    result = evaluate_path("hotel[@starrating>4]", METRO)
    assert result == [HOTEL1]


def test_predicate_string_equality():
    assert evaluate_path("hotel[@starrating='3']", METRO) == [HOTEL2]


def test_predicate_path_existence():
    result = evaluate_path("hotel[hotel_available]", METRO)
    assert result == [HOTEL1]


def test_predicate_not_function():
    result = evaluate_path("hotel[not(hotel_available)]", METRO)
    assert result == [HOTEL2]


def test_predicate_missing_attribute_is_false():
    assert evaluate_path("hotel[@ghost=1]", METRO) == []


def test_predicate_and_or():
    result = evaluate_path("hotel[@starrating>4 and confroom]", METRO)
    assert result == [HOTEL1]
    result = evaluate_path("hotel[@starrating>9 or @hotelid=2]", METRO)
    assert result == [HOTEL2]


def test_nested_predicate():
    result = evaluate_path("hotel[confroom[@capacity>250]]", METRO)
    assert result == [HOTEL1]


def test_select_values_attribute_axis():
    evaluator = XPathEvaluator()
    values = evaluator.select_values(parse_path("hotel/@hotelid"), METRO)
    assert values == ["1", "2"]


def test_dedup_preserves_order():
    # Two confrooms share one parent; '..' yields it once.
    assert evaluate_path("confroom/..", HOTEL1) == [HOTEL1]


def test_variables_in_predicates():
    result = evaluate_path("hotel[@starrating>$min]", METRO, {"min": 4.0})
    assert result == [HOTEL1]


def test_unbound_variable_raises():
    with pytest.raises(XPathEvaluationError):
        evaluate_path("hotel[@starrating>$nope]", METRO)


def test_count_function():
    assert evaluate_predicate("count(confroom) = 2", HOTEL1)
    assert not evaluate_predicate("count(confroom) = 2", HOTEL2)


def test_true_false_functions():
    assert evaluate_predicate("true()", HOTEL1)
    assert not evaluate_predicate("false()", HOTEL1)


def test_arithmetic_in_predicates():
    assert evaluate_predicate("@capacity - 100 = 200", HOTEL1.find_children("confroom")[0])


def test_comparison_against_node_set():
    # Node-set comparison: true if some member matches.
    assert evaluate_predicate("confroom/@capacity = 100", HOTEL1)
    assert not evaluate_predicate("confroom/@capacity = 999", HOTEL1)


def test_truth_coercions():
    truth = XPathEvaluator.truth
    assert truth(True) and not truth(False)
    assert truth(1.0) and not truth(0.0)
    assert truth("x") and not truth("")
    assert truth([1]) and not truth([])
    assert not truth(None)


def test_to_string_formats_numbers():
    to_string = XPathEvaluator.to_string
    assert to_string(5.0) == "5"
    assert to_string(5.5) == "5.5"
    assert to_string(True) == "true"
    assert to_string(None) == ""

"""Unit tests for the XPath parser."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    AttributeRef,
    Axis,
    BinaryOp,
    ContextRef,
    FunctionCall,
    Literal,
    NumberLiteral,
    PathExpr,
    VariableRef,
)
from repro.xpath.parser import parse_expression, parse_path, parse_pattern


def test_child_steps():
    path = parse_path("hotel/confstat")
    assert [s.axis for s in path.steps] == [Axis.CHILD, Axis.CHILD]
    assert [s.node_test for s in path.steps] == ["hotel", "confstat"]
    assert not path.absolute


def test_absolute_path():
    path = parse_path("/metro")
    assert path.absolute
    assert path.steps[0].node_test == "metro"


def test_parent_steps():
    path = parse_path("../hotel_available/../confroom")
    axes = [s.axis for s in path.steps]
    assert axes == [Axis.PARENT, Axis.CHILD, Axis.PARENT, Axis.CHILD]


def test_self_step_with_predicate():
    path = parse_path(".[@sum<200]")
    step = path.steps[0]
    assert step.axis is Axis.SELF
    assert len(step.predicates) == 1


def test_explicit_axes():
    path = parse_path("self::node_a/parent::node_b/child::node_c")
    assert [s.axis for s in path.steps] == [Axis.SELF, Axis.PARENT, Axis.CHILD]


def test_self_axis_without_node_test():
    # The paper writes "self::[@count>50]".
    path = parse_path("self::[@count>50]/../..")
    assert path.steps[0].axis is Axis.SELF
    assert path.steps[0].node_test == "*"
    assert len(path.steps[0].predicates) == 1


def test_descendant_axis():
    path = parse_path("a//b")
    assert path.steps[1].axis is Axis.DESCENDANT_OR_SELF
    assert path.steps[2].node_test == "b"


def test_leading_descendant():
    path = parse_path("//b")
    assert path.absolute
    assert path.steps[0].axis is Axis.DESCENDANT_OR_SELF


def test_attribute_step():
    path = parse_path("a/@x")
    assert path.steps[1].axis is Axis.ATTRIBUTE
    assert path.steps[1].node_test == "x"


def test_wildcard():
    path = parse_path("*/a")
    assert path.steps[0].node_test == "*"


def test_multiple_predicates_on_step():
    path = parse_path("confroom[../confstat[@sum>100]][@capacity>250]")
    assert len(path.steps[0].predicates) == 2


def test_nested_predicate_is_path_with_own_predicate():
    path = parse_path("confroom[../confstat[@sum>100]]")
    predicate = path.steps[0].predicates[0]
    assert isinstance(predicate, PathExpr)
    inner = predicate.path.steps[1]
    assert inner.node_test == "confstat"
    assert len(inner.predicates) == 1


def test_expression_comparison():
    expr = parse_expression("@sum < 200")
    assert isinstance(expr, BinaryOp)
    assert expr.op == "<"
    assert isinstance(expr.left, AttributeRef)
    assert isinstance(expr.right, NumberLiteral)


def test_expression_boolean_precedence():
    expr = parse_expression("@a=1 or @b=2 and @c=3")
    assert expr.op == "or"
    assert expr.right.op == "and"


def test_expression_not_function():
    expr = parse_expression("not(@a)")
    assert isinstance(expr, FunctionCall)
    assert expr.name == "not"


def test_expression_variable_arithmetic():
    expr = parse_expression("$idx - 1")
    assert expr.op == "-"
    assert isinstance(expr.left, VariableRef)


def test_expression_string_literal():
    expr = parse_expression("@name = 'chicago'")
    assert isinstance(expr.right, Literal)
    assert expr.right.value == "chicago"


def test_expression_parentheses():
    expr = parse_expression("(@a=1 or @b=2) and @c=3")
    assert expr.op == "and"
    assert expr.left.op == "or"


def test_expression_path_existence():
    expr = parse_expression("hotel/confstat")
    assert isinstance(expr, PathExpr)


def test_expression_bare_dot():
    expr = parse_expression(".")
    assert isinstance(expr, ContextRef)


def test_pattern_root():
    assert parse_pattern("/").is_root


def test_pattern_names():
    pattern = parse_pattern("metro/hotel/confroom")
    assert pattern.step_names == ("metro", "hotel", "confroom")
    assert pattern.last_name == "confroom"


def test_pattern_rejects_parent_axis():
    with pytest.raises(XPathSyntaxError):
        parse_pattern("../confroom")


@pytest.mark.parametrize("bad", ["a/", "a[", "a]b", "[email protected]", "/a/", "a b", "..::x"])
def test_malformed_paths_raise(bad):
    with pytest.raises(XPathSyntaxError):
        parse_path(bad)


def test_to_text_roundtrip():
    for text in [
        "hotel/confstat",
        "../hotel_available/../confroom",
        "/metro",
        ".[@sum < 200]",
        "a[@x > 1][b/c]",
    ]:
        path = parse_path(text)
        assert parse_path(path.to_text()).to_text() == path.to_text()

"""Unit tests for the XPath tokenizer."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.lexer import EOF, NAME, NUMBER, STRING, SYMBOL, VARIABLE, tokenize


def kinds(expr):
    return [t.kind for t in tokenize(expr)]


def values(expr):
    return [t.value for t in tokenize(expr)[:-1]]


def test_simple_path():
    assert values("hotel/confstat") == ["hotel", "/", "confstat"]


def test_double_slash_is_one_token():
    assert values("a//b") == ["a", "//", "b"]


def test_dotdot_and_dot():
    assert values("../.") == ["..", "/", "."]


def test_attribute_token():
    assert values("@capacity") == ["@", "capacity"]


def test_string_literals_both_quotes():
    tokens = tokenize("'one' \"two\"")
    assert [t.kind for t in tokens[:-1]] == [STRING, STRING]
    assert [t.value for t in tokens[:-1]] == ["one", "two"]


def test_unterminated_string_raises():
    with pytest.raises(XPathSyntaxError):
        tokenize("'oops")


def test_numbers_integer_and_decimal():
    tokens = tokenize("10 2.5")
    assert [t.kind for t in tokens[:-1]] == [NUMBER, NUMBER]
    assert [t.value for t in tokens[:-1]] == ["10", "2.5"]


def test_variable_token():
    tokens = tokenize("$idx")
    assert tokens[0].kind == VARIABLE
    assert tokens[0].value == "idx"


def test_dollar_without_name_raises():
    with pytest.raises(XPathSyntaxError):
        tokenize("$ 5")


def test_comparison_operators():
    assert values("a<=b!=c>=d") == ["a", "<=", "b", "!=", "c", ">=", "d"]


def test_axis_separator():
    assert values("parent::hotel") == ["parent", "::", "hotel"]


def test_variable_minus_number_is_subtraction():
    tokens = tokenize("$idx-1")
    assert [t.kind for t in tokens[:-1]] == [VARIABLE, SYMBOL, NUMBER]


def test_eof_always_appended():
    assert tokenize("")[-1].kind == EOF
    assert tokenize("a")[-1].kind == EOF


def test_unexpected_character_raises():
    with pytest.raises(XPathSyntaxError):
        tokenize("a § b")


def test_underscore_names():
    tokens = tokenize("hotel_available")
    assert tokens[0].kind == NAME
    assert tokens[0].value == "hotel_available"

"""Unit tests for match-pattern semantics and default priorities."""

from repro.xmlcore.parser import parse_document
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_pattern
from repro.xpath.patterns import default_priority, pattern_matches

DOC = parse_document(
    "<metro><hotel starrating='5'><confroom capacity='300'/></hotel></metro>"
)
METRO = DOC.root_element
HOTEL = METRO.child_elements()[0]
CONFROOM = HOTEL.child_elements()[0]


def test_root_pattern_matches_document_only():
    pattern = parse_pattern("/")
    assert pattern.matches(DOC)
    assert not pattern.matches(METRO)


def test_single_name_matches_any_depth():
    pattern = parse_pattern("confroom")
    assert pattern.matches(CONFROOM)
    assert not pattern.matches(HOTEL)


def test_multi_step_suffix_semantics():
    pattern = parse_pattern("hotel/confroom")
    assert pattern.matches(CONFROOM)
    assert not pattern.matches(HOTEL)


def test_full_path_pattern():
    assert pattern_matches("metro/hotel/confroom", CONFROOM)
    assert not pattern_matches("other/hotel/confroom", CONFROOM)


def test_absolute_pattern_anchors_at_root():
    assert pattern_matches("/metro", METRO)
    assert not pattern_matches("/hotel", HOTEL)
    assert pattern_matches("/metro/hotel", HOTEL)


def test_wildcard_pattern():
    assert pattern_matches("*", CONFROOM)
    assert pattern_matches("hotel/*", CONFROOM)
    assert not pattern_matches("metro/*", CONFROOM)


def test_descendant_pattern():
    assert pattern_matches("metro//confroom", CONFROOM)
    assert pattern_matches("//confroom", CONFROOM)
    assert not pattern_matches("hotel//metro", METRO)


def test_pattern_with_predicates():
    evaluator = XPathEvaluator()
    pattern = parse_pattern("hotel[@starrating>4]/confroom")
    assert pattern.matches(CONFROOM, evaluator.check_predicate)
    pattern = parse_pattern("hotel[@starrating>9]/confroom")
    assert not pattern.matches(CONFROOM, evaluator.check_predicate)


def test_predicates_ignored_by_default_checker():
    pattern = parse_pattern("hotel[@starrating>9]/confroom")
    # Structural match ignores predicates unless a checker is supplied.
    assert pattern.matches(CONFROOM)


def test_default_priorities():
    assert default_priority(parse_pattern("confroom")) == 0.0
    assert default_priority(parse_pattern("*")) == -0.5
    assert default_priority(parse_pattern("hotel/confroom")) == 0.5
    assert default_priority(parse_pattern("confroom[@x]")) == 0.5
    assert default_priority(parse_pattern("/")) == 0.5


def test_pattern_text_roundtrip():
    for text in ["/", "metro/hotel", "a[@x > 1]/b", "a//b"]:
        assert parse_pattern(parse_pattern(text).to_text()).to_text() == \
            parse_pattern(text).to_text()

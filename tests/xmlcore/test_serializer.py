"""Unit tests for XML serialization."""

from repro.xmlcore.nodes import Comment, Document, Element, Text
from repro.xmlcore.parser import parse_document
from repro.xmlcore.serializer import (
    escape_attribute,
    escape_text,
    serialize,
    serialize_pretty,
)


def test_empty_element_self_closes():
    assert serialize(Element("a")) == "<a/>"


def test_attributes_in_insertion_order():
    assert serialize(Element("a", {"z": "1", "b": "2"})) == '<a z="1" b="2"/>'


def test_text_escaping():
    element = Element("a")
    element.append(Text("<x> & </x>"))
    assert serialize(element) == "<a>&lt;x&gt; &amp; &lt;/x&gt;</a>"


def test_attribute_escaping():
    element = Element("a", {"x": 'a"b<c&d'})
    assert serialize(element) == '<a x="a&quot;b&lt;c&amp;d"/>'


def test_attribute_newline_escaped():
    assert escape_attribute("a\nb") == "a&#10;b"


def test_escape_text_basics():
    assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"


def test_comment_serialization():
    element = Element("a")
    element.append(Comment("note"))
    assert serialize(element) == "<a><!--note--></a>"


def test_document_serializes_children():
    doc = Document()
    doc.append(Element("a"))
    assert serialize(doc) == "<a/>"


def test_list_of_nodes():
    assert serialize([Element("a"), Element("b")]) == "<a/><b/>"


def test_pretty_indents_elements():
    doc = parse_document("<a><b><c/></b></a>")
    pretty = serialize_pretty(doc)
    assert pretty == "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n"


def test_pretty_keeps_text_inline():
    doc = parse_document("<a><b>text</b></a>")
    pretty = serialize_pretty(doc)
    assert "<b>text</b>" in pretty


def test_roundtrip_preserves_structure():
    source = '<a x="1"><b>t&amp;t</b><c y="2"/></a>'
    assert serialize(parse_document(source)) == source

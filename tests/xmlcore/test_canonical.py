"""Unit tests for canonical forms and structural equality."""

from repro.xmlcore.canonical import canonical_form, documents_equal, elements_equal
from repro.xmlcore.nodes import Element, Text
from repro.xmlcore.parser import parse_document


def test_attribute_order_irrelevant():
    a = parse_document('<a x="1" y="2"/>')
    b = parse_document('<a y="2" x="1"/>')
    assert documents_equal(a, b)


def test_child_order_matters_when_ordered():
    a = parse_document("<a><b/><c/></a>")
    b = parse_document("<a><c/><b/></a>")
    assert not documents_equal(a, b)
    assert documents_equal(a, b, ordered=False)


def test_comments_ignored():
    a = parse_document("<a><!--x--><b/></a>")
    b = parse_document("<a><b/></a>")
    assert documents_equal(a, b)


def test_whitespace_only_text_ignored():
    a = parse_document("<a>  <b/>  </a>")
    b = parse_document("<a><b/></a>")
    assert documents_equal(a, b)


def test_significant_text_compared():
    a = parse_document("<a>x</a>")
    b = parse_document("<a>y</a>")
    assert not documents_equal(a, b)


def test_adjacent_text_merges():
    a = Element("a")
    a.append(Text("x"))
    a.append(Text("y"))
    b = Element("a")
    b.append(Text("xy"))
    assert elements_equal(a, b)


def test_attribute_values_escaped_in_form():
    element = Element("a", {"x": '"&<'})
    form = canonical_form(element)
    assert "&quot;" in form and "&amp;" in form and "&lt;" in form


def test_unordered_is_deep():
    a = parse_document("<a><b><x/><y/></b><b><y/><x/></b></a>")
    form = canonical_form(a, ordered=False)
    # Both <b> subtrees canonicalize identically when unordered.
    assert form.count("<x></x><y></y>") == 2


def test_nested_difference_detected():
    a = parse_document('<a><b x="1"/></a>')
    b = parse_document('<a><b x="2"/></a>')
    assert not documents_equal(a, b, ordered=False)

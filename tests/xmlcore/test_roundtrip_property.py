"""Property-based tests: parse/serialize round-trips on random documents."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlcore.canonical import canonical_form, documents_equal
from repro.xmlcore.nodes import Document, Element, Text
from repro.xmlcore.parser import parse_document
from repro.xmlcore.serializer import serialize

names = st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True)
attr_values = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="\x00\r", min_codepoint=32
    ),
    max_size=12,
)
texts = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\x00\r", min_codepoint=32),
    min_size=1,
    max_size=12,
)


@st.composite
def elements(draw, depth=3):
    element = Element(draw(names))
    for name in draw(st.lists(names, max_size=3, unique=True)):
        element.set(name, draw(attr_values))
    if depth > 0:
        children = draw(
            st.lists(
                st.one_of(
                    elements(depth=depth - 1),
                    texts.map(Text),
                ),
                max_size=3,
            )
        )
        for child in children:
            element.append(child)
    return element


@st.composite
def documents(draw):
    doc = Document()
    doc.append(draw(elements()))
    return doc


@given(documents())
@settings(max_examples=150, deadline=None)
def test_parse_serialize_roundtrip(doc):
    text = serialize(doc)
    reparsed = parse_document(text)
    assert documents_equal(doc, reparsed)


@given(documents())
@settings(max_examples=100, deadline=None)
def test_serialize_is_deterministic(doc):
    assert serialize(doc) == serialize(doc)


@given(documents())
@settings(max_examples=100, deadline=None)
def test_canonical_form_stable_under_reparse(doc):
    reparsed = parse_document(serialize(doc))
    assert canonical_form(doc) == canonical_form(reparsed)


@given(documents())
@settings(max_examples=100, deadline=None)
def test_unordered_form_invariant_under_sibling_reversal(doc):
    reversed_doc = parse_document(serialize(doc))

    def reverse(node):
        node.children.reverse()
        for child in node.children:
            if isinstance(child, Element):
                reverse(child)

    reverse(reversed_doc)
    assert canonical_form(doc, ordered=False) == canonical_form(
        reversed_doc, ordered=False
    )

"""Unit tests for the XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmlcore.nodes import Comment, Element, Text
from repro.xmlcore.parser import parse_document, parse_fragment


def test_simple_element():
    doc = parse_document("<a/>")
    assert doc.root_element.tag == "a"
    assert doc.root_element.children == []


def test_attributes_double_and_single_quotes():
    doc = parse_document("""<a x="1" y='two'/>""")
    assert doc.root_element.attributes == {"x": "1", "y": "two"}


def test_nested_elements_and_text():
    doc = parse_document("<a><b>hi</b><c/></a>")
    root = doc.root_element
    assert [c.tag for c in root.child_elements()] == ["b", "c"]
    assert root.child_elements()[0].text_content() == "hi"


def test_predefined_entities_in_text():
    doc = parse_document("<a>&lt;&gt;&amp;&quot;&apos;</a>")
    assert doc.root_element.text_content() == "<>&\"'"


def test_numeric_character_references():
    doc = parse_document("<a>&#65;&#x42;</a>")
    assert doc.root_element.text_content() == "AB"


def test_entities_in_attributes():
    doc = parse_document('<a x="&lt;5 &amp; &#62;3"/>')
    assert doc.root_element.get("x") == "<5 & >3"


def test_cdata_section():
    doc = parse_document("<a><![CDATA[<not-a-tag> & raw]]></a>")
    assert doc.root_element.text_content() == "<not-a-tag> & raw"


def test_comment_preserved():
    doc = parse_document("<a><!-- hello --></a>")
    comment = doc.root_element.children[0]
    assert isinstance(comment, Comment)
    assert comment.value == " hello "


def test_xml_declaration_and_doctype_skipped():
    doc = parse_document('<?xml version="1.0"?><!DOCTYPE a><a/>')
    assert doc.root_element.tag == "a"


def test_processing_instruction_skipped():
    doc = parse_document("<a><?pi data?><b/></a>")
    assert [c.tag for c in doc.root_element.child_elements()] == ["b"]


def test_namespace_prefixes_literal():
    doc = parse_document('<xsl:template match="/"/>')
    assert doc.root_element.tag == "xsl:template"
    assert doc.root_element.get("match") == "/"


def test_whitespace_in_tags():
    doc = parse_document("<a  x = '1' ><b /></a >")
    assert doc.root_element.get("x") == "1"


@pytest.mark.parametrize(
    "bad",
    [
        "<a>",                       # unterminated
        "<a></b>",                   # mismatched end tag
        "<a x='1' x='2'/>",          # duplicate attribute
        "<a x=1/>",                  # unquoted attribute
        "<a/><b/>",                  # multiple roots
        "text only",                 # no root element
        "<a>&unknown;</a>",          # unknown entity
        "<a><!-- -- --></a>",        # double hyphen in comment
        "<a x='<'/>",                # '<' in attribute value
        "<a><![CDATA[open</a>",      # unterminated CDATA
        "",                          # empty input
    ],
)
def test_malformed_inputs_raise(bad):
    with pytest.raises(XMLParseError):
        parse_document(bad)


def test_error_reports_line_and_column():
    try:
        parse_document("<a>\n  <b></c>\n</a>")
    except XMLParseError as exc:
        assert exc.line == 2
        assert exc.column > 0
    else:  # pragma: no cover
        raise AssertionError("expected XMLParseError")


def test_fragment_allows_multiple_top_level_nodes():
    nodes = parse_fragment("<a/>text<b/>")
    assert len(nodes) == 3
    assert isinstance(nodes[0], Element)
    assert isinstance(nodes[1], Text)
    assert nodes[1].value == "text"
    assert nodes[0].parent is None


def test_fragment_of_templates():
    nodes = parse_fragment(
        '<xsl:template match="a"/><xsl:template match="b"/>'
    )
    assert [n.tag for n in nodes] == ["xsl:template", "xsl:template"]


def test_deeply_nested():
    depth = 200
    source = "".join(f"<n{i}>" for i in range(depth))
    source += "".join(f"</n{i}>" for i in reversed(range(depth)))
    doc = parse_document(source)
    node = doc.root_element
    count = 1
    while node.child_elements():
        node = node.child_elements()[0]
        count += 1
    assert count == depth

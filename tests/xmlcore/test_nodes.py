"""Unit tests for the XML node model."""

from repro.xmlcore.nodes import Comment, Document, Element, Text


def build_sample():
    doc = Document()
    root = doc.append(Element("metro", {"metroname": "chicago"}))
    hotel = root.append(Element("hotel", {"starrating": "5"}))
    hotel.append(Element("confroom", {"capacity": "300"}))
    hotel.append(Text("note"))
    hotel.append(Comment("ignored"))
    return doc, root, hotel


def test_append_sets_parent():
    doc, root, hotel = build_sample()
    assert root.parent is doc
    assert hotel.parent is root
    assert hotel.children[0].parent is hotel


def test_root_walks_to_document():
    doc, _root, hotel = build_sample()
    assert hotel.children[0].root() is doc


def test_ancestors_order():
    doc, root, hotel = build_sample()
    confroom = hotel.children[0]
    assert list(confroom.ancestors()) == [hotel, root, doc]


def test_incoming_path_excludes_document():
    _doc, _root, hotel = build_sample()
    confroom = hotel.children[0]
    assert confroom.incoming_path() == ["metro", "hotel", "confroom"]


def test_child_elements_skips_text_and_comments():
    _doc, _root, hotel = build_sample()
    assert [c.tag for c in hotel.child_elements()] == ["confroom"]


def test_iter_elements_preorder():
    doc, root, hotel = build_sample()
    assert [e.tag for e in doc.iter_elements()] == ["metro", "hotel", "confroom"]


def test_descendant_count_counts_all_node_kinds():
    doc, _root, _hotel = build_sample()
    # metro + hotel + confroom + text + comment
    assert doc.descendant_count() == 5


def test_remove_detaches():
    _doc, root, hotel = build_sample()
    root.remove(hotel)
    assert hotel.parent is None
    assert root.children == []


def test_document_root_element():
    doc, root, _hotel = build_sample()
    assert doc.root_element is root
    assert Document().root_element is None


def test_element_get_set():
    element = Element("a")
    assert element.get("x") is None
    assert element.get("x", "d") == "d"
    element.set("x", "1")
    assert element.get("x") == "1"


def test_text_content_concatenates_descendants():
    root = Element("a")
    root.append(Text("x"))
    child = root.append(Element("b"))
    child.append(Text("y"))
    root.append(Text("z"))
    assert root.text_content() == "xyz"


def test_find_children_and_first_child():
    root = Element("a")
    b1 = root.append(Element("b"))
    root.append(Element("c"))
    b2 = root.append(Element("b"))
    assert root.find_children("b") == [b1, b2]
    assert root.first_child("b") is b1
    assert root.first_child("missing") is None


def test_shallow_copy_detached():
    _doc, _root, hotel = build_sample()
    copy = hotel.shallow_copy()
    assert copy.tag == "hotel"
    assert copy.attributes == {"starrating": "5"}
    assert copy.children == []
    assert copy.parent is None


def test_deep_copy_recurses_and_detaches():
    _doc, root, _hotel = build_sample()
    copy = root.deep_copy()
    assert copy.parent is None
    assert copy.children[0].tag == "hotel"
    assert copy.children[0].children[0].attributes == {"capacity": "300"}
    # Mutating the copy leaves the original intact.
    copy.children[0].set("starrating", "1")
    assert root.children[0].get("starrating") == "5"

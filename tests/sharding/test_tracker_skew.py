"""Key-union poisoning under per-shard tracker skew.

Each shard runs its own :class:`WriteTracker` with a bounded key log.
Under skew, a hot shard's log gets trimmed while the others' stay
complete. The contract regression-tested here: a trimmed range must
poison the key union (``keys is None`` — forcing node-level
maintenance), never silently drop the unobserved keys and let the
delta path skip rows that actually changed.
"""

from __future__ import annotations

from repro.maintenance import WriteTracker
from repro.maintenance.workload import hotel_calendar_write, hotel_metro_write
from repro.schema_tree.evaluator import materialize
from repro.sharding import ShardRouter
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_partition_scheme,
)
from repro.workloads.paper import figure1_view
from repro.xmlcore.serializer import serialize

SEED = 2003


def test_trimmed_log_poisons_the_key_union():
    hot = WriteTracker(key_log_limit=2)
    live = WriteTracker(key_log_limit=2)
    stamp = {"hotel": 0}
    for key in (1, 2, 3, 4, 5):
        hot.record_write("hotel", keys=[key], columns=["pool"])
    live.record_write("hotel", keys=[7], columns=["pool"])
    live.record_write("hotel", keys=[8], columns=["pool"])

    skewed = hot.changes_since(stamp, ["hotel"])["hotel"]
    assert skewed.events == 5
    # Three of five events fell off the log: the union MUST poison to
    # None (any row may have changed), not narrow to {4, 5}.
    assert skewed.keys is None
    assert skewed.columns is None
    assert not skewed.traceable

    precise = live.changes_since(stamp, ["hotel"])["hotel"]
    assert precise.events == 2
    assert precise.keys == frozenset({7, 8})
    assert precise.columns == frozenset({"pool"})
    assert precise.traceable

    # Within the still-covered range the hot tracker stays precise.
    recent = hot.changes_since({"hotel": 3}, ["hotel"])["hotel"]
    assert recent.keys == frozenset({4, 5})


def test_skewed_shard_falls_back_to_node_level_and_stays_correct():
    """One shard's log is trimmed mid-stream while the other stays
    live; the fleet's merged bytes must still match the single box."""
    db = build_hotel_database(
        HotelDataSpec(metros=2, hotels_per_metro=3),
        cross_thread=True,
        seed=SEED,
    )
    view = figure1_view(db.catalog)
    domain = [
        row["metroid"]
        for row in db.run_sql(
            "SELECT metroid FROM metroarea ORDER BY metroid", {}
        )
    ]
    hotel_domain = [
        row["hotelid"]
        for row in db.run_sql(
            "SELECT hotelid FROM hotel WHERE starrating > 4 "
            "ORDER BY hotelid",
            {},
        )
    ]
    # Shard 0's tracker can observe only the last event of a burst;
    # shard 1's log is ample.
    trackers = [WriteTracker(key_log_limit=1), WriteTracker()]
    router = ShardRouter.build(
        db.catalog,
        db,
        hotel_partition_scheme(),
        2,
        trackers=trackers,
        workers=1,
        staleness="strict",
        maintenance="delta",
    )
    try:
        warm = router.render(view, strategy="bulk")
        assert warm.xml == serialize(materialize(view, db))
        # A burst of row-traceable availability writes against metro 1
        # (shard 0): each event records precise keys, but the one-event
        # log forgets all but the last.
        for step in range(3):
            router.route_write(
                lambda source, tracker: hotel_metro_write(
                    source, 0, tracker=tracker, domain=domain
                )
            )
            hotel_metro_write(db, 0)
            router.route_write(
                lambda source, tracker: hotel_calendar_write(
                    source, step, tracker=tracker, domain=hotel_domain
                )
            )
            hotel_calendar_write(db, step)
        # Shard 0 saw > 1 events on availability+hotel: its union is
        # poisoned and the delta path must go node-level — but the
        # bytes must still be exact.
        trace = router.render(view, strategy="bulk")
        assert trace.outcome == "success"
        assert trace.xml == serialize(materialize(view, db))
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()

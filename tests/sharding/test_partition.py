"""Key derivation, key-range partitioning, and database dealing."""

from __future__ import annotations

import pytest

from repro.sharding import (
    KeyRange,
    KeyRangePartitioner,
    PartitionScheme,
    ShardingError,
    derive_partition_column,
    derive_partition_node,
    partition_database,
    partition_keys,
)
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_partition_scheme,
)
from repro.workloads.synthetic import (
    chain_catalog,
    fanout_catalog,
    fanout_view,
)
from repro.schema_tree.builder import ViewBuilder

SEED = 2003


# -- derivation --------------------------------------------------------------


def test_figure1_partitions_by_metro(catalog, paper_view):
    node = derive_partition_node(paper_view)
    assert node.tag == "metro"
    assert derive_partition_column(paper_view, catalog) == (
        "metroarea",
        "metroid",
    )


def test_composed_view_partitions_by_metro(catalog, paper_view):
    """Composition concentrates reads into the top node's predicate
    subqueries; derivation must keep following the FROM clause."""
    from repro.core.compose import compose
    from repro.core.optimize import prune_stylesheet_view
    from repro.workloads.paper import figure4_stylesheet

    composed = compose(paper_view, figure4_stylesheet(), catalog)
    prune_stylesheet_view(composed, catalog)
    assert derive_partition_column(composed, catalog) == (
        "metroarea",
        "metroid",
    )


def test_fanout_view_partitions_by_root_table():
    catalog = fanout_catalog(3)
    view = fanout_view(3, catalog)
    assert derive_partition_column(view, catalog) == ("root_t", "id")


def test_sibling_query_node_outside_subtree_is_rejected():
    builder = ViewBuilder(chain_catalog(2))
    builder.node("a", "SELECT * FROM t1", bv="x")
    builder.node("b", "SELECT * FROM t2", bv="y")
    with pytest.raises(ShardingError, match="outside the partition subtree"):
        derive_partition_node(builder.build())


# -- the key-range partitioner ----------------------------------------------


def test_from_keys_splits_evenly_and_in_order():
    part = KeyRangePartitioner.from_keys([6, 1, 3, 2, 5, 4], 2)
    assert part.describe() == "[1,3] [4,6]"
    assert [part.shard_of(k) for k in (1, 3, 4, 6)] == [0, 0, 1, 1]


def test_shard_of_clamps_and_routes_gaps_deterministically():
    part = KeyRangePartitioner.from_keys([1, 2, 10, 20], 2)
    assert part.describe() == "[1,2] [10,20]"
    # Below, between, and above the ranges: nearest range whose upper
    # bound is not below the key, clamped at the last shard.
    assert part.shard_of(0) == 0
    assert part.shard_of(5) == 1
    assert part.shard_of(99) == 1


@pytest.mark.parametrize(
    "keys,shards,message",
    [
        ([1, 2], 3, "cannot split"),
        ([], 1, "no partition keys"),
        ([1], 0, "shard count"),
    ],
)
def test_from_keys_rejects_bad_domains(keys, shards, message):
    with pytest.raises(ShardingError, match=message):
        KeyRangePartitioner.from_keys(keys, shards)


def test_overlapping_ranges_are_rejected():
    with pytest.raises(ShardingError, match="overlap"):
        KeyRangePartitioner([KeyRange(1, 5), KeyRange(4, 9)])


# -- the scheme --------------------------------------------------------------


def test_hotel_scheme_covers_the_catalog(catalog):
    hotel_partition_scheme().validate(catalog)


def test_scheme_missing_a_table_is_rejected(catalog):
    scheme = hotel_partition_scheme()
    queries = dict(scheme.key_queries)
    queries.pop("availability")
    broken = PartitionScheme(scheme.table, scheme.column, queries)
    with pytest.raises(ShardingError, match="missing \\['availability'\\]"):
        broken.validate(catalog)


def test_replicated_partition_table_is_rejected(catalog):
    scheme = hotel_partition_scheme()
    queries = dict(scheme.key_queries)
    queries["metroarea"] = None
    broken = PartitionScheme(scheme.table, scheme.column, queries)
    with pytest.raises(ShardingError, match="cannot be replicated"):
        broken.validate(catalog)


# -- dealing rows ------------------------------------------------------------


def _counts(db, table):
    return db.run_sql(f"SELECT COUNT(*) AS n FROM {table}", {})[0]["n"]


def test_partition_database_is_disjoint_and_complete():
    db = build_hotel_database(
        HotelDataSpec(metros=4, hotels_per_metro=3), seed=SEED
    )
    scheme = hotel_partition_scheme()
    keys = partition_keys(db, scheme)
    assert keys == [1, 2, 3, 4]
    part = KeyRangePartitioner.from_keys(keys, 2)
    shards = partition_database(db, scheme, part)
    try:
        # Routed tables: the shards partition the source exactly.
        for table in ("metroarea", "hotel", "guestroom", "confroom",
                      "availability"):
            assert sum(_counts(s, table) for s in shards) == _counts(
                db, table
            )
        # Each shard holds exactly its own key slice, in source order.
        for index, shard in enumerate(shards):
            metros = [
                row["metroid"]
                for row in shard.run_sql(
                    "SELECT metroid FROM metroarea", {}
                )
            ]
            assert metros == sorted(metros)
            assert all(part.shard_of(m) == index for m in metros)
            # Transitivity: every hotel's metro is owned by this shard.
            foreign = shard.run_sql(
                "SELECT COUNT(*) AS n FROM hotel WHERE metro_id NOT IN "
                "(SELECT metroid FROM metroarea)",
                {},
            )[0]["n"]
            assert foreign == 0
        # Replicated tables are copied to every shard verbatim.
        for shard in shards:
            assert _counts(shard, "hotelchain") == _counts(db, "hotelchain")
    finally:
        for shard in shards:
            shard.close()
        db.close()


def test_orphan_rows_are_dropped_not_guessed():
    db = build_hotel_database(
        HotelDataSpec(metros=2, hotels_per_metro=2), seed=SEED
    )
    db.insert_rows(
        "guestroom",
        [{"r_id": 99_999, "rhotel_id": 77_777, "roomnumber": 1,
          "type": "single", "rackrate": 1.0}],
    )
    scheme = hotel_partition_scheme()
    part = KeyRangePartitioner.from_keys(partition_keys(db, scheme), 2)
    shards = partition_database(db, scheme, part)
    try:
        assert sum(_counts(s, "guestroom") for s in shards) == (
            _counts(db, "guestroom") - 1
        )
        for shard in shards:
            rows = shard.run_sql(
                "SELECT COUNT(*) AS n FROM guestroom WHERE r_id = 99999", {}
            )[0]["n"]
            assert rows == 0
    finally:
        for shard in shards:
            shard.close()
        db.close()

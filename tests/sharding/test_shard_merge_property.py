"""Merge-equivalence differential suite.

The contract under test: for ANY write sequence, shard count, serving
strategy, and maintenance mode, the sharded fleet's merged response is
byte-identical to a single box's full serialization of the same data.
Writes are routed to the fleet through :meth:`ShardRouter.route_write`
and mirrored onto an unpartitioned reference database; the global
window domains are captured from the reference so both sides target the
same rows (the shard-local no-op path is exercised whenever a shard
owns none of a write's targets).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.maintenance.workload import (
    hotel_calendar_write,
    hotel_metro_write,
    hotel_write,
)
from repro.schema_tree.evaluator import STRATEGIES, materialize
from repro.serving import PublishRequest
from repro.sharding import ShardRouter
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_partition_scheme,
)
from repro.workloads.paper import figure1_view
from repro.xmlcore.serializer import serialize

SEED = 2003
SPEC = HotelDataSpec(
    metros=4,
    hotels_per_metro=2,
    guestrooms_per_hotel=2,
    availability_per_room=2,
)

write_steps = st.lists(
    st.tuples(
        st.sampled_from(["mix", "metro", "calendar"]), st.integers(0, 7)
    ),
    min_size=0,
    max_size=4,
)


def _apply(kind, step, router, db, metro_domain, hotel_domain):
    """One write, routed to every shard and mirrored on the reference."""
    if kind == "mix":
        router.route_write(
            lambda source, tracker: hotel_write(source, step, tracker=tracker)
        )
        hotel_write(db, step)
    elif kind == "metro":
        router.route_write(
            lambda source, tracker: hotel_metro_write(
                source, step, tracker=tracker, domain=metro_domain
            )
        )
        hotel_metro_write(db, step)
    else:
        router.route_write(
            lambda source, tracker: hotel_calendar_write(
                source, step, tracker=tracker, domain=hotel_domain
            )
        )
        hotel_calendar_write(db, step)


@settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    shards=st.integers(1, 4),
    maintenance=st.sampled_from(["full", "delta", "fragment"]),
    strategy=st.sampled_from(STRATEGIES),
    writes=write_steps,
)
def test_sharded_bytes_equal_single_box(shards, maintenance, strategy, writes):
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    metro_domain = [
        row["metroid"]
        for row in db.run_sql(
            "SELECT metroid FROM metroarea ORDER BY metroid", {}
        )
    ]
    hotel_domain = [
        row["hotelid"]
        for row in db.run_sql(
            "SELECT hotelid FROM hotel WHERE starrating > 4 "
            "ORDER BY hotelid",
            {},
        )
    ]
    router = ShardRouter.build(
        db.catalog,
        db,
        hotel_partition_scheme(),
        shards,
        workers=1,
        staleness="strict",
        maintenance=maintenance,
    )
    try:
        request = PublishRequest(view, strategy=strategy)
        # Prime every shard's caches, then check the cold response too.
        warm = router.render(request.view, strategy=strategy)
        assert warm.xml == serialize(materialize(view, db))
        for kind, step in writes:
            _apply(kind, step, router, db, metro_domain, hotel_domain)
            trace = router.render(request.view, strategy=strategy)
            assert trace.outcome == "success"
            assert trace.xml == serialize(materialize(view, db))
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()

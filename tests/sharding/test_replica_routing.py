"""Lag-aware replica routing: strict pinning, bounded admission,
fleet-fault skips, and hedge anti-affinity placement.

Fleets here carry real replica lag (``replica_lag_ms``) and fleet-scoped
fault windows (``FleetFaultPlan``), exercising the candidate gate that
the per-shard failover tests in test_router_faults.py do not reach.
"""

from __future__ import annotations

from repro.maintenance.workload import hotel_metro_write
from repro.resilience import FaultPlan, FaultSpec, FleetFaultPlan
from repro.schema_tree.evaluator import materialize
from repro.serving import PublishRequest
from repro.sharding import PlacementGroup, ShardRouter
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_partition_scheme,
)
from repro.workloads.paper import figure1_view
from repro.xmlcore.serializer import serialize

SEED = 2003
SPEC = HotelDataSpec(metros=4, hotels_per_metro=2)


def _fleet(db, *, shards=2, replicas=1, staleness="strict",
           fleet_faults=None, replica_lag_ms=0.0):
    return ShardRouter.build(
        db.catalog,
        db,
        hotel_partition_scheme(),
        shards,
        replicas=replicas,
        workers=1,
        staleness=staleness,
        fleet_faults=fleet_faults,
        replica_lag_ms=replica_lag_ms,
    )


def _metro_domain(db):
    return [
        row["metroid"]
        for row in db.run_sql(
            "SELECT metroid FROM metroarea ORDER BY metroid", {}
        )
    ]


def _mirrored_write(router, db, step, domain):
    router.route_write(
        lambda source, tracker: hotel_metro_write(
            source, step, tracker=tracker, domain=domain
        )
    )
    hotel_metro_write(db, step, domain=domain)


def test_strict_routing_pins_to_caught_up_members():
    """With replicas held back by a huge apply delay, strict reads must
    land on the primary and serve fresh bytes — never a lagging member."""
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    domain = _metro_domain(db)
    router = _fleet(db, replicas=1, replica_lag_ms=120_000.0)
    try:
        # One write per metro, so every shard's replica falls behind.
        for step in range(SPEC.metros):
            _mirrored_write(router, db, step, domain)
        reference = serialize(materialize(view, db))
        for _ in range(4):
            trace = router.render(view, strategy="bulk", bypass_cache=True)
            assert trace.outcome == "success"
            assert trace.xml == reference
            assert trace.version_lag == 0
            for shard in trace.shards:
                assert shard["server"] == "primary"
                assert shard["lag"] == 0
        fleet = router.fleet_metrics()
        assert fleet["skips"]["lagging"] >= 1
        assert fleet["stale_serves"] == 0
        assert fleet["max_member_lag_served"] == 0
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()


def test_bounded_budget_admits_lagging_replicas_within_it():
    """Partition the primaries so only the (lagging) replicas can serve
    reads: the bounded budget admits them, strict would refuse."""
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    domain = _metro_domain(db)
    plan = FleetFaultPlan.for_kind("partition", rate=1.0, seed=21)
    plan.disarm()
    router = _fleet(
        db, replicas=1, staleness="bounded:16",
        fleet_faults=plan, replica_lag_ms=120_000.0,
    )
    try:
        for step in range(SPEC.metros):
            _mirrored_write(router, db, step, domain)
        plan.arm()
        for _ in range(4):
            trace = router.render(view, strategy="bulk", bypass_cache=True)
            assert trace.outcome in ("success", "degraded")
            for shard in trace.shards:
                assert shard["server"] == "replica-1"
        fleet = router.fleet_metrics()
        # The lagging replicas served...
        assert fleet["max_member_lag_served"] >= 1
        # ...but never past the version budget, and none were skipped.
        assert fleet["max_member_lag_served"] <= 16
        assert fleet["lag_budget"] == 16
        assert fleet["skips"]["lagging"] == 0
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()


def test_crash_windows_route_around_replicas_without_failing_requests():
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    plan = FleetFaultPlan.for_kind("replica-crash", rate=1.0, seed=21)
    router = _fleet(db, replicas=2, fleet_faults=plan)
    try:
        for _ in range(6):
            trace = router.render(view, strategy="bulk", bypass_cache=True)
            assert trace.outcome == "success"
            for shard in trace.shards:
                assert shard["server"] == "primary"
        fleet = router.fleet_metrics()
        assert fleet["skips"]["crash"] >= 1
        assert fleet["no_candidates"] == 0
        assert sum(fleet["fleet_faults"]["injected"].values()) >= 1
        assert router.metrics()["errors"] == 0
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()


def test_partition_skips_primary_reads_but_writes_still_land():
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    domain = _metro_domain(db)
    plan = FleetFaultPlan.for_kind("partition", rate=1.0, seed=21)
    plan.disarm()
    router = _fleet(db, replicas=1, fleet_faults=plan)
    try:
        # Writes land and (zero-delay) appliers mirror them before the
        # partition arms, so the replicas can serve fresh bytes alone.
        for step in range(2):
            _mirrored_write(router, db, step, domain)
        reference = serialize(materialize(view, db))
        plan.arm()
        for _ in range(4):
            trace = router.render(view, strategy="bulk", bypass_cache=True)
            assert trace.outcome == "success"
            assert trace.xml == reference
            for shard in trace.shards:
                assert shard["server"] == "replica-1"
        # The write path ignores read partitions: another write lands
        # on the partitioned primaries and replicates out.
        _mirrored_write(router, db, 2, domain)
        reference = serialize(materialize(view, db))
        trace = router.render(view, strategy="bulk", bypass_cache=True)
        assert trace.outcome == "success"
        assert trace.xml == reference
        fleet = router.fleet_metrics()
        assert fleet["skips"]["partition"] >= 1
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()


def test_failover_claims_the_member_actually_served():
    """Regression: placement claims are recorded per *attempted* member
    at dispatch time, not for the predicted first candidate — after a
    failover both the failed primary and the serving replica are
    claimed, so a later attempt in the same group avoids them both."""
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    faults = [FaultPlan(FaultSpec(every_n=1), seed=0)]
    router = ShardRouter.build(
        db.catalog, db, hotel_partition_scheme(), 1,
        replicas=2, workers=1, faults=faults,
    )
    try:
        group = PlacementGroup()
        trace, = router.render_many([
            PublishRequest(
                view, strategy="bulk", bypass_cache=True, placement=group
            )
        ])
        assert trace.outcome == "success"
        served = trace.shards[0]["server"]
        assert served != "primary"  # the faulted primary failed over
        assert trace.failovers >= 1
        assert group.claimed(0) >= {"primary", served}
        trace2, = router.render_many([
            PublishRequest(
                view, strategy="bulk", bypass_cache=True, placement=group
            )
        ])
        assert trace2.outcome == "success"
        assert trace2.shards[0]["server"] not in ("primary", served)
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()


def test_unattempted_dead_member_keeps_its_probe_slot():
    """Regression: enumerating a probe-eligible dead replica must not
    consume its half-open slot. Dead members sort behind the healthy
    front, so the granted probe was typically never dispatched — and
    since only an attempt's outcome releases the slot, one death locked
    the member out of readmission forever. The slot is now taken at
    dispatch time, so an unattempted candidate leaks nothing and the
    probe genuinely fires once the member is actually needed."""
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    router = _fleet(db, shards=1, replicas=1)
    try:
        primary, replica = router.shards[0].members
        for _ in range(replica.health.dead_after):
            replica.health.record_failure()
        assert replica.health.state() == "dead"
        replica.health.cooldown_ms = 0.0  # probe-eligible immediately
        for _ in range(4):
            trace = router.render(view, strategy="bulk", bypass_cache=True)
            assert trace.outcome == "success"
            assert trace.shards[0]["server"] == "primary"
        stats = replica.health.stats()
        assert stats["state"] == "dead"
        assert stats["probes_fired"] == 0  # enumerated, never granted
        assert stats["probe_denials"] == 0
        assert replica.health.probe_ready()  # the slot did not leak
        # Take the primary out (fresh death, huge cooldown keeps it out)
        # and the replica's probe must actually fire, win, and readmit.
        primary.health.cooldown_ms = 600_000.0
        for _ in range(primary.health.dead_after):
            primary.health.record_failure()
        assert primary.health.state() == "dead"
        trace = router.render(view, strategy="bulk", bypass_cache=True)
        assert trace.outcome == "success"
        assert trace.shards[0]["server"] == "replica-1"
        stats = replica.health.stats()
        assert stats["state"] == "healthy"
        assert stats["probes_fired"] == 1
        assert stats["readmissions"] == 1
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()


def test_lag_skipped_dead_member_does_not_burn_its_probe():
    """Regression: the lag-budget gate runs before the probe check, so
    a dead replica that is also lagging past the strict budget is
    lag-skipped without its probe slot ever being granted — once the
    applier catches up it is still probe-eligible."""
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    domain = _metro_domain(db)
    router = _fleet(db, replicas=1, replica_lag_ms=120_000.0)
    try:
        # One write per metro: every shard's replica falls behind.
        for step in range(SPEC.metros):
            _mirrored_write(router, db, step, domain)
        replica = router.shards[0].members[1]
        for _ in range(replica.health.dead_after):
            replica.health.record_failure()
        replica.health.cooldown_ms = 0.0  # past cooldown, but lagging
        for _ in range(3):
            trace = router.render(view, strategy="bulk", bypass_cache=True)
            assert trace.outcome == "success"
        stats = replica.health.stats()
        assert stats["probes_fired"] == 0
        assert stats["probe_denials"] == 0
        assert replica.health.probe_ready()
        fleet = router.fleet_metrics()
        assert fleet["skips"]["lagging"] >= 1
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()


def test_placement_group_spreads_hedge_attempts_across_members():
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    router = _fleet(db, shards=1, replicas=2)
    try:
        group = PlacementGroup()
        servers = []
        for _ in range(3):
            trace, = router.render_many([
                PublishRequest(
                    view, strategy="bulk", bypass_cache=True,
                    placement=group,
                )
            ])
            assert trace.outcome == "success"
            servers.append(trace.shards[0]["server"])
        # Three attempts sharing a group land on three distinct members.
        assert len(set(servers)) == 3
        assert group.claimed(0) == frozenset(servers)
        fleet = router.fleet_metrics()
        assert fleet["anti_affinity"]["hits"] == 2
        assert fleet["anti_affinity"]["misses"] == 0
        assert fleet["anti_affinity"]["rate"] == 1.0
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()

"""The spine merge: order, non-mutation, empty runs, rejections."""

from __future__ import annotations

import pytest

from repro.schema_tree.evaluator import materialize
from repro.sharding import (
    KeyRange,
    KeyRangePartitioner,
    ShardMergeUnsupported,
    merge_documents,
    partition_database,
    partition_keys,
    plan_merge,
)
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_partition_scheme,
)
from repro.xmlcore.nodes import Document, Element
from repro.xmlcore.serializer import serialize

SEED = 2003


def _sharded_documents(db, view, partitioner):
    shards = partition_database(db, hotel_partition_scheme(), partitioner)
    try:
        return [materialize(view, shard) for shard in shards]
    finally:
        for shard in shards:
            shard.close()


def test_figure1_plan_has_empty_spine(paper_view):
    plan = plan_merge(paper_view)
    assert plan.partition.tag == "metro"
    assert plan.spine_tags == []


def test_merge_preserves_global_document_order(paper_view):
    db = build_hotel_database(
        HotelDataSpec(metros=4, hotels_per_metro=3), seed=SEED
    )
    try:
        plan = plan_merge(paper_view)
        partitioner = KeyRangePartitioner.from_keys(
            partition_keys(db, hotel_partition_scheme()), 2
        )
        documents = _sharded_documents(db, paper_view, partitioner)
        merged = merge_documents(plan, documents)
        assert serialize(merged) == serialize(materialize(paper_view, db))
    finally:
        db.close()


def test_merge_does_not_mutate_shard_documents(paper_view):
    """Shard documents live inside result caches; the merge must share
    their nodes without re-parenting or reordering anything."""
    db = build_hotel_database(
        HotelDataSpec(metros=3, hotels_per_metro=2), seed=SEED
    )
    try:
        plan = plan_merge(paper_view)
        partitioner = KeyRangePartitioner.from_keys(
            partition_keys(db, hotel_partition_scheme()), 3
        )
        documents = _sharded_documents(db, paper_view, partitioner)
        before = [serialize(doc) for doc in documents]
        parents = [
            [child.parent for child in doc.children] for doc in documents
        ]
        merge_documents(plan, documents)
        assert [serialize(doc) for doc in documents] == before
        assert [
            [child.parent for child in doc.children] for doc in documents
        ] == parents
    finally:
        db.close()


def test_empty_shard_slice_merges_cleanly(paper_view):
    """A shard owning a key range with no rows contributes an empty
    partition run, not a hole or a crash."""
    db = build_hotel_database(
        HotelDataSpec(metros=2, hotels_per_metro=2), seed=SEED
    )
    try:
        plan = plan_merge(paper_view)
        # Metros present: 1, 2. The third range is an empty slice.
        partitioner = KeyRangePartitioner(
            [KeyRange(1, 1), KeyRange(2, 2), KeyRange(3, 3)]
        )
        documents = _sharded_documents(db, paper_view, partitioner)
        assert len(documents[2].children) == 0
        merged = merge_documents(plan, documents)
        assert serialize(merged) == serialize(materialize(paper_view, db))
    finally:
        db.close()


def test_single_document_passes_through(paper_view):
    db = build_hotel_database(
        HotelDataSpec(metros=2, hotels_per_metro=2), seed=SEED
    )
    try:
        plan = plan_merge(paper_view)
        document = materialize(paper_view, db)
        assert merge_documents(plan, [document]) is document
    finally:
        db.close()


def test_no_documents_is_rejected(paper_view):
    with pytest.raises(ShardMergeUnsupported, match="no shard documents"):
        merge_documents(plan_merge(paper_view), [])


def test_non_contiguous_partition_run_is_rejected(paper_view):
    plan = plan_merge(paper_view)
    broken = Document()
    broken.append(Element("metro", {"metroid": "1"}))
    broken.append(Element("stray"))
    broken.append(Element("metro", {"metroid": "2"}))
    other = Document()
    other.append(Element("metro", {"metroid": "3"}))
    with pytest.raises(ShardMergeUnsupported, match="not contiguous"):
        merge_documents(plan, [broken, other])

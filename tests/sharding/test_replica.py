"""Replica primitives: health machine, catch-up applier, placement.

The health machine is driven with an injected clock so cooldown and
half-open probing are tested without sleeping; the applier tests use a
large delay to freeze events in the "pending" state deterministically.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import RequestCancelled, RequestRejected
from repro.maintenance import WriteTracker
from repro.resilience import FleetFaultPlan, FleetFaultSpec
from repro.sharding import PlacementGroup, ReplicaApplier, ReplicaHealth


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# ReplicaHealth
# ---------------------------------------------------------------------------


def test_failures_walk_healthy_suspect_dead():
    health = ReplicaHealth(suspect_after=2, dead_after=4)
    assert health.state() == "healthy"
    health.record_failure()
    assert health.state() == "healthy"
    health.record_failure()
    assert health.state() == "suspect"
    health.record_failure()
    health.record_failure()
    assert health.state() == "dead"
    assert health.stats()["deaths"] == 1


def test_one_success_resets_the_streak():
    health = ReplicaHealth(suspect_after=2, dead_after=4)
    health.record_failure()
    health.record_failure()
    assert health.state() == "suspect"
    health.record_success(1.0)
    assert health.state() == "healthy"
    assert health.stats()["consecutive_failures"] == 0


def test_dead_member_refuses_until_cooldown_then_probes():
    clock = FakeClock()
    health = ReplicaHealth(
        suspect_after=1, dead_after=2, cooldown_ms=500.0, probe_max=1,
        clock=clock,
    )
    health.record_failure()
    health.record_failure()
    assert health.state() == "dead"
    assert not health.admit()  # cooling down
    clock.advance(0.6)
    assert health.admit()  # the half-open probe slot
    assert not health.admit()  # probe_max=1: second trial denied
    assert health.stats()["probe_denials"] == 1
    health.record_success(2.0)
    assert health.state() == "healthy"
    assert health.stats()["readmissions"] == 1
    assert health.admit()


def test_probe_ready_is_read_only():
    """Regression: enumeration-time eligibility checks must not consume
    the probe slot — only a dispatch-time admit() may, since only an
    actual attempt's outcome releases it."""
    clock = FakeClock()
    health = ReplicaHealth(
        suspect_after=1, dead_after=2, cooldown_ms=500.0, probe_max=1,
        clock=clock,
    )
    assert health.probe_ready()  # healthy: always
    health.record_failure()
    health.record_failure()
    assert health.state() == "dead"
    assert not health.probe_ready()  # cooling down
    clock.advance(0.6)
    for _ in range(5):
        assert health.probe_ready()  # repeated checks grant nothing
    assert health.stats()["probes_fired"] == 0
    assert health.stats()["probe_denials"] == 0
    assert health.admit()  # the one real grant
    assert not health.probe_ready()  # slot held by the trial
    health.record_success(2.0)
    assert health.probe_ready()  # released by the outcome


def test_failed_probe_restarts_the_cooldown():
    clock = FakeClock()
    health = ReplicaHealth(
        suspect_after=1, dead_after=1, cooldown_ms=500.0, clock=clock
    )
    health.record_failure()
    assert health.state() == "dead"
    clock.advance(0.6)
    assert health.admit()
    health.record_failure()  # the trial failed
    assert health.state() == "dead"
    assert not health.admit()  # cooldown restarted at the failure
    clock.advance(0.6)
    assert health.admit()


def test_cancelled_and_rejected_outcomes_are_not_health_signals():
    health = ReplicaHealth(suspect_after=1, dead_after=2)
    health.record_failure(RequestCancelled("hedge race lost"))
    health.record_failure(RequestRejected("queue full"))
    assert health.state() == "healthy"
    assert health.stats()["ignored_failures"] == 2
    assert health.stats()["failures"] == 0


def test_lag_overlay_reports_lagging_without_touching_the_machine():
    health = ReplicaHealth()
    health.observe_lag(5)
    assert health.state() == "healthy"
    assert health.effective_state(lag_budget=3) == "lagging"
    assert health.effective_state(lag_budget=5) == "healthy"
    assert health.effective_state(lag_budget=None) == "healthy"
    assert health.stats()["max_lag"] == 5
    health.observe_lag(0)
    assert health.effective_state(lag_budget=3) == "healthy"
    assert health.stats()["max_lag"] == 5  # watermark survives


def test_health_validates_thresholds():
    with pytest.raises(ValueError):
        ReplicaHealth(suspect_after=3, dead_after=2)
    with pytest.raises(ValueError):
        ReplicaHealth(probe_max=0)


# ---------------------------------------------------------------------------
# ReplicaApplier
# ---------------------------------------------------------------------------


def test_zero_delay_applies_synchronously_inside_the_write():
    primary = WriteTracker()
    replica = WriteTracker()
    applier = ReplicaApplier(primary, replica, delay_ms=0.0)
    try:
        primary.record_write("hotel", keys=[1], columns=["name"])
        # No sleeping, no polling: the subscriber applied it inline.
        assert replica.version("hotel") == 1
        assert applier.lag() == 0
        assert applier.applied == 1
    finally:
        applier.close()


def test_replica_lags_while_events_are_not_yet_due():
    """The satellite regression: before split lineage, replica reads
    shared the primary's tracker and lag was 0 by construction. With a
    real apply delay, an unapplied write must show as nonzero lag on
    the replica's own clock."""
    primary = WriteTracker()
    replica = WriteTracker()
    applier = ReplicaApplier(primary, replica, delay_ms=60_000.0)
    try:
        primary.record_write("hotel")
        primary.record_write("availability")
        assert primary.clock() == 2
        assert replica.clock() == 0  # split lineage: nothing applied
        assert applier.lag() == 2
        assert applier.apply_pending() == 0  # held back by the delay
    finally:
        applier.close()


def test_delayed_events_apply_once_due():
    primary = WriteTracker()
    replica = WriteTracker()
    applier = ReplicaApplier(primary, replica, delay_ms=30.0, poll_ms=5.0)
    try:
        primary.record_write("hotel", keys=[9], columns=["pool"])
        assert applier.lag() == 1
        deadline = time.monotonic() + 5.0
        while applier.lag() > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert applier.lag() == 0
        assert replica.version("hotel") == 1
    finally:
        applier.close()


def test_not_due_event_blocks_its_tables_later_events():
    """Per-table version order: an old-but-due event must not be
    overtaken by a newer not-yet-due one."""
    primary = WriteTracker()
    replica = WriteTracker()
    applier = ReplicaApplier(primary, replica, delay_ms=50.0)
    try:
        primary.record_write("hotel")
        time.sleep(0.08)  # first event becomes due, second will not be
        primary.record_write("hotel")
        applier.apply_pending()
        assert replica.version("hotel") == 1
        assert applier.lag() == 1
    finally:
        applier.close()


def test_apply_stall_fault_freezes_catch_up():
    plan = FleetFaultPlan(FleetFaultSpec(stall_rate=1.0, window=4), seed=0)
    primary = WriteTracker()
    replica = WriteTracker()
    applier = ReplicaApplier(
        primary, replica, delay_ms=0.0, faults=plan, shard=0,
        member="replica-1",
    )
    try:
        primary.record_write("hotel")
        assert applier.lag() == 1  # the inline apply hit the stall
        assert applier.stalled_checks >= 1
        plan.disarm()
        assert applier.apply_pending() == 1
        assert applier.lag() == 0
    finally:
        applier.close()


def test_applier_rejects_negative_delay():
    with pytest.raises(ValueError):
        ReplicaApplier(WriteTracker(), WriteTracker(), delay_ms=-1.0)


# ---------------------------------------------------------------------------
# PlacementGroup
# ---------------------------------------------------------------------------


def test_placement_claims_are_per_shard():
    group = PlacementGroup()
    assert group.claimed(0) == frozenset()
    group.claim(0, "primary")
    group.claim(0, "replica-1")
    group.claim(1, "primary")
    assert group.claimed(0) == frozenset({"primary", "replica-1"})
    assert group.claimed(1) == frozenset({"primary"})
    assert group.attempts(0) == 2
    assert group.attempts(1) == 1
    assert group.attempts(2) == 0

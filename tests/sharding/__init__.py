"""Sharded serving fleet: partitioning, spine merge, router, skew."""

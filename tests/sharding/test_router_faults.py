"""Router failover: replica takeover, error propagation, degraded-stale.

Faults are injected with :mod:`repro.resilience.faults` at one shard's
primary (the router arms fault plans on primaries only), simulating
that shard's pool dying mid-request. The contracts: reads fail over to
replicas transparently; with no replica a strict fleet reports the
error rather than serving wrong bytes; a lag-tolerant fleet degrades to
the shard's last-known-good slice; and no configuration leaks pool
connections.
"""

from __future__ import annotations

from repro.maintenance.workload import hotel_metro_write
from repro.resilience import FaultPlan, FaultSpec, ResiliencePolicy
from repro.schema_tree.evaluator import materialize
from repro.sharding import ShardRouter
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_partition_scheme,
)
from repro.workloads.paper import figure1_view
from repro.xmlcore.serializer import serialize

SEED = 2003
SPEC = HotelDataSpec(metros=4, hotels_per_metro=2)


def _fleet(db, *, replicas=0, staleness="strict", resilience=None,
           faults=None):
    return ShardRouter.build(
        db.catalog,
        db,
        hotel_partition_scheme(),
        2,
        replicas=replicas,
        workers=1,
        staleness=staleness,
        resilience=resilience,
        faults=faults,
    )


def test_dead_primary_fails_over_to_replica():
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    faults = [FaultPlan(FaultSpec(every_n=1), seed=0), None]
    router = _fleet(db, replicas=1, faults=faults)
    try:
        reference = serialize(materialize(view, db))
        for _ in range(4):
            # bypass_cache forces real queries each time, so requests
            # routed to the dead primary must fail over to the replica.
            trace = router.render(view, bypass_cache=True)
            assert trace.outcome == "success"
            assert trace.error is None
            assert trace.xml == reference
        metrics = router.metrics()
        assert metrics["failovers"] >= 1
        assert metrics["outcomes"]["success"] == 4
        assert metrics["errors"] == 0
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()


def test_dead_shard_without_replica_is_an_error_under_strict():
    """Strict staleness + no replica: the fleet must report the failure,
    never serve a document missing the dead shard's slice."""
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    faults = [FaultPlan(FaultSpec(every_n=1), seed=0), None]
    router = _fleet(db, faults=faults)
    try:
        trace = router.render(view)
        assert trace.outcome == "error"
        assert trace.error is not None
        assert trace.xml is None
        metrics = router.metrics()
        assert metrics["errors"] == 1
        assert metrics["failovers"] == 0
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()


def test_dead_shard_degrades_to_stale_slice_when_lag_tolerant():
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    domain = [
        row["metroid"]
        for row in db.run_sql(
            "SELECT metroid FROM metroarea ORDER BY metroid", {}
        )
    ]
    faults = [FaultPlan(FaultSpec(every_n=1), seed=0, enabled=False), None]
    policy = ResiliencePolicy(retries=0)
    router = _fleet(
        db, staleness="bounded:1", resilience=policy, faults=faults
    )
    try:
        warm = router.render(view)
        assert warm.outcome == "success"
        # Two writes against shard 0's metros: its entry goes stale past
        # the bound, while shard 1's tracker never advances (the
        # shard-local no-op path).
        for step in (0, 1):
            router.route_write(
                lambda source, tracker: hotel_metro_write(
                    source, step, tracker=tracker, domain=domain
                )
            )
        faults[0].arm()
        trace = router.render(view)
        assert trace.outcome == "degraded"
        assert trace.error is None
        assert trace.version_lag >= 2
        # Shard 0 serves its last-known-good slice; shard 1 its live
        # (unchanged) one — together the warm bytes, verbatim.
        assert trace.xml == warm.xml
        shard_freshness = {s["shard"]: s["freshness"] for s in trace.shards}
        assert shard_freshness[0] == "degraded-stale"
        metrics = router.aggregate_metrics()
        assert metrics["resilience"]["degraded_serves"] >= 1
        assert metrics["router"]["outcomes"]["degraded"] == 1
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()

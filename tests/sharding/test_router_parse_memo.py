"""The router's parsed-fragment memo: unchanged slices parse once.

Under ``maintenance="full"`` a shard that serves result-cache hits
returns bytes with no captured document, so the merge path must parse
them back. The memo guarantees the parse happens once per distinct
byte string, not once per merge — without it, every write to one shard
makes the router re-parse every *other* shard's unchanged slice, which
at scale costs more than the recompute the scatter avoided.
"""

from __future__ import annotations

from repro.maintenance.workload import hotel_calendar_write
from repro.schema_tree.evaluator import materialize
from repro.sharding import ShardRouter
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_partition_scheme,
)
from repro.workloads.paper import figure1_view
from repro.xmlcore.serializer import serialize

SEED = 2003
SPEC = HotelDataSpec(metros=4, hotels_per_metro=6)


def test_unchanged_shard_slice_is_parsed_once_across_merges():
    db = build_hotel_database(SPEC, cross_thread=True, seed=SEED)
    view = figure1_view(db.catalog)
    domain = [
        row["hotelid"]
        for row in db.run_sql(
            "SELECT hotelid FROM hotel WHERE starrating > 4 "
            "ORDER BY hotelid",
            {},
        )
    ]
    # Two calendar-write steps that both land on shard 0 (metros 1-2
    # of 4): each flips a different shard-0 hotel's availability dates,
    # so shard 0's bytes change on every render while shard 1's don't.
    shard0_hotels = {
        row["hotelid"]
        for row in db.run_sql(
            "SELECT hotelid FROM hotel WHERE metro_id <= 2", {}
        )
    }
    steps = [
        index for index, hotelid in enumerate(domain)
        if hotelid in shard0_hotels
    ][:2]
    assert len(steps) == 2, "spec must yield two in-view shard-0 hotels"
    router = ShardRouter.build(
        db.catalog,
        db,
        hotel_partition_scheme(),
        2,
        workers=1,
        staleness="strict",
        maintenance="full",
    )
    try:
        # Warm: both shards recompute and carry captured documents, so
        # the merge needs no parses at all.
        warm = router.render(view)
        assert warm.outcome == "success"
        assert router.metrics()["parsed_cache"] == {
            "hits": 0, "misses": 0, "size": 0,
        }
        # Each write dirties shard 0 and is followed by a fresh merge.
        # Shard 1 serves the same hit bytes both times: the first merge
        # parses them (one miss), the second reuses the parsed document
        # (hits only).
        for step in steps:
            router.route_write(
                lambda source, tracker: hotel_calendar_write(
                    source, step, tracker=tracker, domain=domain
                )
            )
            hotel_calendar_write(db, step)
            trace = router.render(view)
            assert trace.outcome == "success"
            assert trace.xml == serialize(materialize(view, db))
        parsed = router.metrics()["parsed_cache"]
        assert parsed["misses"] == 1, parsed
        assert parsed["hits"] >= 1, parsed
        assert parsed["size"] == 1, parsed
        assert router.outstanding() == 0
    finally:
        router.close()
        db.close()

"""Shared fixtures: the paper's workload at small scale."""

from __future__ import annotations

import pytest

from repro.relational.engine import Database
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_catalog,
)
from repro.workloads.paper import figure1_view


#: Explicit generation seed for the shared hotel fixtures. The sharding
#: differential suites compare databases built in different processes
#: (and partitions derived from them), so the seed is pinned here
#: rather than relying on the HotelDataSpec keyword default staying put.
HOTEL_FIXTURE_SEED = 2003


@pytest.fixture(scope="session")
def catalog():
    return hotel_catalog()


@pytest.fixture()
def hotel_db():
    db = build_hotel_database(
        HotelDataSpec(metros=3, hotels_per_metro=4),
        seed=HOTEL_FIXTURE_SEED,
    )
    yield db
    db.close()


@pytest.fixture()
def dense_hotel_db():
    """Data dense enough for the recursion predicates to be satisfiable."""
    db = build_hotel_database(
        HotelDataSpec(
            metros=2,
            hotels_per_metro=4,
            guestrooms_per_hotel=10,
            availability_per_room=6,
        ),
        seed=HOTEL_FIXTURE_SEED,
    )
    yield db
    db.close()


@pytest.fixture()
def paper_view(catalog):
    return figure1_view(catalog)


@pytest.fixture()
def empty_db(catalog):
    db = Database(catalog)
    yield db
    db.close()

"""Shared fixtures: the paper's workload at small scale."""

from __future__ import annotations

import pytest

from repro.relational.engine import Database
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_catalog,
)
from repro.workloads.paper import figure1_view


@pytest.fixture(scope="session")
def catalog():
    return hotel_catalog()


@pytest.fixture()
def hotel_db():
    db = build_hotel_database(HotelDataSpec(metros=3, hotels_per_metro=4))
    yield db
    db.close()


@pytest.fixture()
def dense_hotel_db():
    """Data dense enough for the recursion predicates to be satisfiable."""
    db = build_hotel_database(
        HotelDataSpec(
            metros=2,
            hotels_per_metro=4,
            guestrooms_per_hotel=10,
            availability_per_room=6,
        )
    )
    yield db
    db.close()


@pytest.fixture()
def paper_view(catalog):
    return figure1_view(catalog)


@pytest.fixture()
def empty_db(catalog):
    db = Database(catalog)
    yield db
    db.close()

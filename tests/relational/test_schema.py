"""Unit tests for the relational catalog."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Catalog, Column, Table, table


def test_column_ddl():
    assert Column("x", "INTEGER").ddl() == "x INTEGER"
    assert Column("y").ddl() == "y TEXT"


def test_bad_column_type_raises():
    with pytest.raises(SchemaError):
        Column("x", "BLOB")


def test_table_ddl_with_primary_key():
    t = table("t", ("id", "INTEGER"), ("name", "TEXT"), primary_key="id")
    assert t.ddl() == "CREATE TABLE t (id INTEGER, name TEXT, PRIMARY KEY (id))"


def test_primary_key_must_be_column():
    t = Table("t", [Column("a")], primary_key="ghost")
    with pytest.raises(SchemaError):
        t.ddl()


def test_catalog_lookup_and_contains():
    catalog = Catalog([table("a", ("x", "TEXT"))])
    assert "a" in catalog
    assert "b" not in catalog
    assert catalog.table("a").name == "a"
    with pytest.raises(SchemaError):
        catalog.table("b")


def test_catalog_duplicate_rejected():
    catalog = Catalog([table("a", ("x", "TEXT"))])
    with pytest.raises(SchemaError):
        catalog.add(table("a", ("y", "TEXT")))


def test_catalog_columns_of():
    catalog = Catalog([table("a", ("x", "TEXT"), ("y", "INTEGER"))])
    assert catalog.columns_of("a") == ["x", "y"]


def test_catalog_iteration_preserves_order():
    catalog = Catalog([table("b", ("x", "TEXT")), table("a", ("y", "TEXT"))])
    assert catalog.table_names() == ["b", "a"]
    assert len(catalog.ddl_statements()) == 2

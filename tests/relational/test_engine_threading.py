"""Engine threading contract: locked stats, read-only pooled opens."""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.errors import ViewEvaluationError
from repro.relational.engine import Database, QueryStats
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_catalog,
)


def test_shared_stats_lose_no_increments_under_concurrency():
    """The original QueryStats used bare ``+=``; two threads recording
    concurrently could interleave read-modify-write and drop counts.
    The locked version must account for every call exactly."""
    stats = QueryStats()
    threads_count = 4
    per_thread = 5_000
    barrier = threading.Barrier(threads_count)

    def worker():
        barrier.wait()
        for _ in range(per_thread):
            stats.record(3)

    threads = [
        threading.Thread(target=worker) for _ in range(threads_count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert stats.queries_executed == threads_count * per_thread
    assert stats.rows_fetched == 3 * threads_count * per_thread


def test_stats_merge_snapshot_reset():
    first = QueryStats(keep_sql=True)
    first.record(2, "SELECT 1")
    second = QueryStats(keep_sql=True)
    second.record(5, "SELECT 2")
    first.merge(second)
    assert first.snapshot() == {
        "queries_executed": 2,
        "rows_fetched": 7,
        "query_seconds": 0.0,
    }
    assert first.sql_texts == ["SELECT 1", "SELECT 2"]
    first.reset()
    assert first.snapshot() == {
        "queries_executed": 0,
        "rows_fetched": 0,
        "query_seconds": 0.0,
    }
    assert first.sql_texts == []


@pytest.fixture()
def hotel_file(tmp_path):
    db = build_hotel_database(HotelDataSpec(metros=2, hotels_per_metro=2))
    path = str(tmp_path / "hotel.db")
    dest = sqlite3.connect(path)
    db.connection.backup(dest)
    dest.close()
    db.close()
    return path


def test_open_defaults_to_read_only(hotel_file):
    db = Database.open(hotel_catalog(), hotel_file)
    try:
        assert db.read_only
        assert db.table_count("metroarea") == 2
        # Every engine-level write path refuses before touching sqlite.
        with pytest.raises(ViewEvaluationError, match="read-only"):
            db.insert_rows("metroarea", [])
        with pytest.raises(ViewEvaluationError, match="read-only"):
            db.create_all()
        with pytest.raises(ViewEvaluationError, match="read-only"):
            db.analyze()
        # Raw SQL writes are stopped by sqlite itself (mode=ro +
        # PRAGMA query_only), the belt to the engine's suspenders.
        with pytest.raises(sqlite3.OperationalError):
            db.run_sql("DELETE FROM metroarea")
    finally:
        db.close()


def test_open_writable_when_asked(hotel_file):
    db = Database.open(hotel_catalog(), hotel_file, read_only=False)
    try:
        assert not db.read_only
        db.run_sql(
            "INSERT INTO metroarea (metroid, metroname) VALUES (99, 'new')"
        )
        assert db.table_count("metroarea") == 3
    finally:
        db.close()


def test_injected_stats_are_used(hotel_file):
    stats = QueryStats()
    db = Database.open(hotel_catalog(), hotel_file, stats=stats)
    try:
        assert db.stats is stats
    finally:
        db.close()

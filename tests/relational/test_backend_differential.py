"""Cross-backend differential suite: sqlite and DuckDB publish the same
bytes (hypothesis).

The whole point of the driver abstraction is that the backend is an
implementation detail of the relational layer — the published XML must
not change when the engine does. This suite states that as a property:
build the hotel workload twice from the same seed (once per backend),
apply the same random write sequences to both, and assert that every
materialization — all three execution strategies, plus delta-maintained
states chained across batches — serializes byte-identically across
backends.

The DuckDB half skips cleanly when the module is not installed (the CI
duckdb leg runs it for real); a sqlite-vs-sqlite smoke of the same
harness always runs, so wiring bugs in the comparison itself cannot
hide behind the skip.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compose import compose
from repro.core.optimize import prune_stylesheet_view
from repro.maintenance import DeltaEvaluator, MaterializedState, hotel_write
from repro.relational.driver import backend_available, resolve_driver
from repro.schema_tree.bulk_evaluator import BulkViewEvaluator
from repro.schema_tree.evaluator import STRATEGIES, ViewEvaluator, materialize
from repro.serving.fingerprint import node_read_sets
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xmlcore.serializer import serialize

SPEC = HotelDataSpec(metros=1, hotels_per_metro=3, guestrooms_per_hotel=3)
SEED = 2003

#: Shared pairs of databases, one per (reference, candidate) backend
#: combination. The write mix is UPDATE-only, so examples are
#: independent: whatever state the pair is in, the two backends were
#: fed identical writes and must agree.
_ENV: dict = {}


def _env(reference: str, candidate: str) -> dict:
    """Two same-seed hotel databases plus the publishing targets."""
    key = (reference, candidate)
    if key not in _ENV:
        ref_db = build_hotel_database(
            SPEC, seed=SEED, driver=resolve_driver(reference)
        )
        cand_db = build_hotel_database(
            SPEC, seed=SEED, driver=resolve_driver(candidate)
        )
        view = figure1_view(ref_db.catalog)
        composed = compose(view, figure4_stylesheet(), ref_db.catalog)
        prune_stylesheet_view(composed, ref_db.catalog)
        _ENV[key] = {
            "dbs": (ref_db, cand_db),
            "targets": {"raw": view, "composed": composed},
            "reads": {
                "raw": node_read_sets(view),
                "composed": node_read_sets(composed),
            },
        }
    return _ENV[key]


def _capture_state(target, db) -> MaterializedState:
    """Bulk materialization with instance capture (the delta input)."""
    capture: dict = {}
    document = BulkViewEvaluator(db, capture_instances=capture).materialize(
        target
    )
    return MaterializedState(document, capture)


def _assert_backends_agree(reference, candidate, target_name, strategy,
                           write_batches) -> None:
    """Full and delta materializations byte-match across the pair."""
    env = _env(reference, candidate)
    ref_db, cand_db = env["dbs"]
    target = env["targets"][target_name]
    reads = env["reads"][target_name]
    states = [_capture_state(target, db) for db in (ref_db, cand_db)]
    for batch in write_batches:
        changed = set()
        for step in batch:
            changed.add(hotel_write(ref_db, step))
            hotel_write(cand_db, step)
        # Full recompute agrees under the chosen strategy.
        full = [
            serialize(materialize(target, db, strategy=strategy))
            for db in (ref_db, cand_db)
        ]
        assert full[0] == full[1], (target_name, strategy, batch)
        # Delta-maintained states chain identically across the batch
        # sequence (delta always runs on the bulk machinery).
        results = [
            DeltaEvaluator(db).evaluate(target, state, reads, set(changed))
            for db, state in zip((ref_db, cand_db), states)
        ]
        deltas = [serialize(result.document) for result in results]
        assert deltas[0] == deltas[1], (target_name, "delta", batch)
        assert deltas[0] == full[0], (target_name, "delta-vs-full", batch)
        states = [result.state for result in results]


def batches():
    """1-4 batches of 1-3 hotel write-mix steps each."""
    return st.lists(
        st.lists(st.integers(0, 14), min_size=1, max_size=3),
        min_size=1,
        max_size=4,
    )


@pytest.mark.skipif(
    not backend_available("duckdb"), reason="duckdb is not installed"
)
@settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    target_name=st.sampled_from(["raw", "composed"]),
    strategy=st.sampled_from(list(STRATEGIES)),
    write_batches=batches(),
)
def test_duckdb_publishes_sqlite_bytes(target_name, strategy, write_batches):
    _assert_backends_agree(
        "sqlite", "duckdb", target_name, strategy, write_batches
    )


@settings(max_examples=10, deadline=None)
@given(
    target_name=st.sampled_from(["raw", "composed"]),
    strategy=st.sampled_from(list(STRATEGIES)),
    write_batches=batches(),
)
def test_harness_smoke_sqlite_vs_sqlite(target_name, strategy, write_batches):
    """The comparison harness itself, exercised without duckdb: two
    independently seeded sqlite databases fed the same writes agree."""
    _assert_backends_agree(
        "sqlite", "sqlite", target_name, strategy, write_batches
    )

"""Backend parametrization for the driver conformance kit.

Every test in this package takes the ``driver`` fixture and therefore
runs once per registered backend. A backend whose module is not
installed (DuckDB on a bare-stdlib box) skips with the driver's own
unavailability message rather than failing — the CI duckdb leg installs
the module and turns those skips into real runs.
"""

from __future__ import annotations

import pytest

from repro.errors import DriverUnavailableError
from repro.relational.driver import BACKEND_NAMES, resolve_driver


@pytest.fixture(params=list(BACKEND_NAMES))
def driver(request):
    """One EngineDriver instance per registered backend (skip-if-absent)."""
    try:
        return resolve_driver(request.param)
    except DriverUnavailableError as exc:
        pytest.skip(str(exc))

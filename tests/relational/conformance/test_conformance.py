"""Run the backend-conformance kit against every registered driver.

Parametrization comes from the package conftest: each test runs once
per backend in :data:`repro.relational.driver.BACKEND_NAMES`, skipping
backends whose module is not installed. One test per kit check keeps
failures addressable ("duckdb fails cancel-under-load", not "duckdb
fails conformance").
"""

from __future__ import annotations

from tests.relational.conformance.kit import DriverConformanceKit


def test_executemany_insert(driver):
    DriverConformanceKit(driver).check_executemany_insert()


def test_type_fidelity(driver):
    DriverConformanceKit(driver).check_type_fidelity()


def test_placeholder_roundtrip(driver):
    DriverConformanceKit(driver).check_placeholder_roundtrip()


def test_raw_sql_rewrite(driver):
    DriverConformanceKit(driver).check_raw_sql_rewrite()


def test_read_only_enforcement(driver):
    DriverConformanceKit(driver).check_read_only_enforcement()


def test_snapshot_isolation_and_refresh(driver):
    DriverConformanceKit(driver).check_snapshot_isolation_and_refresh()


def test_cancel_under_load(driver):
    DriverConformanceKit(driver).check_cancel_under_load()


def test_change_capture(driver):
    DriverConformanceKit(driver).check_change_capture()


def test_error_taxonomy(driver):
    DriverConformanceKit(driver).check_error_taxonomy()


def test_contract_declaration(driver):
    DriverConformanceKit(driver).check_contract_declaration()


def test_kit_covers_every_check(driver):
    """The ALL manifest and this module agree — adding a check without a
    test (or vice versa) fails here."""
    import sys

    module = sys.modules[__name__]
    listed = {name.replace("check_", "test_") for name in
              DriverConformanceKit.ALL}
    present = {name for name in vars(module) if name.startswith("test_")}
    assert listed <= present, listed - present

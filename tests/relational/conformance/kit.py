"""The backend-conformance kit: checks every engine driver must pass.

Each ``check_*`` method exercises one clause of the
:class:`~repro.relational.driver.EngineDriver` contract against a live
driver instance, using only the public engine API — so the same kit
validates sqlite, DuckDB, and any future backend. The pytest module in
this package (``test_conformance.py``) simply instantiates the kit per
registered backend and calls one check per test; external driver
authors can do the same against their own driver.

Design rule: **capability flags are honest**. Every capability a driver
declares is exercised for real (snapshots snapshot, cancels cancel,
hooks capture); every capability it does not declare must fail loudly
with :class:`~repro.errors.DriverCapabilityError`, never silently
no-op.
"""

from __future__ import annotations

import threading
import time

from repro.errors import DriverCapabilityError, classify_error
from repro.maintenance.tracker import WriteTracker
from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.sql.parser import parse_select

#: Values chosen to stress placeholder escaping and type fidelity:
#: embedded quotes, unicode, NULL, negative floats, a colon that must
#: not be mistaken for a named parameter, and a double that only
#: survives a round-trip at full 8-byte precision.
ROWS = [
    {"id": 1, "label": "plain", "score": 1.5},
    {"id": 2, "label": "it's ''quoted''", "score": -2.25},
    {"id": 3, "label": "uni-çødé ✓", "score": 0.1},
    {"id": 4, "label": None, "score": None},
    {"id": 5, "label": ":slot is not a parameter", "score": 1.7e308},
]

#: Runs ~6s uninterrupted on sqlite — long enough that a 100ms cancel
#: provably cut it short, bounded enough that a driver whose cancel
#: does nothing fails the check instead of hanging it.
HEAVY_SQL = (
    "WITH RECURSIVE c(x) AS "
    "(SELECT 1 UNION ALL SELECT x+1 FROM c WHERE x < 20000000) "
    "SELECT count(*) FROM c"
)


def conformance_catalog() -> Catalog:
    """One table covering every declared column type."""
    return Catalog([
        table(
            "items",
            ("id", "INTEGER"),
            ("label", "TEXT"),
            ("score", "REAL"),
            primary_key="id",
        ),
    ])


class DriverConformanceKit:
    """Run the backend contract against one driver instance."""

    def __init__(self, driver):
        self.driver = driver

    def build(self) -> Database:
        """A populated single-table database on this driver."""
        db = Database(conformance_catalog(), driver=self.driver)
        db.insert_rows("items", ROWS)
        return db

    # -- checks --------------------------------------------------------------

    def check_executemany_insert(self) -> None:
        """Bulk insert through the driver's insert statement, then count."""
        with Database(conformance_catalog(), driver=self.driver) as db:
            rows = [
                {"id": n, "label": f"row-{n}", "score": float(n)}
                for n in range(500)
            ]
            assert db.insert_rows("items", rows) == 500
            assert db.table_count("items") == 500

    def check_type_fidelity(self) -> None:
        """Every seeded value round-trips with Python type and value
        intact — including the full-precision double (the reason DuckDB
        maps declared ``REAL`` to ``DOUBLE``)."""
        with self.build() as db:
            fetched = db.run_sql("SELECT * FROM items ORDER BY id")
            assert len(fetched) == len(ROWS)
            for expected, got in zip(ROWS, fetched):
                for column, value in expected.items():
                    actual = got[column]
                    if value is None:
                        assert actual is None, (column, actual)
                    else:
                        assert type(actual) is type(value), (column, actual)
                        assert actual == value, (column, actual, value)

    def check_placeholder_roundtrip(self) -> None:
        """Tag-query parameters bind through the driver's placeholder
        style for every stress value (quotes, unicode, negatives)."""
        query = parse_select("SELECT * FROM items WHERE label = $p.label")
        with self.build() as db:
            for row in ROWS:
                if row["label"] is None:
                    continue  # = NULL matches nothing in SQL; not a
                    # placeholder concern
                hits = db.run_query(query, {"p": {"label": row["label"]}})
                assert [h["id"] for h in hits] == [row["id"]]
            by_score = parse_select(
                "SELECT id FROM items WHERE score < $p.score"
            )
            hits = db.run_query(by_score, {"p": {"score": 0.0}})
            assert [h["id"] for h in hits] == [2]

    def check_raw_sql_rewrite(self) -> None:
        """Raw ``:name`` SQL executes after driver rewriting, and colons
        inside string literals are left alone."""
        with self.build() as db:
            hits = db.run_sql(
                "SELECT id FROM items WHERE id = :wanted", {"wanted": 3}
            )
            assert [h["id"] for h in hits] == [3]
            literal = db.run_sql(
                "SELECT id FROM items WHERE label = ':slot is not a parameter'"
            )
            assert [h["id"] for h in literal] == [5]

    def check_read_only_enforcement(self) -> None:
        """A read-only snapshot session rejects DML — at the engine level
        when the driver supports it, at the wrapper level otherwise —
        and the engine's own write API refuses outright."""
        import pytest

        from repro.errors import ViewEvaluationError

        with self.build() as db:
            snapshot = self.driver.snapshot(db)
            try:
                session = Database.from_connection(
                    db.catalog, snapshot.connect(), read_only=True,
                    driver=self.driver,
                )
                self.driver.enforce_read_only(session.connection)
                with pytest.raises(
                    (ViewEvaluationError,) + tuple(self.driver.errors)
                ):
                    session.run_sql("DELETE FROM items")
                with pytest.raises(ViewEvaluationError):
                    session.insert_rows(
                        "items", [{"id": 99, "label": "x", "score": 0.0}]
                    )
                # Reads still work after the rejected writes.
                assert session.table_count("items") == len(ROWS)
                session.close()
            finally:
                snapshot.close()

    def check_snapshot_isolation_and_refresh(self) -> None:
        """Snapshot sessions see a point-in-time copy: source writes are
        invisible until ``refresh``, visible after."""
        with self.build() as db:
            snapshot = self.driver.snapshot(db)
            try:
                session = Database.from_connection(
                    db.catalog, snapshot.connect(), read_only=True,
                    driver=self.driver,
                )
                assert session.table_count("items") == len(ROWS)
                db.insert_rows(
                    "items", [{"id": 100, "label": "late", "score": 9.0}]
                )
                assert session.table_count("items") == len(ROWS)
                snapshot.refresh(db)
                assert session.table_count("items") == len(ROWS) + 1
                session.close()
            finally:
                snapshot.close()

    def check_cancel_under_load(self) -> None:
        """``driver.cancel`` from another thread cuts a long statement
        short, the error classifies transient, and the connection stays
        usable afterwards."""
        if not self.driver.supports_cancel:
            import pytest

            with pytest.raises(DriverCapabilityError):
                self.driver.cancel(object())
            return
        with self.build() as db:
            timer = threading.Timer(
                0.1, lambda: self.driver.cancel(db.connection)
            )
            timer.daemon = True
            timer.start()
            started = time.perf_counter()
            try:
                db.run_sql(HEAVY_SQL)
            except self.driver.errors as exc:
                elapsed = time.perf_counter() - started
                assert elapsed < 3.0, f"cancel took {elapsed:.1f}s to land"
                assert classify_error(exc) == "transient", exc
            else:
                raise AssertionError("heavy statement ran to completion")
            finally:
                timer.cancel()
            if not self.driver.sanitize(db.connection):
                raise AssertionError("connection unusable after cancel")
            assert db.table_count("items") == len(ROWS)

    def check_change_capture(self) -> None:
        """Auto capture records raw DML when declared; when not declared
        it raises ``DriverCapabilityError`` (the explicit marker for
        unsupported) and the explicit path still versions correctly."""
        import pytest

        tracker = WriteTracker()
        with self.build() as db:
            if self.driver.supports_auto_capture:
                db.attach_tracker(tracker, auto=True)
                db.run_sql("UPDATE items SET score = 3.5 WHERE id = 1")
                assert tracker.version("items") == 1
                db.insert_rows(
                    "items", [{"id": 50, "label": "auto", "score": 0.0}]
                )
                # One bump from the hooks, none from the explicit path
                # (no double counting).
                assert tracker.version("items") == 2
                tracker.detach(db)
                db.run_sql("UPDATE items SET score = 4.5 WHERE id = 1")
                assert tracker.version("items") == 2
            else:
                with pytest.raises(DriverCapabilityError):
                    db.attach_tracker(tracker, auto=True)
                db.attach_tracker(tracker, auto=False)
                db.insert_rows(
                    "items", [{"id": 50, "label": "explicit", "score": 0.0}]
                )
                assert tracker.version("items") == 1
                db.record_write("items")
                assert tracker.version("items") == 2

    def check_error_taxonomy(self) -> None:
        """A plain SQL mistake classifies permanent after wrapping."""
        from repro.errors import ViewEvaluationError

        with self.build() as db:
            try:
                db.run_query(parse_select("SELECT nope FROM items"))
            except ViewEvaluationError as exc:
                assert classify_error(exc) == "permanent"
            else:
                raise AssertionError("bad column did not raise")

    def check_contract_declaration(self) -> None:
        """The declared contract is complete and the placeholder renders
        the binding key it was given."""
        contract = self.driver.contract()
        for key in ("name", "snapshot", "auto_capture", "engine_read_only",
                    "cancel", "placeholder"):
            assert key in contract, key
        assert "k" in contract["placeholder"]

    #: Every check, in the order the test module runs them.
    ALL = (
        "check_executemany_insert",
        "check_type_fidelity",
        "check_placeholder_roundtrip",
        "check_raw_sql_rewrite",
        "check_read_only_enforcement",
        "check_snapshot_isolation_and_refresh",
        "check_cancel_under_load",
        "check_change_capture",
        "check_error_taxonomy",
        "check_contract_declaration",
    )

"""Unit tests for the sqlite engine wrapper."""

import pytest

from repro.errors import ViewEvaluationError
from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.sql.parser import parse_select


@pytest.fixture()
def db():
    catalog = Catalog(
        [
            table("parent", ("id", "INTEGER"), ("name", "TEXT"), primary_key="id"),
            table(
                "child",
                ("id", "INTEGER"),
                ("parent_id", "INTEGER"),
                ("val", "REAL"),
                primary_key="id",
            ),
        ]
    )
    database = Database(catalog)
    database.insert_rows(
        "parent", [{"id": 1, "name": "a"}, {"id": 2, "name": "b"}]
    )
    database.insert_rows(
        "child",
        [
            {"id": 10, "parent_id": 1, "val": 1.5},
            {"id": 11, "parent_id": 1, "val": 2.5},
            {"id": 12, "parent_id": 2, "val": None},
        ],
    )
    yield database
    database.close()


def test_table_count(db):
    assert db.table_count("parent") == 2
    assert db.table_count("child") == 3


def test_insert_missing_column_raises(db):
    with pytest.raises(ViewEvaluationError):
        db.insert_rows("parent", [{"id": 3}])


def test_closed_query(db):
    rows = db.run_query(parse_select("SELECT * FROM parent"))
    assert [r["name"] for r in rows] == ["a", "b"]


def test_parameterized_query_binds_env(db):
    query = parse_select("SELECT * FROM child WHERE parent_id = $p.id")
    rows = db.run_query(query, {"p": {"id": 1}})
    assert [r["id"] for r in rows] == [10, 11]


def test_unbound_variable_raises(db):
    query = parse_select("SELECT * FROM child WHERE parent_id = $p.id")
    with pytest.raises(ViewEvaluationError):
        db.run_query(query, {})


def test_missing_column_in_binding_raises(db):
    query = parse_select("SELECT * FROM child WHERE parent_id = $p.id")
    with pytest.raises(ViewEvaluationError):
        db.run_query(query, {"p": {"other": 1}})


def test_null_values_surface_as_none(db):
    rows = db.run_query(parse_select("SELECT * FROM child WHERE id = 12"))
    assert rows[0]["val"] is None


def test_duplicate_result_columns_suffixed(db):
    rows = db.run_sql("SELECT id, id FROM parent WHERE id = 1")
    # run_sql uses plain zip; run_query disambiguates:
    query = parse_select("SELECT id, id FROM parent WHERE id = 1")
    rows = db.run_query(query)
    assert set(rows[0]) == {"id", "id__2"}


def test_stats_accumulate(db):
    db.stats.reset()
    db.run_query(parse_select("SELECT * FROM parent"))
    db.run_query(parse_select("SELECT * FROM child"))
    assert db.stats.queries_executed == 2
    assert db.stats.rows_fetched == 5


def test_sql_error_wrapped(db):
    query = parse_select("SELECT ghost FROM parent")
    with pytest.raises(ViewEvaluationError):
        db.run_query(query)


def test_sql_cache_not_confused_by_new_objects(db):
    first = parse_select("SELECT * FROM parent")
    second = parse_select("SELECT * FROM child")
    assert len(db.run_query(first)) == 2
    assert len(db.run_query(second)) == 3
    assert len(db.run_query(first)) == 2


def test_context_manager():
    catalog = Catalog([table("t", ("x", "INTEGER"))])
    with Database(catalog) as database:
        database.insert_rows("t", [{"x": 1}])
        assert database.table_count("t") == 1

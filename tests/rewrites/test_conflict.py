"""Unit + behaviour tests for conflict resolution (Figure 24, corrected)."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.core.rewrites.conflict import resolve_conflicts
from repro.core.rewrites.pipeline import rewrite_to_basic
from repro.xmlcore.canonical import documents_equal
from repro.xmlcore.parser import parse_document
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import apply_stylesheet

DOC = parse_document(
    """
<metro>
  <hotel starrating="5"><confroom capacity="300"/></hotel>
  <hotel starrating="3"><confroom capacity="100"/></hotel>
</metro>
"""
)


def assert_rewrite_preserves(stylesheet_text, doc=DOC):
    original = parse_stylesheet(stylesheet_text)
    resolved = resolve_conflicts(original)
    before = apply_stylesheet(original, doc)
    after = apply_stylesheet(resolved, doc)
    assert documents_equal(before, after, ordered=True)
    return resolved


ROOT = '<xsl:template match="/"><out><xsl:apply-templates select="metro/hotel/confroom"/></out></xsl:template>'


def test_non_conflicting_rules_pass_through():
    stylesheet = parse_stylesheet(
        ROOT + '<xsl:template match="confroom"><c/></xsl:template>'
    )
    resolved = resolve_conflicts(stylesheet)
    assert resolved.size() == stylesheet.size()


def test_dispatcher_prefers_higher_priority():
    resolved = assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="confroom"><generic/></xsl:template>'
        + '<xsl:template match="hotel/confroom"><specific/></xsl:template>'
    )
    # One dispatcher in the default mode, two branch rules in fresh modes.
    default_rules = [
        r for r in resolved.rules
        if r.mode == "" and r.match.last_name == "confroom"
    ]
    assert len(default_rules) == 1


def test_dispatcher_output_matches_priorities():
    out = apply_stylesheet(
        rewrite_to_basic(
            parse_stylesheet(
                ROOT
                + '<xsl:template match="confroom"><generic/></xsl:template>'
                + '<xsl:template match="hotel/confroom"><specific/></xsl:template>'
            ),
            with_conflict_resolution=True,
        ),
        DOC,
    )
    from repro.xmlcore.serializer import serialize

    assert serialize(out) == "<out><specific/><specific/></out>"


def test_predicate_patterns_dispatch_dynamically():
    assert_rewrite_preserves(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro/hotel"/></out></xsl:template>'
        + '<xsl:template match="hotel[@starrating&gt;4]" priority="2"><lux/></xsl:template>'
        + '<xsl:template match="hotel"><plain/></xsl:template>'
    )


def test_node_matching_only_lower_priority_rule_still_fires():
    """The corrected Figure 24: a node matched only by the low-priority
    pattern must still be processed (see conflict.py docstring)."""
    assert_rewrite_preserves(
        '<xsl:template match="/"><out>'
        '<xsl:apply-templates select="metro/hotel"/>'
        "</out></xsl:template>"
        # High priority only matches 5-star hotels; plain matches all.
        + '<xsl:template match="hotel[@starrating&gt;4]" priority="5"><lux/></xsl:template>'
        + '<xsl:template match="hotel"><plain/></xsl:template>'
    )


def test_explicit_priorities_respected():
    assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="confroom" priority="9"><winner/></xsl:template>'
        + '<xsl:template match="hotel/confroom"><loser/></xsl:template>'
    )


def test_star_pattern_groups_whole_mode():
    resolved = assert_rewrite_preserves(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro/hotel"/></out></xsl:template>'
        + '<xsl:template match="*"><any/></xsl:template>'
        + '<xsl:template match="hotel"><h/></xsl:template>'
    )
    dispatchers = [r for r in resolved.rules if r.match.to_text() == "*" and r.mode == ""]
    assert len(dispatchers) == 1


def test_multiple_root_rules_rejected():
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><a/></xsl:template>'
        '<xsl:template match="/"><b/></xsl:template>'
    )
    with pytest.raises(UnsupportedFeatureError):
        resolve_conflicts(stylesheet)


def test_reversed_patterns_check_ancestry():
    """A 'metro/confroom' rule must NOT fire for hotel/confroom nodes."""
    assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="metro/confroom" priority="3"><wrong_parent/></xsl:template>'
        + '<xsl:template match="confroom"><right/></xsl:template>'
    )


def test_composition_after_conflict_rewrite(hotel_db):
    """End-to-end: dynamic conflicts compose through compose()."""
    from repro.core import compose
    from repro.schema_tree import materialize
    from repro.workloads.paper import figure1_view
    from repro.xmlcore import canonical_form

    view = figure1_view(hotel_db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro/hotel"/></out></xsl:template>'
        '<xsl:template match="hotel[@pool=1]" priority="2"><pool_hotel/></xsl:template>'
        '<xsl:template match="hotel"><plain_hotel/></xsl:template>'
    )
    naive = apply_stylesheet(stylesheet, materialize(view, hotel_db))
    composed = materialize(compose(view, stylesheet, hotel_db.catalog), hotel_db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )

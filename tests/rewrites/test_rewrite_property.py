"""Property: the Section 5.2 rewrites preserve interpreter semantics.

Random stylesheets with nested flow control, general value-of selects,
and (separately) conflicting rules are lowered and re-run over a fixed
document; outputs must match exactly (ordered comparison — rewrites may
not even reorder siblings).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rewrites.conflict import resolve_conflicts
from repro.core.rewrites.flow_control import lower_flow_control
from repro.core.rewrites.pipeline import rewrite_to_basic
from repro.core.rewrites.value_of import lower_value_of
from repro.xmlcore.canonical import canonical_form
from repro.xmlcore.parser import parse_document
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import apply_stylesheet

DOC = parse_document(
    """
<metro metroname="chicago">
  <hotel starrating="5" hotelid="1" pool="1">
    <confstat SUM_capacity="150"/>
    <confroom capacity="300"/>
    <confroom capacity="90"/>
  </hotel>
  <hotel starrating="3" hotelid="2" pool="0">
    <confstat SUM_capacity="80"/>
    <confroom capacity="120"/>
  </hotel>
  <hotel starrating="4" hotelid="3" pool="1"/>
</metro>
"""
)

TESTS = st.sampled_from(
    [
        "@starrating > 3",
        "@pool = 1",
        "confroom",
        "not(confroom)",
        "@starrating > 2 and @pool = 1",
        "confstat/@SUM_capacity > 100",
        "false()",
        "true()",
    ]
)

LEAF_BODIES = st.sampled_from(
    [
        "<x/>",
        '<x><xsl:value-of select="@hotelid"/></x>',
        '<x><xsl:value-of select="."/></x>',
        '<x><xsl:value-of select="confroom"/></x>',
        '<x><xsl:value-of select="confstat/@SUM_capacity"/></x>',
    ]
)


@st.composite
def bodies(draw, depth=2):
    kind = draw(st.sampled_from(["leaf", "if", "choose", "for-each", "mix"]))
    if depth == 0 or kind == "leaf":
        return draw(LEAF_BODIES)
    if kind == "if":
        inner = draw(bodies(depth=depth - 1))
        test = draw(TESTS)
        return f'<xsl:if test="{_esc(test)}">{inner}</xsl:if>'
    if kind == "choose":
        when_count = draw(st.integers(1, 2))
        parts = ["<xsl:choose>"]
        for _ in range(when_count):
            test = draw(TESTS)
            inner = draw(bodies(depth=depth - 1))
            parts.append(f'<xsl:when test="{_esc(test)}">{inner}</xsl:when>')
        if draw(st.booleans()):
            inner = draw(bodies(depth=depth - 1))
            parts.append(f"<xsl:otherwise>{inner}</xsl:otherwise>")
        parts.append("</xsl:choose>")
        return "".join(parts)
    if kind == "for-each":
        inner = draw(LEAF_BODIES)
        return f'<xsl:for-each select="confroom">{inner}</xsl:for-each>'
    left = draw(bodies(depth=depth - 1))
    right = draw(bodies(depth=depth - 1))
    return f"<wrap>{left}{right}</wrap>"


def _esc(text: str) -> str:
    return text.replace("<", "&lt;").replace(">", "&gt;")


@st.composite
def flow_stylesheets(draw):
    body = draw(bodies())
    return (
        '<xsl:template match="/"><out><xsl:apply-templates select="metro/hotel"/></out></xsl:template>'
        f'<xsl:template match="hotel">{body}</xsl:template>'
    )


@given(flow_stylesheets())
@settings(max_examples=120, deadline=None)
def test_flow_control_lowering_preserves_output(stylesheet_text):
    from repro.errors import UnsupportedFeatureError

    original = parse_stylesheet(stylesheet_text)
    try:
        lowered = lower_flow_control(lower_value_of(original))
    except UnsupportedFeatureError:
        return  # conditional attributes are rejected loudly, never wrong
    before = apply_stylesheet(original, DOC)
    after = apply_stylesheet(lowered, DOC)
    assert canonical_form(before) == canonical_form(after), stylesheet_text


PATTERNS = st.sampled_from(
    [
        "hotel",
        "metro/hotel",
        "hotel[@pool=1]",
        "hotel[@starrating&gt;4]",
        "hotel[confroom]",
    ]
)


@st.composite
def conflicting_stylesheets(draw):
    rule_count = draw(st.integers(2, 4))
    rules = [
        '<xsl:template match="/"><out><xsl:apply-templates select="metro/hotel"/></out></xsl:template>'
    ]
    for index in range(rule_count):
        pattern = draw(PATTERNS)
        priority = draw(st.sampled_from(["", ' priority="2"', ' priority="5"']))
        rules.append(
            f'<xsl:template match="{pattern}"{priority}><r{index}/></xsl:template>'
        )
    return "".join(rules)


@given(conflicting_stylesheets())
@settings(max_examples=120, deadline=None)
def test_conflict_resolution_preserves_output(stylesheet_text):
    original = parse_stylesheet(stylesheet_text)
    resolved = resolve_conflicts(original)
    before = apply_stylesheet(original, DOC)
    after = apply_stylesheet(resolved, DOC)
    assert canonical_form(before) == canonical_form(after), stylesheet_text


@given(conflicting_stylesheets())
@settings(max_examples=60, deadline=None)
def test_full_pipeline_preserves_output(stylesheet_text):
    original = parse_stylesheet(stylesheet_text)
    lowered = rewrite_to_basic(original, with_conflict_resolution=True)
    before = apply_stylesheet(original, DOC)
    after = apply_stylesheet(lowered, DOC)
    assert canonical_form(before) == canonical_form(after), stylesheet_text

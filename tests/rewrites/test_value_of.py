"""Unit + behaviour tests for general value-of lowering (Figure 23)."""

from repro.core.rewrites.value_of import lower_value_of
from repro.xmlcore.canonical import documents_equal
from repro.xmlcore.parser import parse_document
from repro.xpath.ast import AttributeRef, ContextRef
from repro.xslt.model import ApplyTemplates, ValueOf
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import apply_stylesheet

DOC = parse_document(
    """
<metro metroname="chicago">
  <hotel hotelid="1"><confstat SUM_capacity="150"/></hotel>
  <hotel hotelid="2"><confstat SUM_capacity="80"/></hotel>
</metro>
"""
)


def only_basic_value_of(stylesheet):
    def check(nodes):
        for node in nodes:
            if isinstance(node, ValueOf):
                if not isinstance(node.select, (ContextRef, AttributeRef)):
                    return False
            children = getattr(node, "children", None)
            if children and not check(children):
                return False
        return True

    return all(check(rule.output) for rule in stylesheet.rules)


def assert_rewrite_preserves(stylesheet_text):
    original = parse_stylesheet(stylesheet_text)
    lowered = lower_value_of(original)
    assert only_basic_value_of(lowered)
    before = apply_stylesheet(original, DOC)
    after = apply_stylesheet(lowered, DOC)
    assert documents_equal(before, after, ordered=True)
    return lowered


ROOT = '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'


def test_path_value_of_becomes_apply(DOC=DOC):
    lowered = assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="metro"><m><xsl:value-of select="hotel/confstat"/></m></xsl:template>'
    )
    rule = lowered.rules[1]
    apply = rule.output[0].children[0]
    assert isinstance(apply, ApplyTemplates)
    assert apply.select.to_text() == "hotel/confstat"
    new_rule = lowered.rules[-1]
    assert new_rule.match.to_text() == "confstat"
    assert isinstance(new_rule.output[0].select, ContextRef)


def test_dot_and_attr_selects_untouched():
    stylesheet = parse_stylesheet(
        ROOT
        + '<xsl:template match="metro"><m><xsl:value-of select="."/>'
        '<xsl:value-of select="@metroname"/></m></xsl:template>'
    )
    lowered = lower_value_of(stylesheet)
    assert lowered.size() == stylesheet.size()


def test_value_of_inside_nested_elements():
    assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="metro"><a><b><xsl:value-of select="hotel"/></b></a></xsl:template>'
    )


def test_multiple_value_ofs_get_distinct_modes():
    lowered = assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="metro"><m>'
        '<xsl:value-of select="hotel"/>'
        '<xsl:value-of select="hotel/confstat"/>'
        "</m></xsl:template>"
    )
    modes = [r.mode for r in lowered.rules if r.mode.startswith("__m")]
    assert len(set(modes)) == 2

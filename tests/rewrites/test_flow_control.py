"""Unit + behaviour tests for the flow-control rewrites (Figures 21-22)."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.core.rewrites.flow_control import lower_flow_control
from repro.xmlcore.canonical import documents_equal
from repro.xmlcore.parser import parse_document
from repro.xslt.model import ApplyTemplates, Choose, ForEach, IfInstruction
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import apply_stylesheet

DOC = parse_document(
    """
<metro>
  <hotel starrating="5" hotelid="1"><confroom capacity="300"/></hotel>
  <hotel starrating="3" hotelid="2"><confroom capacity="100"/></hotel>
</metro>
"""
)


def has_flow_control(stylesheet):
    def check(nodes):
        for node in nodes:
            if isinstance(node, (IfInstruction, Choose, ForEach)):
                return True
            children = getattr(node, "children", None)
            if children and check(children):
                return True
        return False

    return any(check(rule.output) for rule in stylesheet.rules)


def assert_rewrite_preserves(stylesheet_text, doc=DOC):
    original = parse_stylesheet(stylesheet_text)
    lowered = lower_flow_control(original)
    assert not has_flow_control(lowered)
    before = apply_stylesheet(original, doc)
    after = apply_stylesheet(lowered, doc)
    assert documents_equal(before, after, ordered=True)
    return lowered


ROOT = '<xsl:template match="/"><out><xsl:apply-templates select="metro/hotel"/></out></xsl:template>'


def test_if_figure21():
    lowered = assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="hotel">'
        '<xsl:if test="@starrating &gt; 4"><lux/></xsl:if>'
        "</xsl:template>"
    )
    # Figure 21(b): the if became an apply-templates with a .[test] select.
    rule = lowered.rules[1]
    apply = rule.output[0]
    assert isinstance(apply, ApplyTemplates)
    assert apply.select.to_text().startswith(".[")
    assert apply.mode.startswith("__m")
    new_rule = lowered.rules[-1]
    assert new_rule.mode == apply.mode


def test_if_false_branch_produces_nothing():
    assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="hotel">'
        '<xsl:if test="@starrating &gt; 9"><never/></xsl:if><always/>'
        "</xsl:template>"
    )


def test_if_with_path_test():
    assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="hotel">'
        '<xsl:if test="confroom"><has/></xsl:if>'
        "</xsl:template>"
    )


def test_choose_figure22():
    lowered = assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="hotel"><xsl:choose>'
        '<xsl:when test="@starrating &gt; 4"><lux/></xsl:when>'
        '<xsl:when test="@starrating &gt; 2"><mid/></xsl:when>'
        "<xsl:otherwise><low/></xsl:otherwise>"
        "</xsl:choose></xsl:template>"
    )
    rule = lowered.rules[1]
    selects = [n.select.to_text() for n in rule.output]
    # Figure 22(b): guards accumulate not(e1) and ... conditions.
    assert len(selects) == 3
    assert "not" in selects[1]
    assert selects[2].count("not") == 2


def test_choose_without_otherwise():
    assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="hotel"><xsl:choose>'
        '<xsl:when test="@starrating &gt; 4"><lux/></xsl:when>'
        "</xsl:choose></xsl:template>"
    )


def test_for_each():
    assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="hotel">'
        '<h><xsl:for-each select="confroom"><c><xsl:value-of select="@capacity"/></c></xsl:for-each></h>'
        "</xsl:template>"
    )


def test_nested_flow_control():
    assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="hotel">'
        '<xsl:if test="@starrating &gt; 2">'
        "<xsl:choose>"
        '<xsl:when test="@starrating &gt; 4"><lux/></xsl:when>'
        "<xsl:otherwise><mid/></xsl:otherwise>"
        "</xsl:choose>"
        "</xsl:if>"
        "</xsl:template>"
    )


def test_flow_control_inside_literal_element():
    assert_rewrite_preserves(
        ROOT
        + '<xsl:template match="hotel">'
        '<h><xsl:if test="@starrating &gt; 4"><lux/></xsl:if></h>'
        "</xsl:template>"
    )


def test_fresh_modes_do_not_collide():
    stylesheet = parse_stylesheet(
        ROOT
        + '<xsl:template match="hotel" mode="__m1"><x/></xsl:template>'
        + '<xsl:template match="hotel">'
        '<xsl:if test="@starrating &gt; 4"><y/></xsl:if>'
        "</xsl:template>"
    )
    lowered = lower_flow_control(stylesheet)
    modes = [r.mode for r in lowered.rules]
    assert len(modes) == len(set((r.match.to_text(), r.mode) for r in lowered.rules))
    assert "__m2" in modes  # skipped the taken __m1


def test_conditional_attribute_rejected():
    stylesheet = parse_stylesheet(
        ROOT
        + '<xsl:template match="hotel">'
        '<h><xsl:if test="@starrating &gt; 4"><xsl:value-of select="@hotelid"/></xsl:if></h>'
        "</xsl:template>"
    )
    with pytest.raises(UnsupportedFeatureError) as exc:
        lower_flow_control(stylesheet)
    assert exc.value.feature == "conditional-attribute"

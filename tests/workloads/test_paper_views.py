"""Tests that the paper's figures are transcribed faithfully."""

from repro.sql.printer import print_select
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import (
    figure1_view,
    figure4_stylesheet,
    figure15_stylesheet,
    figure17_stylesheet,
    figure25_stylesheet,
    qtree_compatible_stylesheet,
)


def test_figure1_tag_queries_verbatim():
    view = figure1_view(hotel_catalog())
    queries = {n.id: print_select(n.tag_query) for n in view.nodes(include_root=False)}
    assert queries[1] == "SELECT metroid, metroname FROM metroarea"
    assert queries[3] == (
        "SELECT * FROM hotel WHERE metro_id = $m.metroid AND starrating > 4"
    )
    assert queries[4] == (
        "SELECT SUM(capacity) AS SUM_capacity FROM confroom "
        "WHERE chotel_id = $h.hotelid"
    )
    assert queries[6] == (
        "SELECT COUNT(a_id) AS COUNT_a_id, startdate "
        "FROM availability, guestroom "
        "WHERE rhotel_id = $h.hotelid AND a_r_id = r_id GROUP BY startdate"
    )


def test_figure1_binding_variables():
    view = figure1_view(hotel_catalog())
    assert {n.id: n.bv for n in view.nodes(include_root=False)} == {
        1: "m", 2: "cs", 3: "h", 4: "s", 5: "c", 6: "a", 7: "v",
    }


def test_figure4_rules():
    stylesheet = figure4_stylesheet()
    matches = [r.match.to_text() for r in stylesheet.rules]
    assert matches == ["/", "metro", "confstat", "metro/hotel/confroom"]
    selects = [
        a.select.to_text()
        for r in stylesheet.rules
        for a in r.apply_templates_nodes()
    ]
    assert selects == ["metro", "hotel/confstat", "../hotel_available/../confroom"]


def test_figure15_differs_only_in_r2():
    fig4 = figure4_stylesheet()
    fig15 = figure15_stylesheet()
    # R2 of Figure 15 has a bare apply-templates body.
    assert len(fig15.rules[1].output) == 1
    assert len(fig4.rules[1].output) == 1  # result_metro wrapper
    assert fig4.rules[1].output[0].tag == "result_metro"


def test_figure17_has_predicates():
    stylesheet = figure17_stylesheet()
    r3_select = stylesheet.rules[2].apply_templates_nodes()[0].select
    assert r3_select.has_predicates()
    assert stylesheet.rules[3].match.has_predicates()


def test_figure25_is_recursive_shape():
    stylesheet = figure25_stylesheet()
    assert stylesheet.rules[0].params[0].name == "idx"
    apply = stylesheet.rules[0].apply_templates_nodes()[0]
    assert apply.with_params[0].name == "idx"


def test_qtree_variant_has_no_parent_axis():
    from repro.xpath.ast import Axis

    stylesheet = qtree_compatible_stylesheet()
    for rule in stylesheet.rules:
        for apply in rule.apply_templates_nodes():
            assert not any(s.axis is Axis.PARENT for s in apply.select.steps)

"""Equivalence tests on the orders/invoicing workload."""

import pytest

from repro.core import compose
from repro.core.optimize import prune_stylesheet_view
from repro.schema_tree import materialize
from repro.workloads.orders import (
    OrdersDataSpec,
    build_orders_database,
    invoice_stylesheet,
    large_lines_stylesheet,
    orders_view,
    summary_stylesheet,
)
from repro.xmlcore import canonical_form, serialize
from repro.xslt import apply_stylesheet


@pytest.fixture(scope="module")
def db():
    database = build_orders_database(OrdersDataSpec(customers=8))
    yield database
    database.close()


@pytest.fixture(scope="module")
def view(db):
    return orders_view(db.catalog)


@pytest.mark.parametrize(
    "stylesheet_factory",
    [invoice_stylesheet, summary_stylesheet, large_lines_stylesheet],
)
def test_equivalence(db, view, stylesheet_factory):
    stylesheet = stylesheet_factory()
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, db.catalog), db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )


@pytest.mark.parametrize(
    "stylesheet_factory",
    [invoice_stylesheet, summary_stylesheet, large_lines_stylesheet],
)
def test_ordered_equivalence(db, view, stylesheet_factory):
    """Every tag query carries ORDER BY, so outputs match in order too."""
    stylesheet = stylesheet_factory()
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, db.catalog), db)
    assert canonical_form(naive, ordered=True) == canonical_form(
        composed, ordered=True
    )


def test_invoice_filters_to_billed_orders(db, view):
    composed = compose(view, invoice_stylesheet(), db.catalog)
    doc = materialize(composed, db)
    bills = [e for e in doc.iter_elements() if e.tag == "bill"]
    assert bills
    naive_doc = materialize(view, db)
    billed = [
        o for o in naive_doc.iter_elements()
        if o.tag == "order" and o.get("status") == "billed"
    ]
    assert len(bills) == len(billed)


def test_status_predicate_pushed_into_sql(db, view):
    from repro.sql.printer import print_select

    composed = compose(view, invoice_stylesheet(), db.catalog)
    bill = next(n for n in composed.nodes(include_root=False) if n.tag == "bill")
    assert "status = 'billed'" in print_select(bill.tag_query)


def test_aggregate_predicate_becomes_outer_filter(db, view):
    """order_total[@total>500]: post-aggregation filter on an ungrouped
    aggregate — the scalar-unbinding path with a converted HAVING."""
    from repro.sql.printer import print_select

    composed = compose(view, summary_stylesheet(), db.catalog)
    big = next(
        n for n in composed.nodes(include_root=False) if n.tag == "big_order"
    )
    sql = print_select(big.tag_query)
    assert "> 500" in sql
    doc = materialize(composed, db)
    for element in doc.iter_elements():
        if element.tag == "big_order":
            assert float(element.get("total")) > 500


def test_pruning_on_orders_workload(db, view):
    composed = compose(view, invoice_stylesheet(), db.catalog)
    before = canonical_form(materialize(composed, db), ordered=True)
    report = prune_stylesheet_view(composed, db.catalog)
    assert report.columns_removed > 0
    after = canonical_form(materialize(composed, db), ordered=True)
    assert before == after


def test_empty_orders_database(view):
    from repro.relational.engine import Database
    from repro.workloads.orders import orders_catalog

    db = Database(orders_catalog())
    stylesheet = invoice_stylesheet()
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, db.catalog), db)
    assert canonical_form(naive) == canonical_form(composed)
    assert serialize(composed) == "<invoices/>"
    db.close()

"""Tests for the Figure 2 schema and its data generator."""

from repro.relational.engine import Database
from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_catalog,
    populate_hotel_database,
)


def test_figure2_tables_present():
    catalog = hotel_catalog()
    for name in (
        "hotelchain", "metroarea", "hotel", "guestroom", "confroom",
        "availability",
    ):
        assert name in catalog


def test_figure2_columns_verbatim():
    catalog = hotel_catalog()
    assert catalog.columns_of("hotel") == [
        "hotelid", "hotelname", "starrating", "chain_id", "metro_id",
        "state_id", "city", "pool", "gym",
    ]
    assert catalog.columns_of("availability") == [
        "a_id", "a_r_id", "startdate", "enddate", "price",
    ]


def test_generator_row_counts():
    spec = HotelDataSpec(metros=2, hotels_per_metro=3, guestrooms_per_hotel=4,
                         confrooms_per_hotel=2, availability_per_room=2)
    db = build_hotel_database(spec)
    assert db.table_count("metroarea") == 2
    assert db.table_count("hotel") == 6
    assert db.table_count("guestroom") == 24
    assert db.table_count("confroom") == 12
    assert db.table_count("availability") == 48
    assert spec.approximate_rows() == 2 + 2 + 6 + 24 + 12 + 48
    db.close()


def test_generator_is_deterministic():
    a = build_hotel_database(HotelDataSpec(seed=5))
    b = build_hotel_database(HotelDataSpec(seed=5))
    rows_a = a.run_sql("SELECT * FROM hotel ORDER BY hotelid")
    rows_b = b.run_sql("SELECT * FROM hotel ORDER BY hotelid")
    assert rows_a == rows_b
    a.close()
    b.close()


def test_different_seeds_differ():
    a = build_hotel_database(HotelDataSpec(seed=1))
    b = build_hotel_database(HotelDataSpec(seed=2))
    rows_a = a.run_sql("SELECT starrating FROM hotel ORDER BY hotelid")
    rows_b = b.run_sql("SELECT starrating FROM hotel ORDER BY hotelid")
    assert rows_a != rows_b
    a.close()
    b.close()


def test_scaled_spec():
    spec = HotelDataSpec(metros=3).scaled(4)
    assert spec.metros == 12
    assert spec.hotels_per_metro == HotelDataSpec().hotels_per_metro


def test_referential_integrity():
    db = build_hotel_database(HotelDataSpec(metros=2))
    orphans = db.run_sql(
        "SELECT COUNT(*) AS n FROM guestroom WHERE rhotel_id NOT IN "
        "(SELECT hotelid FROM hotel)"
    )
    assert orphans[0]["n"] == 0
    orphans = db.run_sql(
        "SELECT COUNT(*) AS n FROM availability WHERE a_r_id NOT IN "
        "(SELECT r_id FROM guestroom)"
    )
    assert orphans[0]["n"] == 0
    db.close()


def test_some_hotels_pass_star_filter():
    db = build_hotel_database(HotelDataSpec(metros=4, hotels_per_metro=4))
    high = db.run_sql("SELECT COUNT(*) AS n FROM hotel WHERE starrating > 4")
    assert 0 < high[0]["n"] < db.table_count("hotel")
    db.close()

"""Tests for the synthetic workload generators."""

from repro.core import compose
from repro.relational.engine import Database
from repro.schema_tree import materialize
from repro.workloads.synthetic import (
    blowup_stylesheet,
    chain_catalog,
    chain_stylesheet,
    chain_view,
    fanout_catalog,
    fanout_stylesheet,
    fanout_view,
    populate_chain,
    populate_fanout,
)
from repro.xmlcore import canonical_form
from repro.xslt import apply_stylesheet


def test_chain_view_structure():
    view = chain_view(4, chain_catalog(4))
    assert view.size() == 4
    tags = [n.tag for n in view.nodes(include_root=False)]
    assert tags == ["n1", "n2", "n3", "n4"]


def test_chain_population_counts():
    catalog = chain_catalog(3)
    db = Database(catalog)
    populate_chain(db, 3, fanout=2, roots=3)
    assert db.table_count("t1") == 3
    assert db.table_count("t2") == 6
    assert db.table_count("t3") == 12
    db.close()


def test_chain_equivalence_partial_depth():
    levels = 4
    catalog = chain_catalog(levels)
    db = Database(catalog)
    populate_chain(db, levels)
    view = chain_view(levels, catalog)
    stylesheet = chain_stylesheet(levels, selected_levels=2)
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, catalog), db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )
    db.close()


def test_fanout_view_and_data():
    branches = 5
    catalog = fanout_catalog(branches)
    db = Database(catalog)
    populate_fanout(db, branches, roots=2, rows_per_branch=3)
    view = fanout_view(branches, catalog)
    assert view.size() == 1 + branches
    doc = materialize(view, db)
    first_doc = doc.child_elements()[0]
    assert len(first_doc.child_elements()) == branches * 3
    db.close()


def test_fanout_equivalence():
    branches = 4
    catalog = fanout_catalog(branches)
    db = Database(catalog)
    populate_fanout(db, branches)
    view = fanout_view(branches, catalog)
    stylesheet = fanout_stylesheet(branches, touched=2)
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(compose(view, stylesheet, catalog), db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )
    db.close()


def test_blowup_stylesheet_equivalence():
    levels = 3
    catalog = chain_catalog(levels)
    db = Database(catalog)
    populate_chain(db, levels, fanout=1, roots=2)
    view = chain_view(levels, catalog)
    stylesheet = blowup_stylesheet(levels)
    naive = apply_stylesheet(stylesheet, materialize(view, db))
    composed = materialize(
        compose(view, stylesheet, catalog, max_nodes=1000), db
    )
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )
    db.close()

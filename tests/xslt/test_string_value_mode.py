"""The interpreter's standard-XSLT semantics (string_value_mode=True).

The publishing model (default) is what composition targets; the standard
mode exists so the interpreter is usable as a plain XSLT subset engine
over arbitrary documents.
"""

from repro.xmlcore.parser import parse_document
from repro.xmlcore.serializer import serialize
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import apply_stylesheet

DOC = parse_document(
    """
<library>
  <book year="1970"><title>Relational Model</title><author>Codd</author></book>
  <book year="1992"><title>Transactions</title><author>Gray</author></book>
</library>
"""
)


def run(stylesheet_text):
    return serialize(
        apply_stylesheet(
            parse_stylesheet(stylesheet_text), DOC, string_value_mode=True
        )
    )


def test_value_of_dot_is_string_value():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="library/book"/></xsl:template>'
        '<xsl:template match="book"><b><xsl:value-of select="title"/></b></xsl:template>'
    )
    assert out == "<b>Relational Model</b><b>Transactions</b>"


def test_value_of_path_takes_first_node():
    out = run(
        '<xsl:template match="/"><all><xsl:value-of select="library/book/author"/></all></xsl:template>'
    )
    assert out == "<all>Codd</all>"


def test_value_of_attribute_is_text_not_attribute():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="library/book"/></xsl:template>'
        '<xsl:template match="book"><y><xsl:value-of select="@year"/></y></xsl:template>'
    )
    assert out == "<y>1970</y><y>1992</y>"


def test_avt_always_produces_string():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="library/book"/></xsl:template>'
        '<xsl:template match="book"><b label="y{@year}"/></xsl:template>'
    )
    assert out == '<b label="y1970"/><b label="y1992"/>'


def test_string_value_predicates():
    out = run(
        '<xsl:template match="/">'
        '<hit><xsl:apply-templates select="library/book[author=\'Gray\']"/></hit>'
        "</xsl:template>"
        '<xsl:template match="book"><xsl:value-of select="title"/></xsl:template>'
    )
    assert out == "<hit>Transactions</hit>"


def test_standard_builtins_copy_text():
    out = run(
        '<xsl:template match="title"><t><xsl:value-of select="."/></t></xsl:template>'
    )
    # No root rule: with string mode + empty builtins nothing happens.
    assert out == ""
    out = serialize(
        apply_stylesheet(
            parse_stylesheet(
                '<xsl:template match="title"><t><xsl:value-of select="."/></t></xsl:template>'
            ),
            DOC,
            string_value_mode=True,
            builtin_rules="standard",
        )
    )
    assert "<t>Relational Model</t>" in out
    assert "Codd" in out  # author text copied through by built-ins

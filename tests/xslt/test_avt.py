"""Tests for attribute value templates (interpreter + composition)."""

import pytest

from repro.errors import StylesheetParseError, UnsupportedFeatureError
from repro.core import compose
from repro.schema_tree import materialize
from repro.workloads.paper import figure1_view
from repro.xmlcore import canonical_form, serialize
from repro.xmlcore.parser import parse_document
from repro.xslt.model import AttributeValueTemplate
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import apply_stylesheet

DOC = parse_document(
    '<metro metroname="chicago"><hotel hotelid="1" starrating="5"/></metro>'
)


def run(stylesheet_text, doc=DOC, **kwargs):
    return serialize(apply_stylesheet(parse_stylesheet(stylesheet_text), doc, **kwargs))


def test_avt_parsing_splits_segments():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a"><x y="pre{@b}post"/></xsl:template>'
    )
    element = stylesheet.rules[0].output[0]
    template = element.avt_attributes["y"]
    assert isinstance(template, AttributeValueTemplate)
    assert template.segments[0] == "pre"
    assert template.segments[2] == "post"
    assert template.single_expression is None


def test_avt_single_expression_detection():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a"><x y="{@b}"/></xsl:template>'
    )
    template = stylesheet.rules[0].output[0].avt_attributes["y"]
    assert template.single_expression is not None


def test_avt_brace_escapes():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a"><x y="a{{b}}c"/></xsl:template>'
    )
    element = stylesheet.rules[0].output[0]
    # Escaped braces stay literal; no expression appears.
    template = element.avt_attributes["y"]
    assert template.segments == ["a{b}c"]


def test_avt_unterminated_raises():
    with pytest.raises(StylesheetParseError):
        parse_stylesheet('<xsl:template match="a"><x y="{@b"/></xsl:template>')


def test_avt_interpreter_rename():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel"><h id="{@hotelid}"/></xsl:template>'
    )
    assert out == '<h id="1"/>'


def test_avt_interpreter_mixed_template():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel"><h label="hotel-{@hotelid}-{@starrating}"/></xsl:template>'
    )
    assert out == '<h label="hotel-1-5"/>'


def test_avt_missing_attribute_omitted_in_publishing_mode():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel"><h id="{@ghost}"/></xsl:template>'
    )
    assert out == "<h/>"


def test_avt_missing_attribute_empty_in_string_mode():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel"><h id="{@ghost}"/></xsl:template>',
        string_value_mode=True,
    )
    assert out == '<h id=""/>'


def test_avt_composes_with_rename(hotel_db):
    view = figure1_view(hotel_db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><city name="{@metroname}" code="{@metroid}">'
        '<xsl:apply-templates select="hotel"/></city></xsl:template>'
        '<xsl:template match="hotel"><h stars="{@starrating}"/></xsl:template>'
    )
    naive = apply_stylesheet(stylesheet, materialize(view, hotel_db))
    composed_view = compose(view, stylesheet, hotel_db.catalog)
    composed = materialize(composed_view, hotel_db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )
    nodes = {n.tag: n for n in composed_view.nodes(include_root=False)}
    assert nodes["city"].data_attributes == {
        "name": "metroname", "code": "metroid",
    }


def test_avt_mixed_template_not_composable(hotel_db):
    view = figure1_view(hotel_db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m label="metro-{@metroid}"/></xsl:template>'
    )
    with pytest.raises(UnsupportedFeatureError) as exc:
        compose(view, stylesheet, hotel_db.catalog)
    assert exc.value.feature == "avt"


def test_avt_on_missing_column_statically_absent(hotel_db):
    view = figure1_view(hotel_db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m g="{@ghost}"/></xsl:template>'
    )
    naive = apply_stylesheet(stylesheet, materialize(view, hotel_db))
    composed = materialize(compose(view, stylesheet, hotel_db.catalog), hotel_db)
    assert canonical_form(naive, ordered=False) == canonical_form(
        composed, ordered=False
    )


def test_avt_survives_flow_control_rewrite():
    out_direct = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel">'
        '<xsl:if test="@starrating &gt; 4"><h id="{@hotelid}"/></xsl:if>'
        "</xsl:template>"
    )
    from repro.core.rewrites.flow_control import lower_flow_control

    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel">'
        '<xsl:if test="@starrating &gt; 4"><h id="{@hotelid}"/></xsl:if>'
        "</xsl:template>"
    )
    lowered = lower_flow_control(stylesheet)
    out_lowered = serialize(apply_stylesheet(lowered, DOC))
    assert out_direct == out_lowered == '<h id="1"/>'

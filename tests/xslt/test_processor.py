"""Unit tests for the PROCESS interpreter (Figure 5)."""

import pytest

from repro.errors import ConflictError, XSLTRuntimeError
from repro.xmlcore.parser import parse_document
from repro.xmlcore.serializer import serialize
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import XSLTProcessor, apply_stylesheet

DOC = parse_document(
    """
<metro metroname="chicago">
  <hotel starrating="5" hotelid="1">
    <confstat SUM_capacity="150"/>
    <confroom capacity="300"/>
  </hotel>
  <hotel starrating="3" hotelid="2">
    <confstat SUM_capacity="80"/>
  </hotel>
</metro>
"""
)


def run(stylesheet_text, doc=DOC, **kwargs):
    return serialize(
        apply_stylesheet(parse_stylesheet(stylesheet_text), doc, **kwargs)
    )


def test_root_rule_fires_first():
    out = run('<xsl:template match="/"><out/></xsl:template>')
    assert out == "<out/>"


def test_apply_templates_recursion():
    out = run(
        '<xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>'
        '<xsl:template match="metro"><m/></xsl:template>'
    )
    assert out == "<r><m/></r>"


def test_unmatched_node_produces_nothing_by_default():
    out = run(
        '<xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>'
    )
    assert out == "<r/>"


def test_standard_builtins_descend():
    # Standard built-ins also copy text nodes through (here: the document's
    # indentation whitespace), so compare ignoring whitespace.
    out = run(
        '<xsl:template match="hotel"><h/></xsl:template>',
        builtin_rules="standard",
    )
    assert "".join(out.split()) == "<h/><h/>"


def test_mode_partitioning():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro" mode="x"/></xsl:template>'
        '<xsl:template match="metro"><wrong/></xsl:template>'
        '<xsl:template match="metro" mode="x"><right/></xsl:template>'
    )
    assert out == "<right/>"


def test_priority_resolution():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel" priority="2"><high/></xsl:template>'
        '<xsl:template match="metro/hotel"><low/></xsl:template>'
    )
    assert out == "<high/><high/>"


def test_default_priorities_prefer_longer_patterns():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel"><name/></xsl:template>'
        '<xsl:template match="metro/hotel"><path/></xsl:template>'
    )
    # metro/hotel has default priority 0.5 > 0.
    assert out == "<path/><path/>"


def test_tie_breaks_pick_later_rule():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro"><first/></xsl:template>'
        '<xsl:template match="metro"><second/></xsl:template>'
    )
    assert out == "<second/>"


def test_conflict_policy_error():
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro"><a/></xsl:template>'
        '<xsl:template match="metro"><b/></xsl:template>'
    )
    processor = XSLTProcessor(stylesheet, conflict_policy="error")
    with pytest.raises(ConflictError):
        processor.process_document(DOC)


def test_value_of_dot_publishing_model():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel/confroom"/></xsl:template>'
        '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>'
    )
    # Publishing model: the element itself (tag + attributes), shallow.
    assert out == '<confroom capacity="300"/>'


def test_value_of_dot_string_mode():
    doc = parse_document("<a><b>text</b></a>")
    out = run(
        '<xsl:template match="/"><r><xsl:apply-templates select="a/b"/></r></xsl:template>'
        '<xsl:template match="b"><xsl:value-of select="."/></xsl:template>',
        doc=doc,
        string_value_mode=True,
    )
    assert out == "<r>text</r>"


def test_value_of_attribute_attaches_to_enclosing_element():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel">'
        '<h><xsl:value-of select="@hotelid"/></h>'
        "</xsl:template>"
    )
    # Section 4.3.1: the attribute attaches to <h>.
    assert out == '<h hotelid="1"/><h hotelid="2"/>'


def test_value_of_missing_attribute_no_attach():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel"><h><xsl:value-of select="@ghost"/></h></xsl:template>'
    )
    assert out == "<h/><h/>"


def test_value_of_path_emits_all_selected():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro"><m><xsl:value-of select="hotel/confstat"/></m></xsl:template>'
    )
    assert out == '<m><confstat SUM_capacity="150"/><confstat SUM_capacity="80"/></m>'


def test_copy_of_is_deep():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel[@starrating&gt;4]"><xsl:copy-of select="."/></xsl:template>'
    )
    assert "confroom" in out and out.startswith("<hotel")


def test_if_instruction():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel">'
        '<xsl:if test="@starrating &gt; 4"><lux/></xsl:if>'
        "</xsl:template>"
    )
    assert out == "<lux/>"


def test_choose_instruction():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel"><xsl:choose>'
        '<xsl:when test="@starrating &gt; 4"><lux/></xsl:when>'
        '<xsl:when test="@starrating &gt; 2"><mid/></xsl:when>'
        "<xsl:otherwise><low/></xsl:otherwise>"
        "</xsl:choose></xsl:template>"
    )
    assert out == "<lux/><mid/>"


def test_for_each_instruction():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro">'
        '<xsl:for-each select="hotel"><h><xsl:value-of select="@hotelid"/></h></xsl:for-each>'
        "</xsl:template>"
    )
    assert out == '<h hotelid="1"/><h hotelid="2"/>'


def test_params_flow_through_apply_templates():
    out = run(
        '<xsl:template match="/">'
        '<xsl:apply-templates select="metro"><xsl:with-param name="k" select="5"/></xsl:apply-templates>'
        "</xsl:template>"
        '<xsl:template match="metro"><xsl:param name="k"/>'
        '<xsl:if test="$k = 5"><got/></xsl:if>'
        "</xsl:template>"
    )
    assert out == "<got/>"


def test_param_default_used_when_not_passed():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>'
        '<xsl:template match="metro"><xsl:param name="k" select="7"/>'
        '<xsl:if test="$k = 7"><default/></xsl:if>'
        "</xsl:template>"
    )
    assert out == "<default/>"


def test_infinite_recursion_guard():
    doc = parse_document("<a><a><a/></a></a>")
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><xsl:apply-templates select="a"/></xsl:template>'
        '<xsl:template match="a"><xsl:apply-templates select="."/></xsl:template>'
    )
    processor = XSLTProcessor(stylesheet, max_depth=20)
    with pytest.raises(XSLTRuntimeError):
        processor.process_document(doc)


def test_stats_counters():
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><r><xsl:apply-templates select="metro/hotel"/></r></xsl:template>'
        '<xsl:template match="hotel"><h/></xsl:template>'
    )
    processor = XSLTProcessor(stylesheet)
    processor.process_document(DOC)
    assert processor.stats.contexts_processed == 3  # root + 2 hotels
    assert processor.stats.rules_fired == 3
    assert processor.stats.elements_output == 3  # <r> + 2 <h>


def test_text_output_in_rule_body():
    out = run(
        '<xsl:template match="/"><r><xsl:text>hi</xsl:text></r></xsl:template>'
    )
    assert out == "<r>hi</r>"


def test_predicates_in_select():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel[@starrating&gt;4]"/></xsl:template>'
        '<xsl:template match="hotel"><h/></xsl:template>'
    )
    assert out == "<h/>"


def test_predicates_in_match():
    out = run(
        '<xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>'
        '<xsl:template match="hotel[@starrating&gt;4]"><lux/></xsl:template>'
        '<xsl:template match="hotel"><plain/></xsl:template>'
    )
    # Predicate pattern has priority 0.5 > 0 so it wins where it matches.
    assert out == "<lux/><plain/>"

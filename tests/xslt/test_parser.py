"""Unit tests for the stylesheet parser."""

import pytest

from repro.errors import StylesheetParseError
from repro.xpath.ast import AttributeRef, ContextRef
from repro.xslt.model import (
    ApplyTemplates,
    Choose,
    ForEach,
    IfInstruction,
    LiteralElement,
    TextOutput,
    ValueOf,
)
from repro.xslt.parser import parse_stylesheet


def test_bare_template_sequence():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a"><out/></xsl:template>'
        '<xsl:template match="b"><out2/></xsl:template>'
    )
    assert stylesheet.size() == 2
    assert stylesheet.rules[0].match.to_text() == "a"


def test_wrapped_stylesheet_document():
    stylesheet = parse_stylesheet(
        '<?xml version="1.0"?>'
        '<xsl:stylesheet version="1.0">'
        '<xsl:template match="/"><r/></xsl:template>'
        "</xsl:stylesheet>"
    )
    assert stylesheet.size() == 1
    assert stylesheet.rules[0].match.is_root


def test_modes_and_priority():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a" mode="m" priority="2.5"><x/></xsl:template>'
    )
    rule = stylesheet.rules[0]
    assert rule.mode == "m"
    assert rule.priority == 2.5
    assert rule.effective_priority() == 2.5


def test_default_mode_is_empty_string():
    stylesheet = parse_stylesheet('<xsl:template match="a"/>')
    assert stylesheet.rules[0].mode == ""


def test_apply_templates_with_mode():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a">'
        '<xsl:apply-templates select="b/c" mode="mm"/>'
        "</xsl:template>"
    )
    apply = stylesheet.rules[0].output[0]
    assert isinstance(apply, ApplyTemplates)
    assert apply.select.to_text() == "b/c"
    assert apply.mode == "mm"


def test_apply_templates_default_select():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a"><xsl:apply-templates/></xsl:template>'
    )
    assert stylesheet.rules[0].output[0].select.to_text() == "*"


def test_with_param():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a">'
        '<xsl:apply-templates select="b">'
        '<xsl:with-param name="idx" select="$idx - 1"/>'
        "</xsl:apply-templates>"
        "</xsl:template>"
    )
    apply = stylesheet.rules[0].output[0]
    assert apply.with_params[0].name == "idx"


def test_params_at_rule_start():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a">'
        '<xsl:param name="idx" select="10"/>'
        "<out/></xsl:template>"
    )
    rule = stylesheet.rules[0]
    assert rule.params[0].name == "idx"
    assert isinstance(rule.output[0], LiteralElement)


def test_value_of_variants():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a">'
        '<xsl:value-of select="."/>'
        '<xsl:value-of select="@x"/>'
        '<xsl:value-of select="b/c"/>'
        "</xsl:template>"
    )
    selects = [n.select for n in stylesheet.rules[0].output]
    assert isinstance(selects[0], ContextRef)
    assert isinstance(selects[1], AttributeRef)


def test_flow_control_instructions():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a">'
        '<xsl:if test="@x &gt; 1"><y/></xsl:if>'
        "<xsl:choose>"
        '<xsl:when test="@a = 1"><p/></xsl:when>'
        "<xsl:otherwise><q/></xsl:otherwise>"
        "</xsl:choose>"
        '<xsl:for-each select="b"><z/></xsl:for-each>'
        "</xsl:template>"
    )
    body = stylesheet.rules[0].output
    assert isinstance(body[0], IfInstruction)
    assert isinstance(body[1], Choose)
    assert len(body[1].whens) == 1
    assert body[1].otherwise
    assert isinstance(body[2], ForEach)


def test_literal_elements_nested():
    stylesheet = parse_stylesheet(
        '<xsl:template match="/">'
        '<HTML><BODY class="x"><xsl:apply-templates select="a"/></BODY></HTML>'
        "</xsl:template>"
    )
    html = stylesheet.rules[0].output[0]
    assert html.tag == "HTML"
    body = html.children[0]
    assert body.attributes == {"class": "x"}
    assert isinstance(body.children[0], ApplyTemplates)


def test_text_output():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a"><b>hello</b></xsl:template>'
    )
    assert isinstance(stylesheet.rules[0].output[0].children[0], TextOutput)


def test_whitespace_only_text_dropped():
    stylesheet = parse_stylesheet(
        '<xsl:template match="a">\n  <b/>\n</xsl:template>'
    )
    assert len(stylesheet.rules[0].output) == 1


@pytest.mark.parametrize(
    "bad",
    [
        "<xsl:template><x/></xsl:template>",  # missing match
        '<xsl:template match="a"><xsl:value-of/></xsl:template>',  # no select
        '<xsl:template match="a"><xsl:unknown/></xsl:template>',
        '<xsl:template match="a"><xsl:choose/></xsl:template>',  # no when
        '<xsl:template match="a" priority="high"/>',  # bad priority
        "<notxsl/>",
        '<xsl:template match="a"><b/><xsl:param name="p"/></xsl:template>',
    ],
)
def test_malformed_stylesheets_raise(bad):
    with pytest.raises(StylesheetParseError):
        parse_stylesheet(bad)


def test_empty_stylesheet_raises():
    with pytest.raises(StylesheetParseError):
        parse_stylesheet("<xsl:stylesheet></xsl:stylesheet>")


def test_model_helpers():
    from repro.workloads.paper import figure4_stylesheet

    stylesheet = figure4_stylesheet()
    assert stylesheet.size() == 4
    assert stylesheet.max_apply_templates() == 1
    assert stylesheet.modes() == [""]
    assert len(stylesheet.rules_for_mode("")) == 4
    # R3 has one apply-templates.
    assert len(stylesheet.rules[2].apply_templates_nodes()) == 1

"""referenced_tables: the read-set extractor behind cache invalidation.

The maintenance layer scopes invalidation to a plan's base-table read
set (:func:`repro.serving.fingerprint.view_read_set`), which bottoms out
in :func:`repro.sql.analysis.referenced_tables`. A table it misses is a
cached response that never goes stale — so every place a table name can
hide (joins, derived tables, EXISTS / IN / scalar subqueries, arbitrary
nesting) gets its own test, plus a property over randomly generated
query trees with a known expected read set.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.sql.analysis import referenced_tables
from repro.sql.parser import parse_select


def tables_of(sql: str) -> list[str]:
    return referenced_tables(parse_select(sql))


# ---------------------------------------------------------------------------
# Each hiding place, individually
# ---------------------------------------------------------------------------


def test_single_table():
    assert tables_of("SELECT * FROM hotel") == ["hotel"]


def test_joined_tables_in_order():
    assert tables_of(
        "SELECT * FROM hotel, confroom WHERE hotelid = chotel_id"
    ) == ["hotel", "confroom"]


def test_aliases_do_not_leak():
    assert tables_of("SELECT h.hotelid FROM hotel AS h") == ["hotel"]


def test_duplicate_references_are_reported_once():
    assert tables_of(
        "SELECT * FROM hotel AS a, hotel AS b WHERE a.hotelid = b.hotelid"
    ) == ["hotel"]


def test_derived_table():
    assert tables_of(
        "SELECT T.x FROM (SELECT hotelid AS x FROM hotel) AS T"
    ) == ["hotel"]


def test_nested_derived_tables():
    assert tables_of(
        "SELECT * FROM (SELECT * FROM (SELECT hotelid FROM hotel) AS A) AS B"
    ) == ["hotel"]


def test_exists_subquery():
    assert tables_of(
        "SELECT hotelid FROM hotel WHERE EXISTS "
        "(SELECT * FROM confroom WHERE chotel_id = hotelid)"
    ) == ["hotel", "confroom"]


def test_in_subquery():
    assert tables_of(
        "SELECT hotelid FROM hotel WHERE hotelid IN "
        "(SELECT chotel_id FROM confroom)"
    ) == ["hotel", "confroom"]


def test_scalar_subquery_in_select_list():
    assert tables_of(
        "SELECT hotelid, (SELECT MAX(capacity) FROM confroom) AS cap "
        "FROM hotel"
    ) == ["hotel", "confroom"]


def test_subquery_inside_derived_table():
    assert tables_of(
        "SELECT * FROM (SELECT hotelid FROM hotel WHERE EXISTS "
        "(SELECT * FROM availability)) AS T, metroarea"
    ) == ["hotel", "availability", "metroarea"]


def test_deeply_mixed_nesting():
    sql = (
        "SELECT * FROM confroom, (SELECT * FROM hotel) AS T "
        "WHERE EXISTS (SELECT * FROM guestroom WHERE r_id IN "
        "(SELECT a_r_id FROM availability)) "
        "AND capacity > (SELECT COUNT(*) FROM metroarea)"
    )
    assert tables_of(sql) == [
        "confroom", "hotel", "guestroom", "availability", "metroarea",
    ]


# ---------------------------------------------------------------------------
# Property: generated query trees with a known read set
# ---------------------------------------------------------------------------

_TABLES = ("t_a", "t_b", "t_c", "t_d", "t_e")


def _build_query(tree) -> tuple[str, set[str]]:
    """Render a random query tree to SQL plus its expected read set.

    ``tree`` is ``(base_tables, wrappers)`` where each wrapper either
    nests the query so far as a derived table or attaches a random
    EXISTS / IN / scalar subquery over a fresh table.
    """
    base_tables, wrappers = tree
    expected = set(base_tables)
    sql = f"SELECT * FROM {', '.join(base_tables)}"
    has_where = False
    for kind, table in wrappers:
        expected.add(table)
        if kind == "derived":
            sql = f"SELECT * FROM ({sql}) AS D, {table}"
            has_where = False
            continue
        glue = "AND" if has_where else "WHERE"
        has_where = True
        if kind == "exists":
            sql = f"{sql} {glue} EXISTS (SELECT * FROM {table})"
        elif kind == "in":
            sql = f"{sql} {glue} 1 IN (SELECT 1 FROM {table})"
        else:  # scalar
            sql = f"{sql} {glue} 1 > (SELECT COUNT(*) FROM {table})"
    return sql, expected


query_trees = st.tuples(
    st.lists(st.sampled_from(_TABLES), min_size=1, max_size=3, unique=True),
    st.lists(
        st.tuples(
            st.sampled_from(("derived", "exists", "in", "scalar")),
            st.sampled_from(_TABLES),
        ),
        max_size=4,
    ),
)


@given(query_trees)
def test_generated_queries_report_their_exact_read_set(tree):
    sql, expected = _build_query(tree)
    assert set(tables_of(sql)) == expected


@given(query_trees)
def test_read_set_has_no_duplicates(tree):
    sql, _ = _build_query(tree)
    found = tables_of(sql)
    assert len(found) == len(set(found))

"""Unit tests for the delta-pushdown rewrites and their soundness analysis.

Row-level pushdown (:func:`push_key_predicate`), block-level pushdown
(:func:`restrict_output_in`), and the static analysis that licenses
block maintenance (:func:`membership_bearing_columns`) — the paper-side
machinery behind ``--maintenance delta``'s row and block splices.
"""

import pytest

from repro.errors import SQLTransformError
from repro.sql.analysis import (
    DictCatalog,
    load_bearing_columns,
    membership_bearing_columns,
    sole_table_binding,
)
from repro.sql.parser import parse_select
from repro.sql.printer import print_select
from repro.sql.transform import push_key_predicate, restrict_output_in

CATALOG = DictCatalog(
    {
        "metroarea": ["metroid", "metroname"],
        "hotel": ["hotelid", "hotelname", "starrating", "metro_id", "pool"],
        "confroom": ["c_id", "chotel_id", "capacity"],
        "availability": ["a_id", "a_r_id", "startdate", "price"],
    }
)


# -- push_key_predicate ------------------------------------------------------


def test_push_key_predicate_appends_sorted_in_list():
    query = parse_select("SELECT * FROM hotel WHERE starrating > 4")
    binding = push_key_predicate(query, "hotel", "hotelid", [3, 1, 2])
    assert binding == "hotel"
    sql = print_select(query)
    assert "hotel.hotelid IN (1, 2, 3)" in sql
    assert "starrating > 4" in sql  # original predicate survives


def test_push_key_predicate_uses_alias_binding():
    query = parse_select("SELECT h.hotelid FROM hotel AS h")
    assert push_key_predicate(query, "hotel", "hotelid", [7]) == "h"
    assert "h.hotelid IN (7)" in print_select(query)


def test_push_key_predicate_rejects_self_join():
    query = parse_select(
        "SELECT * FROM hotel AS a, hotel AS b WHERE a.metro_id = b.metro_id"
    )
    with pytest.raises(SQLTransformError):
        push_key_predicate(query, "hotel", "hotelid", [1])


def test_push_key_predicate_rejects_subquery_occurrence():
    # The derived-table copy of the table would stay unrestricted.
    query = parse_select(
        "SELECT * FROM hotel, "
        "(SELECT metro_id FROM hotel GROUP BY metro_id) AS d "
        "WHERE hotel.metro_id = d.metro_id"
    )
    assert sole_table_binding(query, "hotel") is None
    with pytest.raises(SQLTransformError):
        push_key_predicate(query, "hotel", "hotelid", [1])


def test_push_key_predicate_rejects_empty_keys():
    query = parse_select("SELECT * FROM hotel")
    with pytest.raises(SQLTransformError):
        push_key_predicate(query, "hotel", "hotelid", [])


# -- restrict_output_in ------------------------------------------------------


def test_restrict_output_in_targets_source_column():
    query = parse_select(
        "SELECT SUM(capacity) AS SUM_capacity, chotel_id AS hid "
        "FROM confroom GROUP BY chotel_id"
    )
    restrict_output_in(query, "hid", [5, 2])
    # The predicate lands on the underlying column, in WHERE (it must
    # filter whole groups, not grouped results).
    assert "chotel_id IN (2, 5)" in print_select(query)


def test_restrict_output_in_rejects_computed_output():
    query = parse_select("SELECT COUNT(c_id) AS n FROM confroom")
    with pytest.raises(SQLTransformError):
        restrict_output_in(query, "n", [1])


def test_restrict_output_in_rejects_unknown_output_and_empty_values():
    query = parse_select("SELECT chotel_id FROM confroom")
    with pytest.raises(SQLTransformError):
        restrict_output_in(query, "nope", [1])
    with pytest.raises(SQLTransformError):
        restrict_output_in(query, "chotel_id", [])


# -- membership_bearing_columns ----------------------------------------------


def test_aggregate_payload_is_not_membership_bearing():
    # capacity only feeds the SUM projection: a capacity change can
    # alter the group's aggregate but never move a row between blocks.
    query = parse_select(
        "SELECT SUM(capacity) AS SUM_capacity, chotel_id "
        "FROM confroom GROUP BY chotel_id"
    )
    bearing = membership_bearing_columns(query, "confroom", CATALOG)
    assert "capacity" not in bearing
    # The grouping column is skipped only at the membership level;
    # regrouping still makes it load-bearing for the row path.
    assert "chotel_id" in load_bearing_columns(query, "confroom", CATALOG)


def test_where_columns_are_membership_bearing():
    query = parse_select(
        "SELECT hotelid FROM hotel WHERE starrating > 4 AND metro_id = 1"
    )
    bearing = membership_bearing_columns(query, "hotel", CATALOG)
    assert {"starrating", "metro_id"} <= bearing


def test_top_level_group_by_is_not_membership_bearing():
    # Regrouping happens inside the re-evaluated block; only the join
    # column decides which block a row belongs to.
    query = parse_select(
        "SELECT startdate, COUNT(a_id) AS n FROM availability "
        "GROUP BY startdate"
    )
    bearing = membership_bearing_columns(query, "availability", CATALOG)
    assert "startdate" not in bearing
    assert "startdate" in load_bearing_columns(
        query, "availability", CATALOG
    )


def test_correlation_equality_is_membership_bearing():
    # Figure 1 node 7: the changed column steers which derived context
    # group a row pairs with — across sibling blocks — so block
    # maintenance must decline (see hotel_calendar_write).
    query = parse_select(
        "SELECT COUNT(a_id) AS n, d.startdate FROM availability, "
        "(SELECT startdate FROM availability GROUP BY startdate) AS d "
        "WHERE availability.startdate = d.startdate GROUP BY d.startdate"
    )
    bearing = membership_bearing_columns(query, "availability", CATALOG)
    assert "startdate" in bearing


def test_having_and_subquery_references_still_count():
    query = parse_select(
        "SELECT chotel_id FROM confroom GROUP BY chotel_id "
        "HAVING SUM(capacity) > 100"
    )
    assert "capacity" in membership_bearing_columns(
        query, "confroom", CATALOG
    )
    query = parse_select(
        "SELECT hotelid FROM hotel WHERE EXISTS "
        "(SELECT c_id FROM confroom WHERE chotel_id = hotelid "
        "AND capacity > 50)"
    )
    assert "capacity" in membership_bearing_columns(
        query, "confroom", CATALOG
    )

"""Unit tests for parameter utilities."""

from repro.sql.ast import ColumnRef, ParamRef
from repro.sql.params import (
    collect_params,
    map_exprs,
    map_exprs_scoped,
    placeholder_name,
    referenced_vars,
    referenced_vars_scoped,
    rename_param_vars,
    to_placeholders,
    walk_exprs,
)
from repro.sql.parser import parse_select
from repro.sql.printer import print_select


def test_collect_params_ordered_and_distinct():
    query = parse_select(
        "SELECT * FROM t WHERE a = $m.x AND b = $h.y AND c = $m.x"
    )
    params = collect_params(query)
    assert params == [ParamRef("m", "x"), ParamRef("h", "y")]


def test_params_found_in_subqueries():
    query = parse_select(
        "SELECT * FROM (SELECT * FROM u WHERE u.a = $p.inner) AS d "
        "WHERE EXISTS (SELECT * FROM w WHERE w.b = $q.nested)"
    )
    assert referenced_vars(query) == ["p", "q"]


def test_scoped_vars_skip_derived_tables():
    query = parse_select(
        "SELECT * FROM (SELECT * FROM u WHERE u.a = $p.inner) AS d "
        "WHERE EXISTS (SELECT * FROM w WHERE w.b = $q.nested)"
    )
    assert referenced_vars_scoped(query) == ["q"]


def test_params_in_group_by_and_having():
    query = parse_select(
        "SELECT COUNT(a) FROM t GROUP BY b HAVING COUNT(a) > $h.lim"
    )
    assert referenced_vars(query) == ["h"]


def test_rename_param_vars_everywhere():
    query = parse_select(
        "SELECT * FROM (SELECT * FROM u WHERE x = $m.a) AS d WHERE y = $m.b"
    )
    rename_param_vars(query, {"m": "m_new"})
    assert referenced_vars(query) == ["m_new"]
    assert "$m_new.a" in print_select(query)


def test_map_exprs_scoped_leaves_derived_tables():
    query = parse_select(
        "SELECT * FROM (SELECT * FROM u WHERE x = $m.a) AS d WHERE y = $m.b"
    )

    def fn(expr):
        if isinstance(expr, ParamRef) and expr.var == "m":
            return ColumnRef(expr.column, table="TEMP")
        return None

    map_exprs_scoped(query, fn)
    text = print_select(query)
    assert "TEMP.b" in text
    assert "$m.a" in text  # untouched inside the derived table


def test_map_exprs_rewrites_in_exists():
    query = parse_select("SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE x = $m.a)")

    def fn(expr):
        if isinstance(expr, ParamRef):
            return ColumnRef("replaced")
        return None

    map_exprs(query, fn)
    assert referenced_vars(query) == []


def test_to_placeholders():
    query = parse_select("SELECT * FROM t WHERE a = $m.x")
    sql, params = to_placeholders(query)
    assert ":m__x" in sql
    assert placeholder_name(params[0]) == "m__x"


def test_walk_exprs_sees_order_by():
    query = parse_select("SELECT a FROM t ORDER BY $p.k")
    assert any(
        isinstance(e, ParamRef) and e.var == "p" for e in walk_exprs(query)
    )

"""Unit tests for the SQL-subset parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    DerivedTable,
    ExistsExpr,
    FuncCall,
    InExpr,
    LiteralValue,
    ParamRef,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.parser import parse_select


def test_select_star():
    query = parse_select("SELECT * FROM hotel")
    assert isinstance(query.items[0].expr, Star)
    assert query.from_items == [TableRef("hotel")]


def test_select_columns_and_aliases():
    query = parse_select("SELECT a, b AS bb, t.c FROM t")
    assert query.items[0].expr == ColumnRef("a")
    assert query.items[1].alias == "bb"
    assert query.items[2].expr == ColumnRef("c", table="t")


def test_table_star():
    query = parse_select("SELECT TEMP.* FROM hotel AS TEMP")
    assert query.items[0].expr == Star("TEMP")
    assert query.from_items[0].alias == "TEMP"


def test_implicit_alias():
    query = parse_select("SELECT x FROM hotel h")
    assert query.from_items[0].alias == "h"


def test_parameters():
    query = parse_select("SELECT * FROM hotel WHERE metro_id = $m.metroid")
    condition = query.where
    assert condition == BinOp("=", ColumnRef("metro_id"), ParamRef("m", "metroid"))


def test_unqualified_parameter_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_select("SELECT * FROM t WHERE x = $m")


def test_aggregates():
    query = parse_select("SELECT SUM(capacity), COUNT(*) FROM confroom")
    assert query.items[0].expr == FuncCall("SUM", (ColumnRef("capacity"),))
    assert query.items[1].expr == FuncCall("COUNT", star=True)


def test_where_boolean_tree():
    query = parse_select("SELECT * FROM t WHERE a = 1 AND (b = 2 OR NOT c = 3)")
    assert query.where.op == "AND"
    assert query.where.right.op == "OR"
    assert isinstance(query.where.right.right, UnaryOp)


def test_comparison_normalization():
    query = parse_select("SELECT * FROM t WHERE a != 1")
    assert query.where.op == "<>"


def test_is_null_and_is_not_null():
    query = parse_select("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
    left, right = query.where.left, query.where.right
    assert left == BinOp("IS", ColumnRef("a"), LiteralValue(None))
    assert isinstance(right, UnaryOp) and right.op == "NOT"


def test_exists_subquery():
    query = parse_select(
        "SELECT * FROM confroom WHERE EXISTS "
        "(SELECT * FROM availability WHERE a_r_id = r_id)"
    )
    assert isinstance(query.where, ExistsExpr)
    assert query.where.select.from_items[0].name == "availability"


def test_in_value_list():
    query = parse_select("SELECT * FROM t WHERE a IN (1, 2, 3)")
    assert isinstance(query.where, InExpr)
    assert len(query.where.values) == 3


def test_not_in_subquery():
    query = parse_select("SELECT * FROM t WHERE a NOT IN (SELECT b FROM u)")
    assert isinstance(query.where, UnaryOp)
    assert isinstance(query.where.operand, InExpr)
    assert query.where.operand.select is not None


def test_derived_table():
    query = parse_select(
        "SELECT * FROM confroom, (SELECT * FROM hotel WHERE starrating > 4) AS TEMP "
        "WHERE chotel_id = TEMP.hotelid"
    )
    derived = query.from_items[1]
    assert isinstance(derived, DerivedTable)
    assert derived.alias == "TEMP"
    assert derived.select.from_items[0].name == "hotel"


def test_group_by_and_having():
    query = parse_select(
        "SELECT COUNT(a_id), startdate FROM availability "
        "GROUP BY startdate HAVING COUNT(a_id) > 10"
    )
    assert query.group_by == [ColumnRef("startdate")]
    assert query.having.op == ">"


def test_order_by():
    query = parse_select("SELECT * FROM t ORDER BY a, b DESC")
    assert query.order_by[0].ascending
    assert not query.order_by[1].ascending


def test_distinct():
    assert parse_select("SELECT DISTINCT a FROM t").distinct


def test_string_literal_with_escaped_quote():
    query = parse_select("SELECT * FROM t WHERE name = 'o''brien'")
    assert query.where.right == LiteralValue("o'brien")


def test_numeric_literals():
    query = parse_select("SELECT * FROM t WHERE a = 1 AND b = 2.5 AND c = -3")
    conjuncts = []

    def collect(e):
        if isinstance(e, BinOp) and e.op == "AND":
            collect(e.left)
            collect(e.right)
        else:
            conjuncts.append(e)

    collect(query.where)
    assert conjuncts[0].right == LiteralValue(1)
    assert conjuncts[1].right == LiteralValue(2.5)
    assert conjuncts[2].right == UnaryOp("-", LiteralValue(3))


def test_arithmetic_precedence():
    query = parse_select("SELECT * FROM t WHERE a = 1 + 2 * 3")
    assert query.where.right.op == "+"
    assert query.where.right.right.op == "*"


def test_keywords_case_insensitive():
    query = parse_select("select * from t where a is null group by a having a > 1")
    assert query.group_by == [ColumnRef("a")]


@pytest.mark.parametrize(
    "bad",
    [
        "SELECT",
        "SELECT FROM t",
        "SELECT * FROM",
        "SELECT * FROM t WHERE",
        "SELECT * FROM (SELECT * FROM t)",  # derived table needs alias
        "SELECT * FROM t extra garbage !",
    ],
)
def test_malformed_sql_raises(bad):
    with pytest.raises(SQLSyntaxError):
        parse_select(bad)


def test_paper_query_qs():
    # The unbound query of Section 4.2.1.
    query = parse_select(
        "SELECT SUM(capacity), TEMP.* FROM confroom, "
        "(SELECT * FROM hotel WHERE metro_id=$m.metroid AND starrating > 4) AS TEMP "
        "WHERE chotel_id=TEMP.hotelid "
        "GROUP BY TEMP.hotelid, TEMP.pool, TEMP.gym"
    )
    assert len(query.group_by) == 3
    assert isinstance(query.items[1].expr, Star)


def test_scalar_subquery_in_expression():
    from repro.sql.ast import ScalarSubquery

    query = parse_select(
        "SELECT (SELECT SUM(capacity) FROM confroom WHERE chotel_id = h.hotelid) AS s "
        "FROM hotel AS h"
    )
    assert isinstance(query.items[0].expr, ScalarSubquery)
    assert query.items[0].alias == "s"

"""Unit tests for the structural transforms behind UNBIND."""

import pytest

from repro.errors import SQLTransformError
from repro.sql.analysis import DictCatalog, output_columns
from repro.sql.params import referenced_vars
from repro.sql.parser import parse_select
from repro.sql.printer import print_select
from repro.sql.transform import (
    carry_parent_columns,
    fresh_alias,
    inline_parameter,
    inline_parameter_deep,
    project_columns,
    qualify_bare_stars,
    qualify_unqualified_columns,
    used_aliases,
)

CATALOG = DictCatalog(
    {
        "metroarea": ["metroid", "metroname"],
        "hotel": ["hotelid", "hotelname", "starrating", "metro_id"],
        "confroom": ["c_id", "chotel_id", "capacity"],
    }
)


def hotel_query():
    return parse_select(
        "SELECT * FROM hotel WHERE metro_id = $m.metroid AND starrating > 4"
    )


def confstat_query():
    return parse_select(
        "SELECT SUM(capacity) AS SUM_capacity FROM confroom "
        "WHERE chotel_id = $h.hotelid"
    )


def test_used_aliases_sees_all_scopes():
    query = parse_select(
        "SELECT * FROM a1, (SELECT * FROM a2) AS d "
        "WHERE EXISTS (SELECT * FROM a3)"
    )
    assert used_aliases(query) == {"a1", "d", "a2", "a3"}


def test_fresh_alias_follows_paper_convention():
    query = parse_select("SELECT * FROM t")
    assert fresh_alias(query) == "TEMP"
    query = parse_select("SELECT * FROM t, (SELECT * FROM u) AS TEMP")
    assert fresh_alias(query) == "TEMP1"


def test_qualify_bare_stars():
    query = parse_select("SELECT * FROM hotel, confroom")
    qualify_bare_stars(query)
    assert print_select(query).startswith("SELECT hotel.*, confroom.*")


def test_inline_parameter_basic():
    query = confstat_query()
    alias = inline_parameter(query, "h", hotel_query())
    assert alias == "TEMP"
    assert "h" not in referenced_vars(query) or True  # replaced at own scope
    text = print_select(query)
    assert "TEMP.hotelid" in text
    assert "(SELECT * FROM hotel" in text


def test_carry_parent_columns_adds_group_by_for_aggregates():
    query = confstat_query()
    alias = inline_parameter(query, "h", hotel_query())
    exposure = carry_parent_columns(query, alias, CATALOG)
    assert exposure["hotelid"] == "hotelid"
    assert len(query.group_by) == 4  # all hotel columns
    assert output_columns(query, CATALOG) == [
        "SUM_capacity", "hotelid", "hotelname", "starrating", "metro_id",
    ]


def test_carry_parent_columns_no_group_by_without_aggregate():
    query = parse_select("SELECT capacity FROM confroom WHERE chotel_id = $h.hotelid")
    alias = inline_parameter(query, "h", hotel_query())
    carry_parent_columns(query, alias, CATALOG)
    assert query.group_by == []


def test_carry_parent_columns_aliases_collisions():
    query = parse_select(
        "SELECT capacity, c_id AS hotelid FROM confroom WHERE chotel_id = $h.hotelid"
    )
    alias = inline_parameter(query, "h", hotel_query())
    exposure = carry_parent_columns(query, alias, CATALOG)
    assert exposure["hotelid"] == "TEMP_hotelid"
    assert "TEMP.hotelid AS TEMP_hotelid" in print_select(query)


def test_carry_unknown_alias_raises():
    with pytest.raises(SQLTransformError):
        carry_parent_columns(parse_select("SELECT * FROM t"), "nope", CATALOG)


def test_inline_deep_requires_reference():
    with pytest.raises(SQLTransformError):
        inline_parameter_deep(
            parse_select("SELECT * FROM t"), "m", hotel_query(), CATALOG
        )


def test_inline_deep_nests_into_derived_table():
    """The Figure 16 shape: the variable is only referenced inside TEMP."""
    query = confstat_query()
    alias = inline_parameter(query, "h", hotel_query())
    carry_parent_columns(query, alias, CATALOG)
    # Now $m.metroid lives only inside the TEMP derived table.
    metro = parse_select("SELECT metroid, metroname FROM metroarea")
    exposure = inline_parameter_deep(query, "m", metro, CATALOG)
    text = print_select(query)
    assert "(SELECT metroid, metroname FROM metroarea)" in text
    assert referenced_vars(query) == []
    # metro's columns surface at the top level and join the GROUP BY.
    outputs = output_columns(query, CATALOG)
    assert exposure["metroid"] in outputs
    assert exposure["metroname"] in outputs
    assert any("metroid" in print_select(query) for _ in [0])
    # The derived table itself must not reference $m anymore.
    assert "$m" not in text


def test_inline_deep_own_scope_reference():
    query = parse_select("SELECT capacity FROM confroom WHERE chotel_id = $h.hotelid")
    exposure = inline_parameter_deep(query, "h", hotel_query(), CATALOG)
    assert exposure["hotelid"] == "hotelid"
    assert referenced_vars(query) == ["m"]  # hotel's own parameter remains


def test_inline_deep_exists_scope():
    query = parse_select(
        "SELECT capacity FROM confroom "
        "WHERE EXISTS (SELECT * FROM hotel WHERE hotelid = $h.hotelid)"
    )
    inline_parameter_deep(query, "h", hotel_query(), CATALOG)
    text = print_select(query)
    # The EXISTS body correlates with the top-level TEMP alias - legal SQL.
    assert "hotelid = TEMP.hotelid" in text


def test_qualify_unqualified_columns_scoping():
    query = parse_select(
        "SELECT capacity FROM confroom "
        "WHERE chotel_id = 1 AND EXISTS "
        "(SELECT * FROM hotel WHERE hotelid = chotel_id)"
    )
    qualify_unqualified_columns(query, CATALOG)
    text = print_select(query)
    assert "confroom.chotel_id = 1" in text
    # Inside EXISTS: hotelid is the body's own; chotel_id correlates out.
    assert "hotel.hotelid = confroom.chotel_id" in text


def test_qualify_leaves_aliases_alone():
    query = parse_select(
        "SELECT SUM(capacity) AS total FROM confroom GROUP BY chotel_id HAVING total > 1"
    )
    qualify_unqualified_columns(query, CATALOG)
    text = print_select(query)
    assert "HAVING total > 1" in text
    assert "GROUP BY confroom.chotel_id" in text


def test_project_columns():
    query = parse_select("SELECT * FROM hotel")
    project_columns(query, ["hotelid", "starrating"], CATALOG)
    assert output_columns(query, CATALOG) == ["hotelid", "starrating"]


def test_project_unknown_column_raises():
    query = parse_select("SELECT * FROM hotel")
    with pytest.raises(SQLTransformError):
        project_columns(query, ["ghost"], CATALOG)

"""Tests for the ScalarSubquery expression node across the SQL stack."""

import pytest

from repro.errors import SQLTransformError
from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.sql.analysis import DictCatalog, has_top_level_aggregate, referenced_tables
from repro.sql.ast import ScalarSubquery
from repro.sql.params import collect_params, referenced_vars
from repro.sql.parser import parse_select
from repro.sql.printer import print_select
from repro.sql.transform import scalar_aggregate_restructure, used_aliases

CATALOG = DictCatalog({"t": ["id", "x"], "u": ["uid", "t_id", "y"]})


def test_roundtrip():
    sql = (
        "SELECT (SELECT SUM(y) FROM u WHERE t_id = t.id) AS total, id FROM t"
    )
    query = parse_select(sql)
    assert isinstance(query.items[0].expr, ScalarSubquery)
    assert print_select(parse_select(print_select(query))) == print_select(query)


def test_params_collected_inside_scalar():
    query = parse_select(
        "SELECT (SELECT SUM(y) FROM u WHERE t_id = $p.id) AS total FROM t"
    )
    assert referenced_vars(query) == ["p"]


def test_tables_collected_inside_scalar():
    query = parse_select(
        "SELECT (SELECT SUM(y) FROM u WHERE t_id = t.id) AS total FROM t"
    )
    assert referenced_tables(query) == ["t", "u"]


def test_used_aliases_sees_scalar_from():
    query = parse_select(
        "SELECT (SELECT SUM(y) FROM u AS inner_u WHERE t_id = t.id) AS s FROM t"
    )
    assert "inner_u" in used_aliases(query)


def test_scalar_subquery_is_not_a_top_level_aggregate():
    query = parse_select(
        "SELECT (SELECT SUM(y) FROM u WHERE t_id = t.id) AS total FROM t"
    )
    assert not has_top_level_aggregate(query)


def test_restructure_basic():
    query = parse_select("SELECT SUM(x) AS total FROM t WHERE id > 1")
    scalar_aggregate_restructure(query, CATALOG)
    assert query.from_items == []
    assert isinstance(query.items[0].expr, ScalarSubquery)
    assert query.items[0].alias == "total"
    assert query.where is None


def test_restructure_moves_having_to_where():
    query = parse_select(
        "SELECT SUM(x) AS total FROM t HAVING SUM(x) > 10"
    )
    scalar_aggregate_restructure(query, CATALOG)
    assert query.having is None
    assert query.where is not None
    text = print_select(query)
    assert text.count("(SELECT SUM") == 2  # item + rewritten having


def test_restructure_rejects_group_by():
    query = parse_select("SELECT SUM(x) AS s FROM t GROUP BY id")
    with pytest.raises(SQLTransformError):
        scalar_aggregate_restructure(query, CATALOG)


def test_scalar_executes_one_row_per_parent():
    catalog = Catalog(
        [
            table("t", ("id", "INTEGER"), ("x", "INTEGER")),
            table("u", ("uid", "INTEGER"), ("t_id", "INTEGER"), ("y", "INTEGER")),
        ]
    )
    db = Database(catalog)
    db.insert_rows("t", [{"id": 1, "x": 0}, {"id": 2, "x": 0}])
    db.insert_rows("u", [{"uid": 1, "t_id": 1, "y": 5}])
    query = parse_select(
        "SELECT id, (SELECT SUM(y) FROM u WHERE t_id = t.id) AS total FROM t "
        "ORDER BY id"
    )
    rows = db.run_query(query)
    assert rows == [{"id": 1, "total": 5}, {"id": 2, "total": None}]
    db.close()

"""Unit tests for SQL printing (and the parse/print round-trip)."""

import pytest

from repro.sql.parser import parse_select
from repro.sql.printer import print_select


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT * FROM hotel",
        "SELECT metroid, metroname FROM metroarea",
        "SELECT * FROM hotel WHERE metro_id = $m.metroid AND starrating > 4",
        "SELECT SUM(capacity) AS SUM_capacity FROM confroom WHERE chotel_id = $h.hotelid",
        "SELECT COUNT(a_id), startdate FROM availability, guestroom "
        "WHERE rhotel_id = $h.hotelid AND a_r_id = r_id GROUP BY startdate",
        "SELECT * FROM t WHERE a IS NULL",
        "SELECT * FROM t WHERE NOT a = 1",
        "SELECT * FROM t WHERE a IN (1, 2)",
        "SELECT DISTINCT a FROM t ORDER BY a DESC",
        "SELECT TEMP.* FROM (SELECT * FROM hotel) AS TEMP",
        "SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.x)",
    ],
)
def test_print_parse_fixpoint(sql):
    """print(parse(s)) reparses to the same text — a stable canonical form."""
    once = print_select(parse_select(sql))
    twice = print_select(parse_select(once))
    assert once == twice


def test_boolean_parenthesization():
    query = parse_select("SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
    text = print_select(query)
    assert "(b = 2 OR c = 3)" in text
    assert parse_select(text).where.op == "AND"


def test_placeholder_mode():
    query = parse_select("SELECT * FROM t WHERE x = $m.metroid")
    assert ":m__metroid" in print_select(query, placeholders=True)
    assert "$m.metroid" in print_select(query, placeholders=False)


def test_string_escaping():
    query = parse_select("SELECT * FROM t WHERE n = 'o''brien'")
    assert "'o''brien'" in print_select(query)


def test_null_literal():
    query = parse_select("SELECT * FROM t WHERE a IS NULL")
    assert "IS NULL" in print_select(query)


def test_float_keeps_decimal_point():
    query = parse_select("SELECT * FROM t WHERE a = 2.0")
    printed = print_select(query)
    assert "2.0" in printed
    assert parse_select(printed).where.right.value == 2.0


def test_unary_minus():
    query = parse_select("SELECT * FROM t WHERE a = -5")
    assert "-5" in print_select(query)

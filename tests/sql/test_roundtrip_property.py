"""Property-based tests on SQL printing/parsing and transforms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.analysis import DictCatalog, output_columns
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    LiteralValue,
    ParamRef,
    Select,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.parser import parse_select
from repro.sql.printer import print_select

TABLES = {
    "ta": ["a1", "a2", "a3"],
    "tb": ["b1", "b2"],
}
CATALOG = DictCatalog(TABLES)

table_names = st.sampled_from(sorted(TABLES))
var_names = st.sampled_from(["m", "h", "p"])


@st.composite
def conditions(draw, table):
    columns = TABLES[table]
    column = draw(st.sampled_from(columns))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    kind = draw(st.sampled_from(["number", "string", "param", "column"]))
    if kind == "number":
        right = LiteralValue(draw(st.integers(-1000, 1000)))
    elif kind == "string":
        right = LiteralValue(draw(st.text(alphabet="abc'x", max_size=5)))
    elif kind == "param":
        right = ParamRef(draw(var_names), draw(st.sampled_from(columns)))
    else:
        right = ColumnRef(draw(st.sampled_from(columns)), table=table)
    return BinOp(op, ColumnRef(column, table=table), right)


@st.composite
def selects(draw):
    table = draw(table_names)
    query = Select()
    if draw(st.booleans()):
        query.items.append(SelectItem(Star(table)))
    else:
        for column in draw(
            st.lists(st.sampled_from(TABLES[table]), min_size=1, max_size=3)
        ):
            query.items.append(SelectItem(ColumnRef(column, table=table)))
    query.from_items.append(TableRef(table))
    for condition in draw(st.lists(conditions(table), max_size=3)):
        query.add_where(condition)
    query.distinct = draw(st.booleans())
    return query


@given(selects())
@settings(max_examples=200, deadline=None)
def test_print_parse_roundtrip(query):
    text = print_select(query)
    reparsed = parse_select(text)
    assert print_select(reparsed) == text


@given(selects())
@settings(max_examples=100, deadline=None)
def test_clone_is_independent(query):
    clone = query.clone()
    assert print_select(clone) == print_select(query)
    clone.add_where(BinOp("=", LiteralValue(1), LiteralValue(1)))
    assert print_select(clone) != print_select(query)


@given(selects())
@settings(max_examples=100, deadline=None)
def test_output_columns_well_defined(query):
    columns = output_columns(query, CATALOG)
    assert columns
    assert all(isinstance(c, str) and c for c in columns)

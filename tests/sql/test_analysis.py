"""Unit tests for catalog-aware column analysis."""

import pytest

from repro.errors import SchemaError
from repro.sql.analysis import (
    DictCatalog,
    canonicalize_aggregate_aliases,
    expand_star_refs,
    has_top_level_aggregate,
    output_columns,
    referenced_tables,
)
from repro.sql.ast import Star
from repro.sql.parser import parse_select

CATALOG = DictCatalog(
    {
        "hotel": ["hotelid", "hotelname", "starrating"],
        "confroom": ["c_id", "chotel_id", "capacity"],
    }
)


def test_output_columns_star():
    query = parse_select("SELECT * FROM hotel")
    assert output_columns(query, CATALOG) == ["hotelid", "hotelname", "starrating"]


def test_output_columns_star_over_join():
    query = parse_select("SELECT * FROM hotel, confroom")
    assert output_columns(query, CATALOG) == [
        "hotelid", "hotelname", "starrating", "c_id", "chotel_id", "capacity",
    ]


def test_output_columns_table_star():
    query = parse_select("SELECT h.*, capacity FROM hotel AS h, confroom")
    assert output_columns(query, CATALOG) == [
        "hotelid", "hotelname", "starrating", "capacity",
    ]


def test_output_columns_derived_table():
    query = parse_select(
        "SELECT TEMP.* FROM (SELECT hotelid, starrating FROM hotel) AS TEMP"
    )
    assert output_columns(query, CATALOG) == ["hotelid", "starrating"]


def test_output_columns_aliases_and_aggregates():
    query = parse_select("SELECT SUM(capacity) AS cap, c_id FROM confroom")
    assert output_columns(query, CATALOG) == ["cap", "c_id"]


def test_output_columns_default_aggregate_name():
    query = parse_select("SELECT SUM(capacity) FROM confroom")
    assert output_columns(query, CATALOG) == ["SUM_capacity"]


def test_unknown_table_raises():
    query = parse_select("SELECT * FROM ghost")
    with pytest.raises(SchemaError):
        output_columns(query, CATALOG)


def test_unknown_star_qualifier_raises():
    query = parse_select("SELECT g.* FROM hotel")
    with pytest.raises(SchemaError):
        output_columns(query, CATALOG)


def test_expand_star_refs_qualified():
    query = parse_select("SELECT TEMP.* FROM hotel AS TEMP")
    refs = expand_star_refs(Star("TEMP"), query, CATALOG)
    assert [r.qualified() for r in refs] == [
        "TEMP.hotelid", "TEMP.hotelname", "TEMP.starrating",
    ]


def test_has_top_level_aggregate():
    assert has_top_level_aggregate(parse_select("SELECT SUM(capacity) FROM confroom"))
    assert not has_top_level_aggregate(parse_select("SELECT capacity FROM confroom"))
    # Aggregates inside derived tables do not count.
    assert not has_top_level_aggregate(
        parse_select("SELECT x FROM (SELECT SUM(capacity) AS x FROM confroom) AS d")
    )


def test_canonicalize_aggregate_aliases():
    query = parse_select("SELECT SUM(capacity), COUNT(c_id) FROM confroom")
    canonicalize_aggregate_aliases(query)
    assert query.items[0].alias == "SUM_capacity"
    assert query.items[1].alias == "COUNT_c_id"


def test_canonicalize_avoids_collisions():
    query = parse_select(
        "SELECT SUM(capacity), SUM(capacity), capacity AS SUM_capacity_x FROM confroom"
    )
    canonicalize_aggregate_aliases(query)
    names = [item.alias for item in query.items[:2]]
    assert names[0] != names[1]


def test_referenced_tables_includes_subqueries():
    query = parse_select(
        "SELECT * FROM confroom, (SELECT * FROM hotel) AS T "
        "WHERE EXISTS (SELECT * FROM confroom WHERE capacity > 1)"
    )
    assert referenced_tables(query) == ["confroom", "hotel"]

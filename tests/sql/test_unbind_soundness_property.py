"""Property: unbinding is sound at the SQL level.

For a child query ``q($p)`` and parent query ``P``, the unbound query
(``inline_parameter_deep(q, p, P)``) evaluated once must return the same
multiset of (child columns + parent columns) rows as looping ``q`` over
every row of ``P`` — the semantics UNBIND (Figures 10/12/13) relies on.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.sql.analysis import output_columns
from repro.sql.parser import parse_select
from repro.sql.transform import inline_parameter_deep

CATALOG = Catalog(
    [
        table("parent", ("pid", "INTEGER"), ("px", "INTEGER")),
        table("child", ("cid", "INTEGER"), ("cpid", "INTEGER"), ("cy", "INTEGER")),
    ]
)

rows_parent = st.lists(
    st.tuples(st.integers(1, 5), st.integers(0, 3) | st.none()),
    min_size=0, max_size=6,
)
rows_child = st.lists(
    st.tuples(st.integers(1, 9), st.integers(1, 5), st.integers(0, 3)),
    min_size=0, max_size=8,
)
child_filters = st.sampled_from(
    [
        "",
        " AND cy > 1",
        " AND cy = $p.px",
    ]
)
parent_filters = st.sampled_from(["", " WHERE px > 0", " WHERE px IS NOT NULL"])


@given(rows_parent, rows_child, child_filters, parent_filters)
@settings(max_examples=120, deadline=None)
def test_unbound_query_equals_correlated_loop(parents, children, cfilter, pfilter):
    db = Database(CATALOG)
    try:
        db.insert_rows(
            "parent",
            ({"pid": pid, "px": px} for pid, px in parents),
        )
        db.insert_rows(
            "child",
            ({"cid": cid, "cpid": cpid, "cy": cy} for cid, cpid, cy in children),
        )
        parent_query = parse_select(f"SELECT * FROM parent{pfilter}")
        child_query = parse_select(
            f"SELECT * FROM child WHERE cpid = $p.pid{cfilter}"
        )

        # Correlated loop: run the child query once per parent row.
        looped = Counter()
        parent_rows = db.run_query(parent_query)
        for parent_row in parent_rows:
            for row in db.run_query(child_query, {"p": parent_row}):
                combined = tuple(row.values()) + tuple(parent_row.values())
                looped[combined] += 1

        # Unbound query: one execution.
        unbound = parse_select(
            f"SELECT * FROM child WHERE cpid = $p.pid{cfilter}"
        )
        inline_parameter_deep(unbound, "p", parent_query, CATALOG)
        assert output_columns(unbound, CATALOG) == [
            "cid", "cpid", "cy", "pid", "px",
        ]
        flat = Counter()
        for row in db.run_query(unbound, {}):
            flat[tuple(row.values())] += 1

        assert looped == flat
    finally:
        db.close()


@given(rows_parent, rows_child)
@settings(max_examples=60, deadline=None)
def test_unbound_aggregate_groups_per_parent(parents, children):
    """Aggregation keeps per-parent granularity via the added GROUP BY."""
    db = Database(CATALOG)
    try:
        # Make parent rows unique (GROUP BY collapses exact duplicates,
        # the documented limitation shared with the paper).
        seen = set()
        unique_parents = []
        for pid, px in parents:
            if (pid, px) not in seen:
                seen.add((pid, px))
                unique_parents.append((pid, px))
        db.insert_rows(
            "parent", ({"pid": pid, "px": px} for pid, px in unique_parents)
        )
        db.insert_rows(
            "child",
            ({"cid": cid, "cpid": cpid, "cy": cy} for cid, cpid, cy in children),
        )
        parent_query = parse_select("SELECT * FROM parent")
        aggregate = parse_select(
            "SELECT SUM(cy) AS total FROM child WHERE cpid = $p.pid"
        )
        looped = Counter()
        for parent_row in db.run_query(parent_query):
            for row in db.run_query(aggregate, {"p": parent_row}):
                looped[(row["total"],) + tuple(parent_row.values())] += 1
        unbound = parse_select(
            "SELECT SUM(cy) AS total FROM child WHERE cpid = $p.pid"
        )
        inline_parameter_deep(unbound, "p", parent_query, CATALOG)
        flat = Counter()
        for row in db.run_query(unbound, {}):
            flat[tuple(row.values())] += 1
        assert looped == flat
    finally:
        db.close()

"""Failure injection: the library must fail loudly and precisely, never
produce silently-wrong output."""

import pytest

from repro.errors import (
    CompositionError,
    UnsupportedFeatureError,
    ViewDefinitionError,
    ViewEvaluationError,
)
from repro.core import compose
from repro.relational.engine import Database
from repro.schema_tree import materialize
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xslt.parser import parse_stylesheet


def test_missing_table_at_evaluation(hotel_db):
    """A view over a dropped table fails with a clear engine error."""
    view = figure1_view(hotel_db.catalog)
    hotel_db.run_sql("DROP TABLE confroom")
    with pytest.raises(ViewEvaluationError) as exc:
        materialize(view, hotel_db)
    assert "confroom" in str(exc.value)


def test_unknown_table_in_catalog_detected_at_compose():
    """Composing a star query over an unknown table raises cleanly."""
    from repro.errors import SchemaError
    from repro.relational.schema import Catalog, table
    from repro.schema_tree import ViewBuilder

    wrong_catalog = Catalog([table("other", ("x", "TEXT"))])
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m><xsl:value-of select="."/></m></xsl:template>'
    )
    builder = ViewBuilder(None)
    builder.node("metro", "SELECT * FROM metroarea", bv="m")
    view = builder.build(validate=False)
    with pytest.raises(SchemaError):
        compose(view, stylesheet, wrong_catalog)


@pytest.mark.parametrize(
    "select,feature",
    [
        ("hotel//confroom", "descendant-axis"),
        ("/", "select-to-root"),
    ],
)
def test_uncomposable_selects_report_the_feature(hotel_db, select, feature):
    view = figure1_view(hotel_db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        f'<xsl:template match="metro"><m><xsl:apply-templates select="{select}"/></m></xsl:template>'
        '<xsl:template match="confroom"><c/></xsl:template>'
        '<xsl:template match="/" mode="x"><r/></xsl:template>'
    )
    try:
        compose(view, stylesheet, hotel_db.catalog)
    except UnsupportedFeatureError as exc:
        # A '/' select that reaches a root rule also makes the CTG
        # cyclic, so 'recursion' is an equally precise rejection.
        assert exc.feature in (feature, "recursion")


def test_variables_in_predicates_rejected(hotel_db):
    view = figure1_view(hotel_db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m><xsl:apply-templates select="hotel[@starrating&gt;$min]"/></m></xsl:template>'
        '<xsl:template match="hotel"><h/></xsl:template>'
    )
    with pytest.raises(UnsupportedFeatureError) as exc:
        compose(view, stylesheet, hotel_db.catalog)
    assert exc.value.feature == "variables"


def test_blowup_bound_prevents_runaway(hotel_db):
    from repro.workloads.synthetic import blowup_stylesheet, chain_catalog, chain_view

    catalog = chain_catalog(12)
    view = chain_view(12, catalog)
    with pytest.raises(CompositionError) as exc:
        compose(view, blowup_stylesheet(12), catalog, max_nodes=100)
    assert "blowup" in str(exc.value)


def test_evaluation_with_wrong_binding_env(hotel_db):
    from repro.sql.parser import parse_select

    query = parse_select("SELECT * FROM hotel WHERE metro_id = $ghost.metroid")
    with pytest.raises(ViewEvaluationError) as exc:
        hotel_db.run_query(query, {"m": {"metroid": 1}})
    assert "$ghost" in str(exc.value)


def test_composed_view_runs_after_data_mutation(hotel_db):
    """Composed views are instance-independent: reuse across updates."""
    view = figure1_view(hotel_db.catalog)
    composed = compose(view, figure4_stylesheet(), hotel_db.catalog)
    before = materialize(composed, hotel_db)
    hotel_db.run_sql("DELETE FROM confroom WHERE capacity < 200")
    after = materialize(composed, hotel_db)
    def count(doc):
        return sum(1 for e in doc.iter_elements() if e.tag == "confroom")
    assert count(after) <= count(before)
    # And it still matches a fresh naive run on the new instance.
    from repro.xmlcore import canonical_form
    from repro.xslt import apply_stylesheet

    naive = apply_stylesheet(figure4_stylesheet(), materialize(view, hotel_db))
    assert canonical_form(naive, ordered=False) == canonical_form(
        after, ordered=False
    )

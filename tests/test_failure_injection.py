"""Failure injection: the library must fail loudly and precisely, never
produce silently-wrong output."""

import pytest

from repro.errors import (
    CompositionError,
    UnsupportedFeatureError,
    ViewDefinitionError,
    ViewEvaluationError,
)
from repro.core import compose
from repro.relational.engine import Database
from repro.schema_tree import materialize
from repro.workloads.hotel import hotel_catalog
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xslt.parser import parse_stylesheet


def test_missing_table_at_evaluation(hotel_db):
    """A view over a dropped table fails with a clear engine error."""
    view = figure1_view(hotel_db.catalog)
    hotel_db.run_sql("DROP TABLE confroom")
    with pytest.raises(ViewEvaluationError) as exc:
        materialize(view, hotel_db)
    assert "confroom" in str(exc.value)


def test_unknown_table_in_catalog_detected_at_compose():
    """Composing a star query over an unknown table raises cleanly."""
    from repro.errors import SchemaError
    from repro.relational.schema import Catalog, table
    from repro.schema_tree import ViewBuilder

    wrong_catalog = Catalog([table("other", ("x", "TEXT"))])
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m><xsl:value-of select="."/></m></xsl:template>'
    )
    builder = ViewBuilder(None)
    builder.node("metro", "SELECT * FROM metroarea", bv="m")
    view = builder.build(validate=False)
    with pytest.raises(SchemaError):
        compose(view, stylesheet, wrong_catalog)


@pytest.mark.parametrize(
    "select,feature",
    [
        ("hotel//confroom", "descendant-axis"),
        ("/", "select-to-root"),
    ],
)
def test_uncomposable_selects_report_the_feature(hotel_db, select, feature):
    view = figure1_view(hotel_db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        f'<xsl:template match="metro"><m><xsl:apply-templates select="{select}"/></m></xsl:template>'
        '<xsl:template match="confroom"><c/></xsl:template>'
        '<xsl:template match="/" mode="x"><r/></xsl:template>'
    )
    try:
        compose(view, stylesheet, hotel_db.catalog)
    except UnsupportedFeatureError as exc:
        # A '/' select that reaches a root rule also makes the CTG
        # cyclic, so 'recursion' is an equally precise rejection.
        assert exc.feature in (feature, "recursion")


def test_variables_in_predicates_rejected(hotel_db):
    view = figure1_view(hotel_db.catalog)
    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m><xsl:apply-templates select="hotel[@starrating&gt;$min]"/></m></xsl:template>'
        '<xsl:template match="hotel"><h/></xsl:template>'
    )
    with pytest.raises(UnsupportedFeatureError) as exc:
        compose(view, stylesheet, hotel_db.catalog)
    assert exc.value.feature == "variables"


def test_blowup_bound_prevents_runaway(hotel_db):
    from repro.workloads.synthetic import blowup_stylesheet, chain_catalog, chain_view

    catalog = chain_catalog(12)
    view = chain_view(12, catalog)
    with pytest.raises(CompositionError) as exc:
        compose(view, blowup_stylesheet(12), catalog, max_nodes=100)
    assert "blowup" in str(exc.value)


def test_evaluation_with_wrong_binding_env(hotel_db):
    from repro.sql.parser import parse_select

    query = parse_select("SELECT * FROM hotel WHERE metro_id = $ghost.metroid")
    with pytest.raises(ViewEvaluationError) as exc:
        hotel_db.run_query(query, {"m": {"metroid": 1}})
    assert "$ghost" in str(exc.value)


# ---------------------------------------------------------------------------
# Incremental maintenance: a failing delta must degrade, never corrupt
# ---------------------------------------------------------------------------


def _delta_server():
    """A strict delta-maintenance server over a tracked hotel database."""
    from repro.maintenance import WriteTracker
    from repro.serving import ViewServer
    from repro.workloads.hotel import HotelDataSpec, build_hotel_database

    db = build_hotel_database(
        HotelDataSpec(metros=1, hotels_per_metro=3), cross_thread=True
    )
    tracker = WriteTracker()
    db.attach_tracker(tracker)
    server = ViewServer(
        db.catalog,
        source=db,
        workers=2,
        tracker=tracker,
        staleness="strict",
        maintenance="delta",
    )
    return db, tracker, server


def _live_bytes(db):
    """Serial uncached reference for the Figure 1 + Figure 4 request."""
    from repro.core.optimize import prune_stylesheet_view
    from repro.xmlcore.serializer import serialize

    target = compose(
        figure1_view(db.catalog), figure4_stylesheet(), db.catalog
    )
    prune_stylesheet_view(target, db.catalog)
    return serialize(materialize(target, db))


@pytest.mark.parametrize(
    "method,error,reason",
    [
        ("_evaluate_subtree", RuntimeError, "error"),   # mid re-evaluation
        ("_rebuild_children", RuntimeError, "error"),   # mid splice
        ("_check_spliceable", None, "unsupported"),     # a clean decline
    ],
)
def test_mid_splice_failure_falls_back_to_full(
    monkeypatch, method, error, reason
):
    """An exception anywhere inside the delta path (re-evaluation, the
    splice itself, or a DeltaUnsupported decline) must surface as a
    successful full 'stale-recompute' with correct bytes - and the stale
    cached entry's captured document must be left untouched, because the
    splice never mutates it."""
    from repro.maintenance import DeltaEvaluator, DeltaUnsupported, hotel_write
    from repro.xmlcore.serializer import serialize

    db, tracker, server = _delta_server()
    try:
        first = server.render(
            figure1_view(db.catalog), figure4_stylesheet()
        )
        assert first.freshness == "miss"
        [key] = server.result_cache.keys()
        stale_entry = server.result_cache.peek(key)
        assert stale_entry.state is not None
        stale_doc_bytes = serialize(stale_entry.state.document)

        hotel_write(db, 0, tracker)

        def boom(self, *args, **kwargs):
            raise (error or DeltaUnsupported)("injected")

        monkeypatch.setattr(DeltaEvaluator, method, boom)
        trace = server.render(figure1_view(db.catalog), figure4_stylesheet())
        assert trace.error is None
        assert trace.freshness == "stale-recompute"  # full fallback, not delta
        assert trace.xml == _live_bytes(db)
        metrics = server.metrics()
        assert metrics["delta_fallbacks"] == 1
        assert metrics["delta_fallbacks_by_reason"][reason] == 1
        # The entry the failed delta read from was never touched.
        assert serialize(stale_entry.state.document) == stale_doc_bytes
        assert stale_entry.xml == first.xml

        # The fallback re-primed the cache with fresh captured state:
        # once the fault is removed, the delta path works again.
        monkeypatch.undo()
        hotel_write(db, 1, tracker)
        healed = server.render(figure1_view(db.catalog), figure4_stylesheet())
        assert healed.error is None
        assert healed.freshness == "delta-recompute"
        assert healed.xml == _live_bytes(db)
        assert server.metrics()["delta_fallbacks"] == 1  # no new fallback
    finally:
        server.close()
        db.close()


def test_delta_failure_after_store_does_not_lose_writes(monkeypatch):
    """Failing deltas never skip sync: the fallback recompute sees the
    write that triggered staleness (pool refresh happens before the
    delta attempt gives up)."""
    from repro.maintenance import DeltaEvaluator, hotel_write

    db, tracker, server = _delta_server()
    try:
        server.render(figure1_view(db.catalog), figure4_stylesheet())
        before = _live_bytes(db)
        db.run_sql(
            "UPDATE hotel SET starrating = CASE WHEN starrating > 4 "
            "THEN 3 ELSE 5 END WHERE hotelid = 1"
        )
        tracker.record_write("hotel")
        monkeypatch.setattr(
            DeltaEvaluator,
            "evaluate",
            lambda self, *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        trace = server.render(figure1_view(db.catalog), figure4_stylesheet())
        assert trace.error is None
        assert trace.freshness == "stale-recompute"
        assert trace.xml == _live_bytes(db)
        assert trace.xml != before
    finally:
        server.close()
        db.close()


# ---------------------------------------------------------------------------
# Fault-layer chaos: exhaustion and compile failures under concurrency
# ---------------------------------------------------------------------------


def test_pool_not_exhausted_by_sustained_query_faults():
    """Hammering a small pool with injected query errors must never leak
    a connection: once the faults clear, the same server serves cleanly
    with every session back in the idle queue."""
    from repro.resilience import FaultPlan, FaultSpec, ResiliencePolicy
    from repro.serving import PublishRequest, ViewServer
    from repro.workloads.hotel import HotelDataSpec, build_hotel_database

    db = build_hotel_database(HotelDataSpec(metros=1, hotels_per_metro=3))
    faults = FaultPlan(FaultSpec(error_rate=0.7), seed=5)
    policy = ResiliencePolicy(retries=1, backoff_base_ms=0.1,
                              backoff_max_ms=0.5)
    server = ViewServer(
        db.catalog, source=db, workers=2, resilience=policy, faults=faults
    )
    try:
        request = lambda: PublishRequest(  # noqa: E731
            view=figure1_view(db.catalog), stylesheet=figure4_stylesheet(),
            bypass_cache=True,
        )
        traces = server.render_many(request() for _ in range(30))
        assert any(t.outcome == "error" for t in traces)  # chaos did bite
        assert server.pool.outstanding() == 0  # ...but nothing leaked
        faults.disarm()
        healed = server.submit(request()).result()
        assert healed.outcome == "success"
        assert healed.error is None
        assert server.pool.outstanding() == 0
    finally:
        server.close()
        db.close()


def test_compile_failure_under_concurrency_does_not_wedge_single_flight():
    """Injected compile failures hit many concurrent requests for the
    same plan: single-flight must propagate the error to every waiter
    (no hang, no half-built cache entry) and recover once disarmed."""
    from repro.resilience import FaultPlan, FaultSpec
    from repro.serving import PublishRequest, ViewServer
    from repro.workloads.hotel import HotelDataSpec, build_hotel_database

    db = build_hotel_database(HotelDataSpec(metros=1, hotels_per_metro=3))
    faults = FaultPlan(FaultSpec(compile_error_rate=1.0), seed=9)
    server = ViewServer(db.catalog, source=db, workers=4, faults=faults)
    try:
        request = lambda: PublishRequest(  # noqa: E731
            view=figure1_view(db.catalog), stylesheet=figure4_stylesheet(),
        )
        futures = [server.submit(request()) for _ in range(8)]
        traces = [f.result(timeout=30) for f in futures]
        assert all(t.outcome == "error" for t in traces)
        assert all("injected compile failure" in t.error for t in traces)
        assert server.metrics()["cache"]["size"] == 0  # nothing half-built
        faults.disarm()
        healed = server.submit(request()).result(timeout=30)
        assert healed.outcome == "success"
        assert healed.error is None
        assert server.metrics()["cache"]["size"] == 1
    finally:
        server.close()
        db.close()


def test_composed_view_runs_after_data_mutation(hotel_db):
    """Composed views are instance-independent: reuse across updates."""
    view = figure1_view(hotel_db.catalog)
    composed = compose(view, figure4_stylesheet(), hotel_db.catalog)
    before = materialize(composed, hotel_db)
    hotel_db.run_sql("DELETE FROM confroom WHERE capacity < 200")
    after = materialize(composed, hotel_db)
    def count(doc):
        return sum(1 for e in doc.iter_elements() if e.tag == "confroom")
    assert count(after) <= count(before)
    # And it still matches a fresh naive run on the new instance.
    from repro.xmlcore import canonical_form
    from repro.xslt import apply_stylesheet

    naive = apply_stylesheet(figure4_stylesheet(), materialize(view, hotel_db))
    assert canonical_form(naive, ordered=False) == canonical_form(
        after, ordered=False
    )

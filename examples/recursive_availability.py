"""Section 5.3 in action: partial pushdown for a recursive stylesheet.

The Figure 25 shape cannot be fully composed ($idx controls termination),
but its data access pushes into two sibling queries (Figure 26) and the
rewritten stylesheet (Figure 27) recurses between them over a far smaller
document.

Run:  python examples/recursive_availability.py
"""

from repro.core.hybrid import HybridExecutor
from repro.schema_tree.evaluator import ViewEvaluator
from repro.sql.printer import print_select
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view
from repro.xmlcore.serializer import serialize
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import XSLTProcessor

STYLESHEET = """
<xsl:template match="/metro">
  <xsl:param name="idx" select="4"/>
  <result_metro>
    <xsl:apply-templates select="hotel/hotel_available[@COUNT_a_id&gt;10]/metro_available[@COUNT_a_id&gt;$idx]">
      <xsl:with-param name="idx" select="$idx"/>
    </xsl:apply-templates>
  </result_metro>
</xsl:template>

<xsl:template match="metro_available">
  <xsl:param name="idx"/>
  <xsl:choose>
    <xsl:when test="$idx&lt;=1"><xsl:value-of select="."/></xsl:when>
    <xsl:otherwise>
      <result_metroavail>
        <xsl:apply-templates select="self::[@COUNT_a_id&gt;50]/../../..">
          <xsl:with-param name="idx" select="$idx - 1"/>
        </xsl:apply-templates>
      </result_metroavail>
    </xsl:otherwise>
  </xsl:choose>
</xsl:template>
"""

db = build_hotel_database(
    HotelDataSpec(metros=1, hotels_per_metro=4,
                  guestrooms_per_hotel=10, availability_per_room=6)
)
view = figure1_view(db.catalog)
stylesheet = parse_stylesheet(STYLESHEET)

executor = HybridExecutor(
    view, stylesheet, db.catalog, fallback_builtin_rules="standard"
)
print(f"== Hybrid plan: {executor.plan.kind} ==")
for note in executor.plan.notes:
    print(f"   {note}")
print()

print("== The composed view v' (Figure 26 shape) ==")
metro = executor.plan.view.root.children[0]
for child in metro.children:
    print(f"<{child.tag}> :=")
    print(f"  {print_select(child.tag_query)[:240]}...")
print()

result = executor.execute(db)
rounds = serialize(result).count("<result_metroavail")
print(f"hybrid result: {rounds} recursion rounds")

naive_doc = ViewEvaluator(db).materialize(view)
naive = XSLTProcessor(stylesheet, builtin_rules="standard").process_document(naive_doc)
print(f"naive  result: {serialize(naive).count('<result_metroavail')} recursion rounds")

full = ViewEvaluator(db)
full.materialize(view)
pushed = ViewEvaluator(db)
pushed.materialize(executor.plan.view)
print(f"elements materialized: naive {full.stats.elements_created}, "
      f"hybrid {pushed.stats.elements_created}")
db.close()

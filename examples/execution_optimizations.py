"""The execution optimizations the paper deferred to future work.

Demonstrates (1) dead-column elimination on composed views and (2)
tag-query memoization during materialization, with work counters.

Run:  python examples/execution_optimizations.py
"""

import time

from repro.core import compose
from repro.core.optimize import prune_stylesheet_view
from repro.schema_tree.evaluator import ViewEvaluator
from repro.sql.printer import print_select
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xmlcore import canonical_form

db = build_hotel_database(HotelDataSpec().scaled(4))
view = figure1_view(db.catalog)
stylesheet = figure4_stylesheet()

# -- 1. Dead-column elimination ----------------------------------------------
raw = compose(view, stylesheet, db.catalog)
pruned = compose(view, stylesheet, db.catalog)
report = prune_stylesheet_view(pruned, db.catalog)

raw_node = next(n for n in raw.nodes(include_root=False) if n.tag == "result_confstat")
pruned_node = next(
    n for n in pruned.nodes(include_root=False) if n.tag == "result_confstat"
)
print("== Dead-column elimination ==")
print(f"removed {report.columns_removed} columns across {report.nodes_pruned} nodes")
print(f"raw query    ({len(print_select(raw_node.tag_query))} chars):")
print(f"  {print_select(raw_node.tag_query)[:140]}...")
print(f"pruned query ({len(print_select(pruned_node.tag_query))} chars):")
print(f"  {print_select(pruned_node.tag_query)[:140]}...")

doc_raw = ViewEvaluator(db).materialize(raw)
doc_pruned = ViewEvaluator(db).materialize(pruned)
assert canonical_form(doc_raw) == canonical_form(doc_pruned)
print("outputs identical after pruning")
print()

# -- 2. Tag-query memoization -------------------------------------------------
print("== Tag-query memoization ==")
db.stats.reset()
start = time.perf_counter()
plain = ViewEvaluator(db)
plain.materialize(view)
plain_seconds = time.perf_counter() - start
plain_queries = db.stats.queries_executed

db.stats.reset()
start = time.perf_counter()
memoized = ViewEvaluator(db, memoize=True)
memoized.materialize(view)
memo_seconds = time.perf_counter() - start
memo_queries = db.stats.queries_executed

print(f"plain:    {plain_queries} queries in {plain_seconds:.4f}s")
print(f"memoized: {memo_queries} queries in {memo_seconds:.4f}s "
      f"({memoized.stats.cache_hits} cache hits)")
db.close()

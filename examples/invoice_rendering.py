"""A business-data scenario beyond the paper's example: invoicing.

Customers/orders/line items published as XML; three stylesheets render
invoices, large-customer summaries, and an audit of big line items. Each
composes into a stylesheet view whose SQL does the filtering and
aggregation the XSLT asked for.

Run:  python examples/invoice_rendering.py
"""

from repro.baseline.materialize import NaivePipeline
from repro.core import compose
from repro.schema_tree.evaluator import ViewEvaluator
from repro.sql.printer import print_select
from repro.workloads.orders import (
    OrdersDataSpec,
    build_orders_database,
    invoice_stylesheet,
    large_lines_stylesheet,
    orders_view,
    summary_stylesheet,
)
from repro.xmlcore import canonical_form, serialize_pretty

db = build_orders_database(OrdersDataSpec(customers=8, orders_per_customer=4))
view = orders_view(db.catalog)

print("== The publishing view ==")
print(view.describe())
print()

for title, stylesheet in [
    ("Invoices (billed orders only)", invoice_stylesheet()),
    ("Summary (high-credit customers, orders > 500)", summary_stylesheet()),
    ("Audit (large line items with product info)", large_lines_stylesheet()),
]:
    print(f"== {title} ==")
    naive = NaivePipeline(view, stylesheet).run(db)
    composed_view = compose(view, stylesheet, db.catalog)
    evaluator = ViewEvaluator(db)
    composed_doc = evaluator.materialize(composed_view)
    assert canonical_form(naive.document, ordered=True) == canonical_form(
        composed_doc, ordered=True
    )
    print(serialize_pretty(composed_doc)[:500])
    print(
        f"[naive materialized {naive.elements_materialized} elements; "
        f"composed {evaluator.stats.elements_created}]"
    )
    print()

# Show one composed query: the stylesheet's filters became SQL.
composed_view = compose(view, invoice_stylesheet(), db.catalog)
bill = next(n for n in composed_view.nodes(include_root=False) if n.tag == "bill")
print("== The <bill> tag query (status filter pushed into SQL) ==")
print(print_select(bill.tag_query))
db.close()

"""File-based workflow: views as versionable artifacts.

Saves a catalog + view + stylesheet to disk, composes offline, and
materializes the composed view file against a sqlite database — the same
flow the ``python -m repro`` CLI automates.

Run:  python examples/view_files_workflow.py
"""

import os
import tempfile

from repro.core import compose
from repro.relational.engine import Database
from repro.schema_tree.evaluator import ViewEvaluator
from repro.schema_tree.io import (
    load_catalog,
    load_view,
    save_catalog,
    save_view,
)
from repro.workloads.hotel import (
    HotelDataSpec,
    hotel_catalog,
    populate_hotel_database,
)
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xmlcore import serialize_pretty

with tempfile.TemporaryDirectory() as workdir:
    catalog_path = os.path.join(workdir, "catalog.xml")
    view_path = os.path.join(workdir, "view.xml")
    composed_path = os.path.join(workdir, "composed.xml")
    db_path = os.path.join(workdir, "hotel.sqlite")

    # Producer side: publish the artifacts.
    catalog = hotel_catalog()
    save_catalog(catalog, catalog_path)
    save_view(figure1_view(catalog), view_path)
    db = Database(catalog, path=db_path)
    populate_hotel_database(db, HotelDataSpec(metros=2))
    db.close()
    print(f"published catalog, view and database under {workdir}")

    # Consumer side: load, compose, save the stylesheet view.
    catalog = load_catalog(catalog_path)
    view = load_view(view_path, catalog)
    composed = compose(view, figure4_stylesheet(), catalog)
    save_view(composed, composed_path)
    print(f"composed stylesheet view written to {composed_path}")
    with open(composed_path) as handle:
        print("".join(handle.readlines()[:8]), "...")

    # Execution side: materialize the composed view file.
    runtime_view = load_view(composed_path, catalog)
    db = Database.open(catalog, db_path)
    document = ViewEvaluator(db).materialize(runtime_view)
    print(serialize_pretty(document)[:600])
    db.close()

"""The paper's running example: conference planning over hotel data.

Reproduces Figures 1, 4, 6, 7(a-c) end to end and reports the work saved
by composition.

Run:  python examples/conference_planner.py
"""

from repro.baseline.materialize import NaivePipeline
from repro.core import compose
from repro.core.ctg import build_ctg
from repro.core.tvq import build_tvq
from repro.schema_tree.evaluator import ViewEvaluator
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xmlcore import canonical_form, serialize_pretty

db = build_hotel_database(HotelDataSpec(metros=3, hotels_per_metro=4))
view = figure1_view(db.catalog)
stylesheet = figure4_stylesheet()

print("== Figure 1: the schema-tree view query ==")
print(view.describe())
print()

ctg = build_ctg(view, stylesheet)
print("== Figure 6: the context transition graph ==")
print(ctg.describe())
print()

tvq = build_tvq(ctg, db.catalog)
print("== Figure 7(a): the traverse view query ==")
print(tvq.describe())
print()

stylesheet_view = compose(view, stylesheet, db.catalog)
print("== Figure 7(c): the stylesheet view ==")
print(stylesheet_view.describe())
print()

naive = NaivePipeline(view, stylesheet).run(db)
db.stats.reset()
evaluator = ViewEvaluator(db)
composed_doc = evaluator.materialize(stylesheet_view)

print("== Results ==")
print(serialize_pretty(composed_doc)[:1500])
assert canonical_form(naive.document, ordered=False) == canonical_form(
    composed_doc, ordered=False
)
print("outputs are identical (v'(I) = x(v(I)))")
print()
print("== Work comparison ==")
print(f"naive:    {naive.elements_materialized:5d} elements materialized, "
      f"{naive.queries_executed:4d} queries, "
      f"{naive.contexts_processed:4d} XSLT contexts")
print(f"composed: {evaluator.stats.elements_created:5d} elements materialized, "
      f"{db.stats.queries_executed:4d} queries, "
      f"   0 XSLT contexts (no XSLT processing at all)")
db.close()

"""Quickstart: define a publishing view, compose a stylesheet, compare.

Run:  python examples/quickstart.py
"""

from repro.core import compose
from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.schema_tree import ViewBuilder, materialize
from repro.xmlcore import serialize_pretty
from repro.xslt import apply_stylesheet, parse_stylesheet

# 1. A relational schema and some data. -------------------------------------
catalog = Catalog(
    [
        table("author", ("id", "INTEGER"), ("name", "TEXT"), primary_key="id"),
        table(
            "book",
            ("id", "INTEGER"),
            ("author_id", "INTEGER"),
            ("title", "TEXT"),
            ("year", "INTEGER"),
            primary_key="id",
        ),
    ]
)
db = Database(catalog)
db.insert_rows(
    "author",
    [{"id": 1, "name": "Codd"}, {"id": 2, "name": "Gray"}],
)
db.insert_rows(
    "book",
    [
        {"id": 10, "author_id": 1, "title": "Relational Model", "year": 1970},
        {"id": 11, "author_id": 2, "title": "Transaction Processing", "year": 1992},
        {"id": 12, "author_id": 2, "title": "The Fourth Paradigm", "year": 2009},
    ],
)

# 2. An XML publishing view (a schema-tree query, Definition 1). -------------
builder = ViewBuilder(catalog)
author = builder.node("author", "SELECT * FROM author", bv="a")
author.child("book", "SELECT * FROM book WHERE author_id = $a.id", bv="b")
view = builder.build()

print("== The publishing view v(I) ==")
print(serialize_pretty(materialize(view, db)))

# 3. An XSLT stylesheet selecting recent books. ------------------------------
stylesheet = parse_stylesheet(
    """
<xsl:template match="/">
  <library><xsl:apply-templates select="author"/></library>
</xsl:template>

<xsl:template match="author">
  <writer>
    <xsl:value-of select="@name"/>
    <xsl:apply-templates select="book[@year &gt; 1990]"/>
  </writer>
</xsl:template>

<xsl:template match="book">
  <xsl:value-of select="."/>
</xsl:template>
"""
)

# 4. The naive pipeline: materialize everything, then transform. -------------
naive = apply_stylesheet(stylesheet, materialize(view, db))
print("== x(v(I)) via the naive pipeline ==")
print(serialize_pretty(naive))

# 5. The paper's contribution: compose x with v. -----------------------------
stylesheet_view = compose(view, stylesheet, catalog)
print("== The composed stylesheet view v' ==")
print(stylesheet_view.describe())

composed = materialize(stylesheet_view, db)
print()
print("== v'(I) — same answer, straight from SQL ==")
print(serialize_pretty(composed))

from repro.xmlcore import canonical_form

assert canonical_form(naive, ordered=False) == canonical_form(composed, ordered=False)
print("equivalence holds: v'(I) = x(v(I))")
db.close()

"""Section 5.1 in action: XPath predicates become WHERE/HAVING clauses.

Shows the Figure 17 stylesheet composing into the Figure 20 query, then
verifies the pushed-down predicates filter inside the database.

Run:  python examples/predicate_pushdown.py
"""

from repro.baseline.materialize import NaivePipeline
from repro.core import compose
from repro.schema_tree.evaluator import ViewEvaluator
from repro.sql.printer import print_select
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure17_stylesheet
from repro.xmlcore import canonical_form, serialize_pretty

db = build_hotel_database(HotelDataSpec(metros=4, hotels_per_metro=5))
view = figure1_view(db.catalog)
stylesheet = figure17_stylesheet()

print("== The predicate select of Figure 17 (R3) ==")
print(stylesheet.rules[2].apply_templates_nodes()[0].select.to_text())
print()

stylesheet_view = compose(view, stylesheet, db.catalog)
confroom = next(
    n for n in stylesheet_view.nodes(include_root=False) if n.tag == "confroom"
)
print("== The composed tag query (Figure 20) ==")
print(print_select(confroom.tag_query))
print()

naive = NaivePipeline(view, stylesheet).run(db)
evaluator = ViewEvaluator(db)
composed_doc = evaluator.materialize(stylesheet_view)

assert canonical_form(naive.document, ordered=False) == canonical_form(
    composed_doc, ordered=False
)
print("== Equivalent outputs; the work tells the story ==")
print(f"naive materialized   {naive.elements_materialized} elements "
      "(then filtered most away in XSLT)")
print(f"composed materialized {evaluator.stats.elements_created} elements "
      "(the engine filtered)")
print()
print(serialize_pretty(composed_doc)[:800])
db.close()

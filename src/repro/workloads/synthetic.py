"""Synthetic views, stylesheets and data for the scaling experiments.

Three families:

* **chain** — a k-level view ``t1 -> t2 -> ... -> tk`` over k tables, with
  a matching stylesheet that walks the chain. Sweeping k measures
  composition time against view/stylesheet size (experiments E4/E5, the
  polynomial-complexity claim of Section 4.5).
* **fanout** — a root with b child branches, for breadth scaling and for
  selectivity sweeps (a stylesheet touching only p% of branches).
* **blowup** — a chain view with a stylesheet whose every rule contains
  two apply-templates to the same child, forcing the multi-incoming-edge
  duplication of Section 4.2.2: the TVQ has 2^k nodes for a k-level
  chain (experiment E6).

All generators are deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.schema_tree.builder import ViewBuilder
from repro.schema_tree.model import SchemaTreeQuery
from repro.xslt.model import Stylesheet
from repro.xslt.parser import parse_stylesheet

#: Default generation seeds, named so callers that need cross-process
#: reproducibility (shard partitioning, serving fixtures) can pin them
#: explicitly instead of relying on the keyword defaults staying put.
CHAIN_SEED = 7
FANOUT_SEED = 11


# ---------------------------------------------------------------------------
# Chain family
# ---------------------------------------------------------------------------


def chain_catalog(levels: int) -> Catalog:
    """k tables ``t1..tk``; each row of ``ti`` links to a ``t(i-1)`` row."""
    tables = []
    for level in range(1, levels + 1):
        tables.append(
            table(
                f"t{level}",
                ("id", "INTEGER"),
                ("parent_id", "INTEGER"),
                ("val", "INTEGER"),
                ("label", "TEXT"),
                primary_key="id",
            )
        )
    return Catalog(tables)


def chain_view(levels: int, catalog: Catalog | None = None) -> SchemaTreeQuery:
    """The k-level chain view ``<n1><n2>...<nk>``."""
    builder = ViewBuilder(catalog or chain_catalog(levels))
    node = builder.node("n1", "SELECT * FROM t1", bv="b1")
    for level in range(2, levels + 1):
        node = node.child(
            f"n{level}",
            f"SELECT * FROM t{level} WHERE parent_id = $b{level - 1}.id",
            bv=f"b{level}",
        )
    return builder.build()


def chain_stylesheet(levels: int, selected_levels: int | None = None) -> Stylesheet:
    """A stylesheet walking the first ``selected_levels`` of the chain.

    Each rule wraps its matches in ``<r_i>`` and recurses one level down;
    the deepest selected rule emits the context element.
    """
    depth = selected_levels if selected_levels is not None else levels
    depth = max(1, min(depth, levels))
    parts = [
        '<xsl:template match="/">'
        '<out><xsl:apply-templates select="n1"/></out>'
        "</xsl:template>"
    ]
    for level in range(1, depth):
        parts.append(
            f'<xsl:template match="n{level}">'
            f'<r{level}><xsl:apply-templates select="n{level + 1}"/></r{level}>'
            "</xsl:template>"
        )
    parts.append(
        f'<xsl:template match="n{depth}">'
        '<leaf><xsl:value-of select="."/></leaf>'
        "</xsl:template>"
    )
    return parse_stylesheet("".join(parts))


def populate_chain(
    db: Database,
    levels: int,
    fanout: int = 2,
    roots: int = 4,
    seed: int = CHAIN_SEED,
) -> None:
    """Fill a chain database: each ``ti`` row has ``fanout`` children.

    ``seed`` drives *all* value generation; identical arguments produce
    byte-identical databases in any process.
    """
    rng = random.Random(seed)
    parent_ids: list[int] = []
    next_id = 0
    rows = []
    for _ in range(roots):
        next_id += 1
        rows.append(
            {"id": next_id, "parent_id": 0, "val": rng.randint(0, 100),
             "label": f"l{next_id}"}
        )
    db.insert_rows("t1", rows)
    parent_ids = [r["id"] for r in rows]
    for level in range(2, levels + 1):
        rows = []
        for parent in parent_ids:
            for _ in range(fanout):
                next_id += 1
                rows.append(
                    {
                        "id": next_id,
                        "parent_id": parent,
                        "val": rng.randint(0, 100),
                        "label": f"l{next_id}",
                    }
                )
        db.insert_rows(f"t{level}", rows)
        parent_ids = [r["id"] for r in rows]


# ---------------------------------------------------------------------------
# Fanout family
# ---------------------------------------------------------------------------


def fanout_catalog(branches: int) -> Catalog:
    """A root table plus one table per branch."""
    tables = [
        table("root_t", ("id", "INTEGER"), ("name", "TEXT"), primary_key="id")
    ]
    for branch in range(1, branches + 1):
        tables.append(
            table(
                f"branch{branch}",
                ("id", "INTEGER"),
                ("root_id", "INTEGER"),
                ("val", "INTEGER"),
                primary_key="id",
            )
        )
    return Catalog(tables)


def fanout_view(branches: int, catalog: Catalog | None = None) -> SchemaTreeQuery:
    """A root node with ``branches`` child node types."""
    builder = ViewBuilder(catalog or fanout_catalog(branches))
    root = builder.node("doc", "SELECT * FROM root_t", bv="r")
    for branch in range(1, branches + 1):
        root.child(
            f"b{branch}",
            f"SELECT * FROM branch{branch} WHERE root_id = $r.id",
            bv=f"v{branch}",
        )
    return builder.build()


def fanout_stylesheet(branches: int, touched: int) -> Stylesheet:
    """A stylesheet that processes only the first ``touched`` branches."""
    touched = max(1, min(touched, branches))
    selects = "".join(
        f'<xsl:apply-templates select="b{i}"/>' for i in range(1, touched + 1)
    )
    parts = [
        '<xsl:template match="/">'
        f"<out><xsl:apply-templates select=\"doc\"/></out>"
        "</xsl:template>",
        f'<xsl:template match="doc"><d>{selects}</d></xsl:template>',
    ]
    for i in range(1, touched + 1):
        parts.append(
            f'<xsl:template match="b{i}">'
            '<hit><xsl:value-of select="."/></hit>'
            "</xsl:template>"
        )
    return parse_stylesheet("".join(parts))


def populate_fanout(
    db: Database, branches: int, roots: int = 3, rows_per_branch: int = 10,
    seed: int = FANOUT_SEED,
) -> None:
    """Fill a fanout database deterministically.

    ``seed`` drives *all* value generation; identical arguments produce
    byte-identical databases in any process.
    """
    rng = random.Random(seed)
    db.insert_rows(
        "root_t", ({"id": i + 1, "name": f"r{i + 1}"} for i in range(roots))
    )
    next_id = 0
    for branch in range(1, branches + 1):
        rows = []
        for root_id in range(1, roots + 1):
            for _ in range(rows_per_branch):
                next_id += 1
                rows.append(
                    {"id": next_id, "root_id": root_id,
                     "val": rng.randint(0, 1000)}
                )
        db.insert_rows(f"branch{branch}", rows)


# ---------------------------------------------------------------------------
# Blowup family (Section 4.2.2)
# ---------------------------------------------------------------------------


def blowup_stylesheet(levels: int) -> Stylesheet:
    """Every rule applies templates TWICE to the next level.

    The CTG stays linear but each node has two incoming edges, so the TVQ
    unfolds to 2^k nodes — the worst case of Section 4.2.2/4.5.
    """
    parts = [
        '<xsl:template match="/">'
        '<out>'
        '<xsl:apply-templates select="n1"/>'
        '<xsl:apply-templates select="n1"/>'
        "</out></xsl:template>"
    ]
    for level in range(1, levels):
        parts.append(
            f'<xsl:template match="n{level}">'
            f"<r{level}>"
            f'<xsl:apply-templates select="n{level + 1}"/>'
            f'<xsl:apply-templates select="n{level + 1}"/>'
            f"</r{level}></xsl:template>"
        )
    parts.append(
        f'<xsl:template match="n{levels}">'
        '<leaf><xsl:value-of select="."/></leaf>'
        "</xsl:template>"
    )
    return parse_stylesheet("".join(parts))

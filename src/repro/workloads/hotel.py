"""The hotel-reservation schema of Figure 2 and a deterministic generator.

The schema (verbatim from the paper):

.. code-block:: text

    hotelchain(chainid, companyname, hqstate)
    metroarea(metroid, metroname)
    hotel(hotelid, hotelname, starrating, chain_id,
          metro_id, state_id, city, pool, gym)
    guestroom(r_id, rhotel_id, roomnumber, type, rackrate)
    confroom(c_id, chotel_id, croomnumber, capacity, rackrate)
    availability(a_id, a_r_id, startdate, enddate, price)

The generator is seeded and parameterized by :class:`HotelDataSpec`, so
benchmarks can sweep database scale and selectivity deterministically.
Star ratings are drawn so that roughly 40% of hotels pass the paper's
``starrating > 4`` filter; start dates come from a small pool so the
``GROUP BY startdate`` aggregations of Figure 1 produce a few groups per
hotel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.engine import Database
from repro.relational.schema import Catalog, table

_METRO_NAMES = (
    "chicago", "newyork", "boston", "seattle", "austin", "denver",
    "atlanta", "portland", "phoenix", "miami", "detroit", "honolulu",
)

_START_DATES = ("2003-06-09", "2003-06-10", "2003-06-11", "2003-06-12")

_ROOM_TYPES = ("single", "double", "suite")


def hotel_catalog() -> Catalog:
    """The relational catalog for Figure 2."""
    return Catalog(
        [
            table(
                "hotelchain",
                ("chainid", "INTEGER"),
                ("companyname", "TEXT"),
                ("hqstate", "TEXT"),
                primary_key="chainid",
            ),
            table(
                "metroarea",
                ("metroid", "INTEGER"),
                ("metroname", "TEXT"),
                primary_key="metroid",
            ),
            table(
                "hotel",
                ("hotelid", "INTEGER"),
                ("hotelname", "TEXT"),
                ("starrating", "INTEGER"),
                ("chain_id", "INTEGER"),
                ("metro_id", "INTEGER"),
                ("state_id", "INTEGER"),
                ("city", "TEXT"),
                ("pool", "INTEGER"),
                ("gym", "INTEGER"),
                primary_key="hotelid",
                indexes=["metro_id", "chain_id"],
            ),
            table(
                "guestroom",
                ("r_id", "INTEGER"),
                ("rhotel_id", "INTEGER"),
                ("roomnumber", "INTEGER"),
                ("type", "TEXT"),
                ("rackrate", "REAL"),
                primary_key="r_id",
                indexes=["rhotel_id"],
            ),
            table(
                "confroom",
                ("c_id", "INTEGER"),
                ("chotel_id", "INTEGER"),
                ("croomnumber", "INTEGER"),
                ("capacity", "INTEGER"),
                ("rackrate", "REAL"),
                primary_key="c_id",
                indexes=["chotel_id"],
            ),
            table(
                "availability",
                ("a_id", "INTEGER"),
                ("a_r_id", "INTEGER"),
                ("startdate", "TEXT"),
                ("enddate", "TEXT"),
                ("price", "REAL"),
                primary_key="a_id",
                indexes=["a_r_id", "startdate"],
            ),
        ]
    )


@dataclass(frozen=True)
class HotelDataSpec:
    """Scale and shape parameters of a generated hotel database."""

    metros: int = 3
    hotels_per_metro: int = 4
    guestrooms_per_hotel: int = 5
    confrooms_per_hotel: int = 2
    availability_per_room: int = 2
    chains: int = 2
    seed: int = 2003

    def scaled(self, factor: int) -> "HotelDataSpec":
        """A spec with ``metros`` scaled by ``factor`` (other axes fixed)."""
        return HotelDataSpec(
            metros=self.metros * factor,
            hotels_per_metro=self.hotels_per_metro,
            guestrooms_per_hotel=self.guestrooms_per_hotel,
            confrooms_per_hotel=self.confrooms_per_hotel,
            availability_per_room=self.availability_per_room,
            chains=self.chains,
            seed=self.seed,
        )

    def approximate_rows(self) -> int:
        """Total base-table rows the spec generates (for reporting)."""
        hotels = self.metros * self.hotels_per_metro
        rooms = hotels * self.guestrooms_per_hotel
        return (
            self.chains
            + self.metros
            + hotels
            + rooms
            + hotels * self.confrooms_per_hotel
            + rooms * self.availability_per_room
        )


def hotel_partition_scheme() -> "PartitionScheme":
    """How the hotel workload deals out by ``metroarea.metroid``.

    Every table routes to the metro its rows belong to through the
    foreign-key join path (aliased ``pk``/``part`` as
    :func:`repro.sharding.partition.partition_database` expects);
    ``hotelchain`` has no metro affiliation and replicates to every
    shard — hotels of one chain span metros, and the chain lookup in
    the serving queries must resolve shard-locally.
    """
    from repro.sharding.partition import PartitionScheme

    return PartitionScheme(
        table="metroarea",
        column="metroid",
        key_queries={
            "metroarea": (
                "SELECT metroid AS pk, metroid AS part FROM metroarea"
            ),
            "hotel": "SELECT hotelid AS pk, metro_id AS part FROM hotel",
            "guestroom": (
                "SELECT r_id AS pk, metro_id AS part "
                "FROM guestroom JOIN hotel ON rhotel_id = hotelid"
            ),
            "confroom": (
                "SELECT c_id AS pk, metro_id AS part "
                "FROM confroom JOIN hotel ON chotel_id = hotelid"
            ),
            "availability": (
                "SELECT a_id AS pk, metro_id AS part "
                "FROM availability "
                "JOIN guestroom ON a_r_id = r_id "
                "JOIN hotel ON rhotel_id = hotelid"
            ),
            "hotelchain": None,
        },
    )


def populate_hotel_database(
    db: Database, spec: HotelDataSpec, seed: int | None = None
) -> None:
    """Fill ``db`` (created from :func:`hotel_catalog`) per ``spec``.

    All row and key generation draws from one ``random.Random`` seeded
    by ``seed`` (default: ``spec.seed``), so two processes building the
    same spec produce byte-identical databases — the property shard
    partitioning depends on to be reproducible across processes.
    """
    rng = random.Random(spec.seed if seed is None else seed)
    db.insert_rows(
        "hotelchain",
        (
            {
                "chainid": i + 1,
                "companyname": f"chain{i + 1}",
                "hqstate": rng.choice(("IL", "NY", "CA", "TX")),
            }
            for i in range(spec.chains)
        ),
    )
    db.insert_rows(
        "metroarea",
        (
            {
                "metroid": i + 1,
                "metroname": _METRO_NAMES[i % len(_METRO_NAMES)]
                if i < len(_METRO_NAMES)
                else f"metro{i + 1}",
            }
            for i in range(spec.metros)
        ),
    )

    hotel_rows = []
    hotel_id = 0
    for metro in range(1, spec.metros + 1):
        for _ in range(spec.hotels_per_metro):
            hotel_id += 1
            hotel_rows.append(
                {
                    "hotelid": hotel_id,
                    "hotelname": f"hotel{hotel_id}",
                    "starrating": rng.choices((2, 3, 4, 5), weights=(2, 2, 2, 4))[0],
                    "chain_id": rng.randint(1, spec.chains),
                    "metro_id": metro,
                    "state_id": rng.randint(1, 50),
                    "city": f"city{metro}",
                    "pool": rng.randint(0, 1),
                    "gym": rng.randint(0, 1),
                }
            )
    db.insert_rows("hotel", hotel_rows)

    guestroom_rows = []
    room_id = 0
    for hotel in hotel_rows:
        for number in range(1, spec.guestrooms_per_hotel + 1):
            room_id += 1
            guestroom_rows.append(
                {
                    "r_id": room_id,
                    "rhotel_id": hotel["hotelid"],
                    "roomnumber": 100 + number,
                    "type": rng.choice(_ROOM_TYPES),
                    "rackrate": round(rng.uniform(80, 400), 2),
                }
            )
    db.insert_rows("guestroom", guestroom_rows)

    confroom_rows = []
    conf_id = 0
    for hotel in hotel_rows:
        for number in range(1, spec.confrooms_per_hotel + 1):
            conf_id += 1
            confroom_rows.append(
                {
                    "c_id": conf_id,
                    "chotel_id": hotel["hotelid"],
                    "croomnumber": 10 + number,
                    "capacity": rng.choice((50, 100, 150, 200, 300)),
                    "rackrate": round(rng.uniform(200, 1500), 2),
                }
            )
    db.insert_rows("confroom", confroom_rows)

    availability_rows = []
    avail_id = 0
    for room in guestroom_rows:
        for _ in range(spec.availability_per_room):
            avail_id += 1
            start = rng.choice(_START_DATES)
            availability_rows.append(
                {
                    "a_id": avail_id,
                    "a_r_id": room["r_id"],
                    "startdate": start,
                    "enddate": "2003-06-13",
                    "price": round(room["rackrate"] * rng.uniform(0.6, 1.0), 2),
                }
            )
    db.insert_rows("availability", availability_rows)


def build_hotel_database(
    spec: HotelDataSpec | None = None,
    cross_thread: bool = False,
    seed: int | None = None,
    driver=None,
) -> Database:
    """Create and populate a hotel database in one call.

    ``cross_thread=True`` opens the connection without the engine's
    same-thread check — required when the database is the live source
    behind an update-aware :class:`~repro.serving.server.ViewServer`
    (a writer thread mutates it while server workers re-snapshot it).
    ``seed`` overrides the spec's generation seed (see
    :func:`populate_hotel_database`); ``driver`` picks the storage
    backend (a name like ``"duckdb"`` or an
    :class:`~repro.relational.driver.EngineDriver`; default sqlite).
    """
    db = Database(hotel_catalog(), cross_thread=cross_thread, driver=driver)
    populate_hotel_database(db, spec or HotelDataSpec(), seed=seed)
    db.analyze()
    return db

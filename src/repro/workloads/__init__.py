"""Workloads: the paper's hotel-reservation schema, its worked examples as
code, a deterministic data generator, and synthetic view/stylesheet
generators for the scaling experiments."""

from repro.workloads.hotel import (
    HotelDataSpec,
    build_hotel_database,
    hotel_catalog,
    hotel_partition_scheme,
    populate_hotel_database,
)
from repro.workloads.paper import (
    figure1_view,
    figure4_stylesheet,
    figure15_stylesheet,
    figure17_stylesheet,
    figure25_stylesheet,
)

__all__ = [
    "HotelDataSpec",
    "build_hotel_database",
    "hotel_catalog",
    "hotel_partition_scheme",
    "populate_hotel_database",
    "figure1_view",
    "figure4_stylesheet",
    "figure15_stylesheet",
    "figure17_stylesheet",
    "figure25_stylesheet",
]

"""The paper's worked examples, verbatim as code.

* :func:`figure1_view` — the schema-tree view query of Figure 1 (node ids
  match the paper's numbering),
* :func:`figure4_stylesheet` — the four-rule stylesheet of Figure 4,
* :func:`figure15_stylesheet` — Figure 4 with R2's output removed (the
  forced-unbinding example of Figures 15/16),
* :func:`figure17_stylesheet` — the predicate stylesheet of Figure 17,
* :func:`figure25_stylesheet` — the recursive stylesheet of Figure 25.
"""

from __future__ import annotations

from repro.relational.schema import Catalog
from repro.schema_tree.builder import ViewBuilder
from repro.schema_tree.model import SchemaTreeQuery
from repro.workloads.hotel import hotel_catalog
from repro.xslt.model import Stylesheet
from repro.xslt.parser import parse_stylesheet


def figure1_view(catalog: Catalog | None = None) -> SchemaTreeQuery:
    """The conference-planning view of Figure 1.

    Node ids match the paper: (1) metro, (2) confstat under metro,
    (3) hotel, (4) confstat under hotel, (5) confroom,
    (6) hotel_available, (7) metro_available.
    """
    builder = ViewBuilder(catalog or hotel_catalog())
    metro = builder.node(
        "metro",
        "SELECT metroid, metroname FROM metroarea",
        bv="m",
    )
    metro.child(
        "confstat",
        "SELECT SUM(capacity) FROM confroom, hotel "
        "WHERE chotel_id = hotelid AND metro_id = $m.metroid",
        bv="cs",
    )
    hotel = metro.child(
        "hotel",
        "SELECT * FROM hotel WHERE metro_id = $m.metroid AND starrating > 4",
        bv="h",
    )
    hotel.child(
        "confstat",
        "SELECT SUM(capacity) FROM confroom WHERE chotel_id = $h.hotelid",
        bv="s",
    )
    hotel.child(
        "confroom",
        "SELECT * FROM confroom WHERE chotel_id = $h.hotelid",
        bv="c",
    )
    hotel_available = hotel.child(
        "hotel_available",
        "SELECT COUNT(a_id), startdate FROM availability, guestroom "
        "WHERE rhotel_id = $h.hotelid AND a_r_id = r_id GROUP BY startdate",
        bv="a",
    )
    hotel_available.child(
        "metro_available",
        "SELECT COUNT(a_id) FROM availability, guestroom, hotel "
        "WHERE rhotel_id = hotelid AND a_r_id = r_id "
        "AND metro_id = $m.metroid AND startdate = $a.startdate",
        bv="v",
    )
    return builder.build()


_FIGURE4 = """
<xsl:template match="/">
  <HTML>
    <HEAD></HEAD>
    <BODY>
      <xsl:apply-templates select="metro"/>
    </BODY>
  </HTML>
</xsl:template>

<xsl:template match="metro">
  <result_metro>
    <A></A>
    <xsl:apply-templates select="hotel/confstat"/>
  </result_metro>
</xsl:template>

<xsl:template match="confstat">
  <result_confstat>
    <B></B>
    <xsl:apply-templates select="../hotel_available/../confroom"/>
  </result_confstat>
</xsl:template>

<xsl:template match="metro/hotel/confroom">
  <xsl:value-of select="."/>
</xsl:template>
"""


def figure4_stylesheet() -> Stylesheet:
    """The example stylesheet of Figure 4 (rules R1-R4)."""
    return parse_stylesheet(_FIGURE4)


_FIGURE15 = """
<xsl:template match="/">
  <HTML>
    <HEAD></HEAD>
    <BODY>
      <xsl:apply-templates select="metro"/>
    </BODY>
  </HTML>
</xsl:template>

<xsl:template match="metro">
  <xsl:apply-templates select="hotel/confstat"/>
</xsl:template>

<xsl:template match="confstat">
  <result_confstat>
    <B></B>
    <xsl:apply-templates select="../hotel_available/../confroom"/>
  </result_confstat>
</xsl:template>

<xsl:template match="metro/hotel/confroom">
  <xsl:value-of select="."/>
</xsl:template>
"""


def figure15_stylesheet() -> Stylesheet:
    """Figure 15: like Figure 4 but R2 has a bare apply-templates body,
    triggering forced unbinding (Figure 16)."""
    return parse_stylesheet(_FIGURE15)


_FIGURE17 = """
<xsl:template match="/">
  <HTML>
    <HEAD></HEAD>
    <BODY>
      <xsl:apply-templates select="metro"/>
    </BODY>
  </HTML>
</xsl:template>

<xsl:template match="metro">
  <result_metro>
    <A></A>
    <xsl:apply-templates select="hotel/confstat"/>
  </result_metro>
</xsl:template>

<xsl:template match="confstat">
  <result_confstat>
    <B/>
    <xsl:apply-templates select=".[@SUM_capacity&lt;200]/../hotel_available/../confroom[../confstat[@SUM_capacity&gt;100]][@capacity&gt;250]"/>
  </result_confstat>
</xsl:template>

<xsl:template match="metro[@metroname='chicago']/hotel/confroom">
  <xsl:value-of select="."/>
</xsl:template>
"""


def figure17_stylesheet() -> Stylesheet:
    """The predicate stylesheet of Figure 17.

    The paper writes the conference-capacity attribute as ``@sum``; the
    canonical attribute name our views produce for ``SUM(capacity)`` is
    ``SUM_capacity`` (DESIGN.md decision 4), so the predicates here use
    that name.
    """
    return parse_stylesheet(_FIGURE17)


_FIGURE25 = """
<xsl:template match="/metro">
  <xsl:param name="idx" select="10"/>
  <result_metro>
    <xsl:apply-templates
        select="hotel/hotel_available[@COUNT_a_id&gt;10]/metro_available[@COUNT_a_id&lt;$idx]">
      <xsl:with-param name="idx" select="$idx"/>
    </xsl:apply-templates>
  </result_metro>
</xsl:template>

<xsl:template match="metro_available">
  <xsl:param name="idx"/>
  <xsl:choose>
    <xsl:when test="$idx&lt;=1">
      <xsl:value-of select="."/>
    </xsl:when>
    <xsl:otherwise>
      <result_metroavail>
        <xsl:apply-templates select="self::[@COUNT_a_id&gt;50]/../../..">
          <xsl:with-param name="idx" select="$idx - 1"/>
        </xsl:apply-templates>
      </result_metroavail>
    </xsl:otherwise>
  </xsl:choose>
</xsl:template>
"""


def figure25_stylesheet() -> Stylesheet:
    """The recursive stylesheet of Figure 25 (rules R1-R2).

    As with Figure 17, attribute names follow the canonical aggregate
    naming (``COUNT_a_id`` where the paper writes ``@count``). The paper's
    ``/metro`` match anchors at the document root.
    """
    return parse_stylesheet(_FIGURE25)


_QTREE_COMPATIBLE = """
<xsl:template match="/">
  <HTML>
    <BODY>
      <xsl:apply-templates select="metro"/>
    </BODY>
  </HTML>
</xsl:template>

<xsl:template match="metro">
  <result_metro>
    <xsl:apply-templates select="hotel/confroom"/>
  </result_metro>
</xsl:template>

<xsl:template match="metro/hotel/confroom">
  <xsl:value-of select="."/>
</xsl:template>
"""


def qtree_compatible_stylesheet() -> Stylesheet:
    """A Figure 4 variant without parent-axis navigation.

    The QTree baseline of [7] rejects ``..`` steps (Section 6, point 3 of
    the paper's comparison), so the three-way benchmark E1 uses this
    stylesheet; the interior ``<result_metro>`` output still exposes
    [7]'s leaf-only-output deficiency.
    """
    return parse_stylesheet(_QTREE_COMPATIBLE)

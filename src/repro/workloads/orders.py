"""A second workload domain: order management / invoicing.

The paper's intro motivates XML publishing for business data exchange;
this workload models the classic case — customers, orders, line items
and products published as XML, rendered by stylesheets into invoices and
summaries. It exists to show the composer generalizes beyond the paper's
hotel example, and it feeds a set of equivalence tests and the
``examples/invoice_rendering.py`` walkthrough.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.engine import Database
from repro.relational.schema import Catalog, table
from repro.schema_tree.builder import ViewBuilder
from repro.schema_tree.model import SchemaTreeQuery
from repro.xslt.model import Stylesheet
from repro.xslt.parser import parse_stylesheet

_REGIONS = ("north", "south", "east", "west")
_STATUSES = ("open", "shipped", "billed")


def orders_catalog() -> Catalog:
    """The relational catalog of the orders workload."""
    return Catalog(
        [
            table(
                "customer",
                ("custid", "INTEGER"),
                ("custname", "TEXT"),
                ("region", "TEXT"),
                ("credit", "REAL"),
                primary_key="custid",
            ),
            table(
                "orders",
                ("orderid", "INTEGER"),
                ("o_custid", "INTEGER"),
                ("orderdate", "TEXT"),
                ("status", "TEXT"),
                primary_key="orderid",
            ),
            table(
                "lineitem",
                ("lineid", "INTEGER"),
                ("l_orderid", "INTEGER"),
                ("l_prodid", "INTEGER"),
                ("quantity", "INTEGER"),
                ("price", "REAL"),
                primary_key="lineid",
            ),
            table(
                "product",
                ("prodid", "INTEGER"),
                ("prodname", "TEXT"),
                ("category", "TEXT"),
                primary_key="prodid",
            ),
        ]
    )


@dataclass(frozen=True)
class OrdersDataSpec:
    """Scale parameters for the generated order data."""

    customers: int = 6
    orders_per_customer: int = 3
    lines_per_order: int = 4
    products: int = 12
    seed: int = 42


def populate_orders_database(db: Database, spec: OrdersDataSpec) -> None:
    """Fill ``db`` deterministically per ``spec``."""
    rng = random.Random(spec.seed)
    db.insert_rows(
        "product",
        (
            {
                "prodid": i + 1,
                "prodname": f"product{i + 1}",
                "category": rng.choice(("widget", "gadget", "gizmo")),
            }
            for i in range(spec.products)
        ),
    )
    db.insert_rows(
        "customer",
        (
            {
                "custid": i + 1,
                "custname": f"customer{i + 1}",
                "region": _REGIONS[i % len(_REGIONS)],
                "credit": round(rng.uniform(100, 10_000), 2),
            }
            for i in range(spec.customers)
        ),
    )
    order_rows = []
    line_rows = []
    order_id = 0
    line_id = 0
    for customer in range(1, spec.customers + 1):
        for _ in range(spec.orders_per_customer):
            order_id += 1
            order_rows.append(
                {
                    "orderid": order_id,
                    "o_custid": customer,
                    "orderdate": f"2003-0{rng.randint(1, 6)}-1{rng.randint(0, 9)}",
                    "status": rng.choice(_STATUSES),
                }
            )
            for _ in range(rng.randint(1, spec.lines_per_order)):
                line_id += 1
                line_rows.append(
                    {
                        "lineid": line_id,
                        "l_orderid": order_id,
                        "l_prodid": rng.randint(1, spec.products),
                        "quantity": rng.randint(1, 9),
                        "price": round(rng.uniform(5, 500), 2),
                    }
                )
    db.insert_rows("orders", order_rows)
    db.insert_rows("lineitem", line_rows)


def build_orders_database(spec: OrdersDataSpec | None = None) -> Database:
    """Create and populate an orders database in one call."""
    db = Database(orders_catalog())
    populate_orders_database(db, spec or OrdersDataSpec())
    return db


def orders_view(catalog: Catalog | None = None) -> SchemaTreeQuery:
    """customers > orders > (order_total, lineitems > product_info)."""
    builder = ViewBuilder(catalog or orders_catalog())
    customer = builder.node(
        "customer",
        "SELECT * FROM customer ORDER BY custid",
        bv="cu",
    )
    order = customer.child(
        "order",
        "SELECT * FROM orders WHERE o_custid = $cu.custid ORDER BY orderid",
        bv="o",
    )
    order.child(
        "order_total",
        "SELECT SUM(quantity * price) AS total, COUNT(lineid) AS lines "
        "FROM lineitem WHERE l_orderid = $o.orderid",
        bv="t",
    )
    line = order.child(
        "line",
        "SELECT * FROM lineitem WHERE l_orderid = $o.orderid ORDER BY lineid",
        bv="l",
    )
    line.child(
        "product",
        "SELECT * FROM product WHERE prodid = $l.l_prodid",
        bv="p",
    )
    return builder.build()


INVOICE_STYLESHEET = """
<xsl:template match="/">
  <invoices><xsl:apply-templates select="customer"/></invoices>
</xsl:template>

<xsl:template match="customer">
  <invoice for="{@custname}" region="{@region}">
    <xsl:apply-templates select="order[@status='billed']"/>
  </invoice>
</xsl:template>

<xsl:template match="order">
  <bill order="{@orderid}" date="{@orderdate}">
    <xsl:apply-templates select="order_total"/>
  </bill>
</xsl:template>

<xsl:template match="order_total">
  <amount due="{@total}" items="{@lines}"/>
</xsl:template>
"""


SUMMARY_STYLESHEET = """
<xsl:template match="/">
  <report><xsl:apply-templates select="customer[@credit &gt; 1000]"/></report>
</xsl:template>

<xsl:template match="customer">
  <big_customer name="{@custname}">
    <xsl:apply-templates select="order/order_total[@total &gt; 500]"/>
  </big_customer>
</xsl:template>

<xsl:template match="order_total">
  <big_order total="{@total}"/>
</xsl:template>
"""


LARGE_LINES_STYLESHEET = """
<xsl:template match="/">
  <audit><xsl:apply-templates select="customer"/></audit>
</xsl:template>

<xsl:template match="customer">
  <c name="{@custname}">
    <xsl:apply-templates select="order/line[@quantity &gt; 5][product]"/>
  </c>
</xsl:template>

<xsl:template match="line">
  <flagged qty="{@quantity}" price="{@price}">
    <xsl:apply-templates select="product"/>
  </flagged>
</xsl:template>

<xsl:template match="product">
  <xsl:value-of select="."/>
</xsl:template>
"""


def invoice_stylesheet() -> Stylesheet:
    """Render billed orders as invoices (filters + aggregates + AVTs)."""
    return parse_stylesheet(INVOICE_STYLESHEET)


def summary_stylesheet() -> Stylesheet:
    """High-credit customers' large orders (predicates at two levels)."""
    return parse_stylesheet(SUMMARY_STYLESHEET)


def large_lines_stylesheet() -> Stylesheet:
    """Audit large line items, requiring the product to exist."""
    return parse_stylesheet(LARGE_LINES_STYLESHEET)

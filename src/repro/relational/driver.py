"""Pluggable engine drivers: the backend contract behind ``Database``.

Every embedded-engine-specific decision the relational layer makes —
how to open a connection, how to render a named placeholder, how to
snapshot a live database for a read-only serving pool, how to cancel a
statement mid-flight, which exceptions are transient, whether write
hooks exist for automatic change capture — lives behind
:class:`EngineDriver`. :class:`~repro.relational.engine.Database`,
:class:`~repro.serving.pool.ConnectionPool`,
:class:`~repro.maintenance.tracker.WriteTracker`, and the resilience
deadline machinery all go through the driver, so a new backend is one
subclass plus a conformance-kit run (``tests/relational/conformance``),
not a cross-codebase audit.

Two drivers ship:

* :class:`SqliteDriver` — the stdlib ``sqlite3`` engine the repo grew
  up on. Full capability surface: ``backup()``-based snapshots, the
  authorizer/trace hook pair for auto change capture, engine-level
  read-only enforcement (URI ``mode=ro`` + ``PRAGMA query_only=ON``),
  and ``Connection.interrupt`` for mid-statement cancel.
* :class:`DuckDBDriver` — DuckDB's vectorized columnar executor, the
  cheap first test of whether the paper's one-query-per-schema-node
  plans win bigger off sqlite. Snapshots clone table contents into a
  private in-memory database served through ``cursor()`` sessions;
  cancel goes through ``Connection.interrupt``; there are **no** write
  hooks, so auto change capture raises
  :class:`~repro.errors.DriverCapabilityError` (loudly — callers fall
  back to explicit ``record_write``). Constructing the driver without
  the ``duckdb`` module installed raises
  :class:`~repro.errors.DriverUnavailableError`, which the CLI, the
  conformance kit, and the differential suites all turn into a clean
  skip.

Capability flags are honest, not aspirational: the conformance kit
asserts that every capability a driver *declares* actually works, and
that every capability it does not declare fails loudly.
"""

from __future__ import annotations

import itertools
import re
import sqlite3
import threading
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import (
    DriverCapabilityError,
    DriverUnavailableError,
    register_driver_classifier,
)

#: Authorizer action codes that modify a table (sqlite auto capture).
_WRITE_ACTIONS = (
    sqlite3.SQLITE_INSERT,
    sqlite3.SQLITE_UPDATE,
    sqlite3.SQLITE_DELETE,
)

#: Target table of a DML statement, tolerant of conflict clauses,
#: schema qualification, and quoted identifiers.
_WRITE_SQL_RE = re.compile(
    r"^\s*(?:INSERT\s+(?:OR\s+\w+\s+)?INTO|REPLACE\s+INTO"
    r"|UPDATE(?:\s+OR\s+\w+)?|DELETE\s+FROM)\s+"
    r"[\"'`\[]?(\w+(?:[\"'`\]]?\s*\.\s*[\"'`\[]?\w+)?)",
    re.IGNORECASE,
)

#: Single-quoted string literals (with '' escapes) OR a ``:name``
#: named-parameter reference — used to rewrite placeholder style
#: without touching colons inside literals.
_NAMED_PARAM_RE = re.compile(r"'(?:[^']|'')*'|:([A-Za-z_]\w*)")

#: Process-unique suffixes for shared-cache in-memory clone databases.
_CLONE_IDS = itertools.count(1)


def _write_target(sql_text: str) -> Optional[str]:
    """The table a DML statement writes, or ``None`` for non-DML."""
    match = _WRITE_SQL_RE.match(sql_text)
    if match is None:
        return None
    name = match.group(1)
    # Strip a schema qualifier ("main"."hotel" -> hotel) and any
    # trailing quote characters the loose identifier match kept.
    name = re.split(r"[\"'`\]]?\s*\.\s*[\"'`\[]?", name)[-1]
    return name.strip("\"'`[]")


class EngineSnapshot:
    """A point-in-time copy of a live database, served to pool sessions.

    Produced by :meth:`EngineDriver.snapshot`; the serving pool's
    clone mode keeps one per pool. ``connect()`` opens an independent
    session onto the snapshot (safe for one-borrower-at-a-time use),
    ``refresh(source)`` brings the snapshot forward to the source's
    current contents (the pool drains all sessions first, so no reader
    is in flight), and ``close()`` releases the snapshot's anchor.
    """

    def connect(self):
        """Open an independent session onto the snapshot."""
        raise NotImplementedError

    def refresh(self, source) -> None:
        """Bring the snapshot forward to the source's current contents."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the snapshot's anchor resources."""
        raise NotImplementedError


class EngineDriver:
    """The backend contract: everything engine-specific in one object.

    Subclasses override the capability flags and the methods below;
    :class:`~repro.relational.engine.Database` and the serving pool
    never mention a concrete DB-API module. Drivers are stateless and
    cheap — one instance may serve any number of connections.
    """

    #: Registry / CLI name ("sqlite", "duckdb").
    name: str = "abstract"
    #: Exception classes the backend raises (except-clause tuple).
    errors: tuple = ()
    #: Whether :meth:`snapshot` works (clone-mode pools).
    supports_snapshot: bool = False
    #: Whether :meth:`install_change_capture` works (write hooks for
    #: :meth:`~repro.maintenance.tracker.WriteTracker.attach`).
    supports_auto_capture: bool = False
    #: Whether the *engine itself* rejects writes on a read-only
    #: session (beyond the ``Database`` wrapper's own guard).
    supports_engine_read_only: bool = False
    #: Whether :meth:`cancel` can cut a running statement short.
    supports_cancel: bool = False
    #: Catalog declared-type -> backend DDL type. ``None`` = identity.
    type_map: Optional[Mapping[str, str]] = None

    # -- connections ---------------------------------------------------------

    def connect(self, path: Optional[str] = None, cross_thread: bool = False):
        """Open a writable connection (in-memory when ``path`` is None)."""
        raise NotImplementedError

    def open_read_only(self, path: str):
        """Open an existing database file read-only."""
        raise NotImplementedError

    def configure(self, connection) -> None:
        """Per-connection setup (row factory, session pragmas)."""

    def close(self, connection) -> None:
        """Close a connection, swallowing nothing."""
        connection.close()

    # -- statement execution -------------------------------------------------

    def execute(self, connection, sql: str, bindings: Optional[Mapping] = None):
        """Execute ``sql`` with optional named bindings; returns a cursor
        exposing ``description`` and ``fetchall()``."""
        if bindings:
            return connection.execute(sql, bindings)
        return connection.execute(sql)

    def executemany(self, connection, sql: str, rows: Sequence) -> None:
        """Execute ``sql`` once per element of ``rows``."""
        connection.executemany(sql, rows)

    def commit(self, connection) -> None:
        """Commit, where the backend is not autocommitting."""
        connection.commit()

    def insert_statement(
        self, table: str, columns: Sequence[str]
    ) -> tuple[str, Callable[[Mapping[str, Any]], Any]]:
        """An INSERT statement in this backend's placeholder style, plus
        a function turning a row dict into its parameter payload."""
        raise NotImplementedError

    def analyze(self, connection) -> None:
        """Refresh planner statistics, where the backend needs telling."""

    # -- placeholders --------------------------------------------------------

    def placeholder(self, name: str) -> str:
        """Render the named placeholder for binding key ``name``."""
        raise NotImplementedError

    def rewrite_sql(self, sql: str) -> str:
        """Rewrite raw SQL written in sqlite's ``:name`` placeholder
        style into this backend's style (identity for sqlite)."""
        return sql

    # -- read-only / sanitize / cancel --------------------------------------

    def enforce_read_only(self, connection) -> bool:
        """Turn on engine-level read-only enforcement where supported;
        returns whether the engine now rejects writes itself."""
        return False

    def sanitize(self, connection) -> bool:
        """Make a just-released connection safe to reuse (roll back any
        open transaction); returns ``False`` when the connection is
        beyond repair and must be replaced."""
        return True

    def cancel(self, connection) -> None:
        """Best-effort cancel of the statement running on ``connection``
        (safe to call from another thread; must not raise)."""
        if not self.supports_cancel:
            raise DriverCapabilityError(self.name, "cancel")

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, source) -> EngineSnapshot:
        """Snapshot a live :class:`Database` for a clone-mode pool."""
        raise DriverCapabilityError(self.name, "snapshot")

    # -- change capture ------------------------------------------------------

    def install_change_capture(
        self, connection, record: Callable[[str], Any]
    ) -> None:
        """Install write hooks calling ``record(table)`` for every
        INSERT/UPDATE/DELETE executed on ``connection``. Drivers without
        hooks raise :class:`DriverCapabilityError` — callers must fall
        back to explicit ``record_write`` and say so, not go silent."""
        raise DriverCapabilityError(self.name, "auto change capture")

    def remove_change_capture(self, connection) -> None:
        """Remove hooks installed by :meth:`install_change_capture`."""

    # -- error taxonomy ------------------------------------------------------

    def classify_exception(self, exc: BaseException) -> Optional[str]:
        """Classify a backend exception for the retry policy: one of
        ``"transient"`` / ``"permanent"``, or ``None`` for exceptions
        this driver does not recognize."""
        return None

    # -- description ---------------------------------------------------------

    def contract(self) -> dict:
        """The driver's declared capability surface (docs + kit)."""
        return {
            "name": self.name,
            "snapshot": self.supports_snapshot,
            "auto_capture": self.supports_auto_capture,
            "engine_read_only": self.supports_engine_read_only,
            "cancel": self.supports_cancel,
            "placeholder": self.placeholder("k"),
        }


# ---------------------------------------------------------------------------
# sqlite
# ---------------------------------------------------------------------------


class _SqliteSnapshot(EngineSnapshot):
    """sqlite snapshot: ``backup()`` into a shared-cache memory clone.

    The anchor connection keeps the named in-memory database alive for
    the pool's lifetime; sessions are independent connections to the
    same clone URI.
    """

    def __init__(self, source):
        self.clone_uri = (
            f"file:repro-pool-{next(_CLONE_IDS)}?mode=memory&cache=shared"
        )
        self.anchor = sqlite3.connect(
            self.clone_uri, uri=True, check_same_thread=False
        )
        source.connection.backup(self.anchor)

    def connect(self):
        return sqlite3.connect(
            self.clone_uri, uri=True, check_same_thread=False
        )

    def refresh(self, source) -> None:
        source.connection.backup(self.anchor)

    def close(self) -> None:
        self.anchor.close()


class SqliteDriver(EngineDriver):
    """The stdlib ``sqlite3`` backend (full capability surface)."""

    name = "sqlite"
    errors = (sqlite3.Error,)
    supports_snapshot = True
    supports_auto_capture = True
    supports_engine_read_only = True
    supports_cancel = True
    type_map = None  # catalog types are already sqlite storage classes

    def connect(self, path: Optional[str] = None, cross_thread: bool = False):
        """Open a writable sqlite connection (in-memory without ``path``)."""
        return sqlite3.connect(
            path or ":memory:", check_same_thread=not cross_thread
        )

    def open_read_only(self, path: str):
        """Open a database file via the read-only URI mode."""
        return sqlite3.connect(
            f"file:{path}?mode=ro", uri=True, check_same_thread=False
        )

    def configure(self, connection) -> None:
        """Install the dict-like row factory the engine expects."""
        connection.row_factory = sqlite3.Row

    def insert_statement(self, table, columns):
        """INSERT with ``:column`` placeholders; rows bind as dicts."""
        placeholders = ", ".join(f":{c}" for c in columns)
        sql = (
            f"INSERT INTO {table} ({', '.join(columns)}) "
            f"VALUES ({placeholders})"
        )
        return sql, lambda row: row

    def analyze(self, connection) -> None:
        """Run ANALYZE so the planner has real statistics."""
        connection.execute("ANALYZE")
        connection.commit()

    def placeholder(self, name: str) -> str:
        """sqlite named-placeholder style: ``:name``."""
        return f":{name}"

    def enforce_read_only(self, connection) -> bool:
        """Engine-level write rejection via ``PRAGMA query_only=ON``."""
        connection.execute("PRAGMA query_only=ON")
        return True

    def sanitize(self, connection) -> bool:
        """Roll back the read transaction an interrupted statement keeps."""
        try:
            if connection.in_transaction:
                connection.rollback()
        except sqlite3.Error:
            return False
        return True

    def cancel(self, connection) -> None:
        """Cut the running statement short via ``Connection.interrupt``."""
        try:
            connection.interrupt()
        except Exception:
            pass

    def snapshot(self, source) -> EngineSnapshot:
        """Backup-API snapshot into a shared-cache memory clone."""
        return _SqliteSnapshot(source)

    def install_change_capture(self, connection, record) -> None:
        """Capture every DML target via the authorizer + trace pair."""
        # The stdlib sqlite3 module exposes no update_hook, so capture
        # combines two hooks (see repro.maintenance.tracker for the
        # full rationale):
        #
        # - the trace callback fires on *every* statement execution —
        #   including re-executions served from the prepared-statement
        #   cache — and receives the expanded SQL text, from which the
        #   DML target table parses directly;
        # - the authorizer fires at prepare time and names every
        #   written table, catching indirect writes the text does not
        #   mention (trigger bodies, cascading deletes). Those extras
        #   bump at the statement's first execution.
        #
        # sqlite3 serializes callbacks with statement execution on the
        # owning connection, so ``pending`` needs no lock of its own.
        pending: set[str] = set()

        def authorizer(action, arg1, _arg2, _dbname, _trigger) -> int:
            if action in _WRITE_ACTIONS and arg1:
                pending.add(arg1)
            return sqlite3.SQLITE_OK

        def trace(sql_text: str) -> None:
            direct = _write_target(sql_text)
            if direct is None:
                return
            if pending:
                extras = pending - {direct}
                pending.clear()
                for table in sorted(extras):
                    record(table)
            record(direct)

        connection.set_authorizer(authorizer)
        connection.set_trace_callback(trace)

    def remove_change_capture(self, connection) -> None:
        """Clear the authorizer and trace-callback slots."""
        connection.set_authorizer(None)
        connection.set_trace_callback(None)

    def classify_exception(self, exc: BaseException) -> Optional[str]:
        """Transient markers (busy/locked/interrupted/disk I/O) on
        ``OperationalError``; anything else is not ours to judge."""
        from repro.errors import TRANSIENT_SQLITE_MARKERS

        if isinstance(exc, sqlite3.OperationalError):
            message = str(exc).lower()
            if any(marker in message for marker in TRANSIENT_SQLITE_MARKERS):
                return "transient"
        return None


# ---------------------------------------------------------------------------
# DuckDB
# ---------------------------------------------------------------------------


class _DuckDBSnapshot(EngineSnapshot):
    """DuckDB snapshot: table contents copied into a private in-memory
    database, served through ``cursor()`` sessions.

    DuckDB has no cross-connection ``backup()``; the snapshot recreates
    the catalog's tables on a root in-memory connection and bulk-copies
    every row out of the source. ``cursor()`` sessions share the root
    database (DuckDB's documented multi-thread pattern), and the pool's
    drain barrier guarantees no session reads while ``refresh`` swaps
    the contents.
    """

    def __init__(self, driver: "DuckDBDriver", source):
        self._driver = driver
        self.root = driver._duckdb.connect(":memory:")
        driver.configure(self.root)
        for ddl in source.catalog.ddl_statements(driver.type_map):
            self.root.execute(ddl)
        self._tables = source.catalog.table_names()
        self._copy_all(source)

    def _copy_all(self, source) -> None:
        for table in self._tables:
            rows = source.connection.execute(
                f"SELECT * FROM {table}"
            ).fetchall()
            self.root.execute(f"DELETE FROM {table}")
            if rows:
                marks = ", ".join("?" for _ in rows[0])
                self.root.executemany(
                    f"INSERT INTO {table} VALUES ({marks})", rows
                )

    def connect(self):
        return self.root.cursor()

    def refresh(self, source) -> None:
        self._copy_all(source)

    def close(self) -> None:
        self.root.close()


class DuckDBDriver(EngineDriver):
    """The DuckDB backend (vectorized columnar executor).

    Declared-unsupported: auto change capture (no write hooks — tracked
    engines must ``record_write`` explicitly) and engine-level
    read-only enforcement on snapshot sessions (the ``Database``
    wrapper's guard carries it instead). ``REAL`` catalog columns map
    to ``DOUBLE`` (DuckDB's ``REAL`` is a 4-byte float; sqlite's is an
    8-byte double — the mapping keeps float values byte-identical
    across backends), and connections pin sqlite's NULLS-FIRST
    ordering so ORDER BY ties break identically.
    """

    name = "duckdb"
    supports_snapshot = True
    supports_auto_capture = False
    supports_engine_read_only = False
    supports_cancel = True
    type_map = {"REAL": "DOUBLE"}

    def __init__(self) -> None:
        try:
            import duckdb
        except ImportError as exc:  # pragma: no cover - environment
            raise DriverUnavailableError(
                "duckdb", "the duckdb module is not installed"
            ) from exc
        self._duckdb = duckdb
        self.errors = (duckdb.Error,)
        register_driver_classifier(self.classify_exception)

    def connect(self, path: Optional[str] = None, cross_thread: bool = False):
        """Open a writable DuckDB connection (in-memory without ``path``)."""
        # DuckDB connections carry no same-thread check; cross_thread
        # is the serialized-hand-off contract either way.
        connection = self._duckdb.connect(path or ":memory:")
        return connection

    def open_read_only(self, path: str):
        """Open a database file with DuckDB's native read-only flag."""
        return self._duckdb.connect(path, read_only=True)

    def configure(self, connection) -> None:
        """Pin sqlite-compatible session defaults (NULLS FIRST ordering)."""
        # sqlite orders NULLs first under ASC; DuckDB defaults to
        # NULLS LAST. Pin the sqlite convention so cross-backend byte
        # equivalence does not hinge on NULL-free order keys.
        try:
            connection.execute("SET default_null_order='nulls_first'")
        except self.errors:  # pragma: no cover - setting renamed
            pass

    def insert_statement(self, table, columns):
        """INSERT with ``?`` qmarks; rows bind as column-ordered tuples."""
        marks = ", ".join("?" for _ in columns)
        sql = f"INSERT INTO {table} ({', '.join(columns)}) VALUES ({marks})"
        return sql, lambda row: tuple(row[c] for c in columns)

    def commit(self, connection) -> None:
        """No-op: DuckDB autocommits outside explicit transactions."""
        # DuckDB autocommits each statement outside explicit
        # transactions; a bare commit() would raise TransactionException.
        pass

    def placeholder(self, name: str) -> str:
        """DuckDB named-placeholder style: ``$name``."""
        return f"${name}"

    def rewrite_sql(self, sql: str) -> str:
        """Rewrite sqlite ``:name`` placeholders to ``$name``, skipping
        string literals."""
        return _NAMED_PARAM_RE.sub(
            lambda m: m.group(0) if m.group(1) is None else f"${m.group(1)}",
            sql,
        )

    def sanitize(self, connection) -> bool:
        """Roll back any open transaction; probe the session when the
        rollback itself fails."""
        try:
            connection.rollback()
        except self.errors:
            # TransactionException("no transaction is active") is the
            # healthy autocommit case; any other failure means the
            # session must prove itself with a live statement.
            try:
                connection.execute("SELECT 1").fetchall()
            except Exception:
                return False
        except Exception:
            return False
        return True

    def cancel(self, connection) -> None:
        """Cut the running statement short via ``Connection.interrupt``."""
        try:
            connection.interrupt()
        except Exception:
            pass

    def snapshot(self, source) -> EngineSnapshot:
        """Row-copy snapshot into a private in-memory root connection."""
        return _DuckDBSnapshot(self, source)

    def classify_exception(self, exc: BaseException) -> Optional[str]:
        """Interrupt/IO/transaction/connection errors are transient; other
        DuckDB errors are permanent; non-DuckDB exceptions pass."""
        duckdb = self._duckdb
        interrupt = getattr(duckdb, "InterruptException", ())
        if interrupt and isinstance(exc, interrupt):
            return "transient"
        transient = tuple(
            kind
            for kind in (
                getattr(duckdb, "IOException", None),
                getattr(duckdb, "TransactionException", None),
                getattr(duckdb, "ConnectionException", None),
            )
            if kind is not None
        )
        if transient and isinstance(exc, transient):
            return "transient"
        if isinstance(exc, getattr(duckdb, "Error", ())):
            # Interrupts on some duckdb builds surface as a generic
            # Error whose message names the interrupt.
            if "interrupt" in str(exc).lower():
                return "transient"
            return "permanent"
        return None


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

#: Backend name -> driver class. Order is the CLI/help order.
DRIVERS: dict[str, type] = {
    "sqlite": SqliteDriver,
    "duckdb": DuckDBDriver,
}

BACKEND_NAMES = tuple(DRIVERS)

_default_lock = threading.Lock()
_default_instances: dict[str, EngineDriver] = {}


def resolve_driver(backend: "str | EngineDriver | None") -> EngineDriver:
    """Resolve a backend name (or pass a driver through) to a driver.

    ``None`` means the default sqlite driver. Unknown names raise
    :class:`~repro.errors.DriverUnavailableError` listing the known
    backends; a known backend whose module is missing raises the same
    error with the import failure as context (graceful-skip hook for
    tests and the CLI).
    """
    if backend is None:
        backend = "sqlite"
    if isinstance(backend, EngineDriver):
        return backend
    cls = DRIVERS.get(backend)
    if cls is None:
        raise DriverUnavailableError(
            str(backend),
            f"unknown backend (expected one of {', '.join(DRIVERS)})",
        )
    with _default_lock:
        instance = _default_instances.get(backend)
        if instance is None:
            instance = _default_instances[backend] = cls()
        return instance


def default_driver() -> SqliteDriver:
    """The process-wide default (sqlite) driver."""
    return resolve_driver("sqlite")


def backend_available(backend: str) -> bool:
    """Whether ``backend`` can actually be instantiated here."""
    try:
        resolve_driver(backend)
    except DriverUnavailableError:
        return False
    return True

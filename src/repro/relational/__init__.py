"""Relational engine layer: catalog plus a sqlite-backed execution engine.

The paper pushes XSLT processing into SQL run by a relational engine; this
package is that engine. :class:`~repro.relational.schema.Catalog` declares
tables/columns (and generates DDL); :class:`~repro.relational.engine.Database`
wraps an in-memory sqlite connection, executes parameterized tag queries
against binding environments, and counts the work done (queries, rows) for
the benchmark harness.
"""

from repro.relational.schema import Catalog, Column, Table
from repro.relational.engine import Database, QueryStats

__all__ = ["Catalog", "Column", "Table", "Database", "QueryStats"]

"""Relational engine layer: catalog plus a driver-backed execution engine.

The paper pushes XSLT processing into SQL run by a relational engine; this
package is that engine. :class:`~repro.relational.schema.Catalog` declares
tables/columns (and generates DDL); :class:`~repro.relational.engine.Database`
wraps one backend connection opened through an
:class:`~repro.relational.driver.EngineDriver` (in-memory sqlite by
default, DuckDB via ``driver="duckdb"``), executes parameterized tag
queries against binding environments, and counts the work done (queries,
rows) for the benchmark harness.
"""

from repro.relational.driver import (
    BACKEND_NAMES,
    DRIVERS,
    DuckDBDriver,
    EngineDriver,
    EngineSnapshot,
    SqliteDriver,
    backend_available,
    default_driver,
    resolve_driver,
)
from repro.relational.engine import Database, QueryStats
from repro.relational.schema import Catalog, Column, Table

__all__ = [
    "BACKEND_NAMES",
    "Catalog",
    "Column",
    "DRIVERS",
    "Database",
    "DuckDBDriver",
    "EngineDriver",
    "EngineSnapshot",
    "QueryStats",
    "SqliteDriver",
    "Table",
    "backend_available",
    "default_driver",
    "resolve_driver",
]

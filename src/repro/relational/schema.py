"""Relational catalog: table and column declarations, DDL generation.

The catalog plays two roles:

* at composition time it answers column-resolution questions (it
  implements the :class:`repro.sql.analysis.TableColumns` protocol used to
  expand ``*`` and ``TEMP.*``),
* at execution time it generates the sqlite DDL the engine creates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import SchemaError

#: Supported column types, mapped to sqlite storage classes.
_SQL_TYPES = {"INTEGER": "INTEGER", "REAL": "REAL", "TEXT": "TEXT"}


@dataclass(frozen=True)
class Column:
    """One column: a name and a type (INTEGER, REAL, or TEXT)."""

    name: str
    type: str = "TEXT"

    def __post_init__(self) -> None:
        if self.type not in _SQL_TYPES:
            raise SchemaError(
                f"column {self.name!r}: unknown type {self.type!r} "
                f"(expected one of {sorted(_SQL_TYPES)})"
            )

    def ddl(self, type_map: Optional[dict] = None) -> str:
        """The column's fragment of a CREATE TABLE statement.

        ``type_map`` remaps declared types per backend (an engine
        driver's ``type_map`` — e.g. DuckDB stores ``REAL`` as
        ``DOUBLE`` to match sqlite's 8-byte float semantics).
        """
        rendered = _SQL_TYPES[self.type]
        if type_map:
            rendered = type_map.get(rendered, rendered)
        return f"{self.name} {rendered}"


@dataclass
class Table:
    """One table: a name, ordered columns, an optional primary key, and
    optional single-column secondary indexes (join/filter columns)."""

    name: str
    columns: list[Column] = field(default_factory=list)
    primary_key: Optional[str] = None
    indexes: list[str] = field(default_factory=list)

    def column_names(self) -> list[str]:
        """Ordered column names."""
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        """Whether a column with ``name`` exists."""
        return any(c.name == name for c in self.columns)

    def ddl(self, type_map: Optional[dict] = None) -> str:
        """The CREATE TABLE statement for this table."""
        parts = [c.ddl(type_map) for c in self.columns]
        if self.primary_key is not None:
            if not self.has_column(self.primary_key):
                raise SchemaError(
                    f"table {self.name!r}: primary key {self.primary_key!r} "
                    "is not a column"
                )
            parts.append(f"PRIMARY KEY ({self.primary_key})")
        return f"CREATE TABLE {self.name} ({', '.join(parts)})"

    def index_ddl(self) -> list[str]:
        """CREATE INDEX statements for the declared secondary indexes."""
        statements = []
        for column in self.indexes:
            if not self.has_column(column):
                raise SchemaError(
                    f"table {self.name!r}: index column {column!r} "
                    "is not a column"
                )
            statements.append(
                f"CREATE INDEX idx_{self.name}_{column} "
                f"ON {self.name} ({column})"
            )
        return statements


class Catalog:
    """An ordered collection of tables."""

    def __init__(self, tables: Optional[Iterable[Table]] = None):
        self._tables: dict[str, Table] = {}
        for table in tables or ():
            self.add(table)

    def add(self, table: Table) -> Table:
        """Register a table; raises on duplicates."""
        if table.name in self._tables:
            raise SchemaError(f"duplicate table {table.name!r}")
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name; raises SchemaError if unknown."""
        if name not in self._tables:
            raise SchemaError(f"unknown table {name!r}")
        return self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self):
        return iter(self._tables.values())

    def table_names(self) -> list[str]:
        """Table names in registration order."""
        return list(self._tables)

    # TableColumns protocol ------------------------------------------------

    def columns_of(self, table: str) -> list[str]:
        """Ordered column names of ``table`` (TableColumns protocol)."""
        return self.table(table).column_names()

    # DDL --------------------------------------------------------------------

    def ddl_statements(self, type_map: Optional[dict] = None) -> list[str]:
        """CREATE TABLE (and CREATE INDEX) statements for every table.

        ``type_map`` is a backend driver's declared-type remapping
        (``None`` keeps the sqlite storage classes).
        """
        statements = [t.ddl(type_map) for t in self]
        for t in self:
            statements.extend(t.index_ddl())
        return statements


def table(
    name: str,
    *columns: tuple[str, str],
    primary_key: Optional[str] = None,
    indexes: Optional[list[str]] = None,
) -> Table:
    """Shorthand constructor: ``table("t", ("id", "INTEGER"), ("x", "TEXT"))``."""
    return Table(name, [Column(n, t) for n, t in columns], primary_key,
                 list(indexes or []))

"""Driver-backed execution engine for tag queries.

:class:`Database` owns one backend connection created from a
:class:`~repro.relational.schema.Catalog` through an
:class:`~repro.relational.driver.EngineDriver` (sqlite by default;
DuckDB via ``driver="duckdb"``). Every backend-specific decision —
connection setup, placeholder style, type mapping, read-only
enforcement, statement cancel — goes through the driver, so the engine
itself is backend-neutral. Tag queries (SQL ASTs with ``$var.column``
parameters) execute through :meth:`Database.run_query` against a
*binding environment*: a mapping from binding-variable name to the
parent tuple (a ``dict``) it currently ranges over — exactly the
evaluation model of schema-tree queries in Section 2.1.

The engine counts queries and rows so benchmarks can report the work each
execution strategy performs.

Threading contract
------------------

A :class:`Database` is **not** a shared object: one connection serves one
thread of execution at a time. The concurrent-serving layer
(:mod:`repro.serving`) gives every worker thread its *own* ``Database`` —
its own sqlite connection and its own :class:`QueryStats` — through a
connection pool, so neither sqlite cursors nor counters are ever shared
mutable state across requests. Concretely:

* :meth:`Database.open` deliberately passes ``check_same_thread=False``:
  pooled connections are created by the pool's owning thread and then
  used by exactly one worker at a time (hand-off is serialized by the
  pool's queue), which is the safe use sqlite's check is too coarse to
  allow.
* :meth:`Database.open` also opens **read-only** by default (URI
  ``mode=ro`` plus ``PRAGMA query_only=ON``), so a pooled connection can
  never write — serving traffic cannot corrupt the database, and sqlite
  readers never block each other.
* :class:`QueryStats` increments are guarded by an internal lock, so a
  stats object that *is* intentionally shared (e.g. a pool-wide
  aggregate) loses no increments under concurrent recording.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.errors import ViewEvaluationError
from repro.relational.driver import (
    EngineDriver,
    resolve_driver,
    _write_target,
)
from repro.relational.schema import Catalog
from repro.sql.ast import Select
from repro.sql.params import collect_params, placeholder_name
from repro.sql.printer import print_select

Row = dict[str, Any]


@dataclass
class QueryStats:
    """Work counters for one engine (reset between measured runs).

    Increments go through :meth:`record` under an internal lock, so one
    stats object may safely be shared by several threads (the serving
    layer's pool-wide aggregates do exactly that) without losing counts.
    """

    queries_executed: int = 0
    rows_fetched: int = 0
    #: Wall-clock seconds spent inside sqlite (execute + fetch), summed
    #: over every recorded query — the "query" phase of the serve-bench
    #: profile breakdown.
    query_seconds: float = 0.0
    sql_texts: list[str] = field(default_factory=list)
    keep_sql: bool = False

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(
        self, rows: int, sql: Optional[str] = None, seconds: float = 0.0
    ) -> None:
        """Count one executed query returning ``rows`` rows (thread-safe)."""
        with self._lock:
            self.queries_executed += 1
            self.rows_fetched += rows
            self.query_seconds += seconds
            if self.keep_sql and sql is not None:
                self.sql_texts.append(sql)

    def merge(self, other: "QueryStats") -> None:
        """Fold another stats object's counters into this one."""
        with self._lock:
            self.queries_executed += other.queries_executed
            self.rows_fetched += other.rows_fetched
            self.query_seconds += other.query_seconds
            if self.keep_sql:
                self.sql_texts.extend(other.sql_texts)

    def snapshot(self) -> dict[str, float]:
        """The counters as a plain dict (one consistent read)."""
        with self._lock:
            return {
                "queries_executed": self.queries_executed,
                "rows_fetched": self.rows_fetched,
                "query_seconds": self.query_seconds,
            }

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.queries_executed = 0
            self.rows_fetched = 0
            self.query_seconds = 0.0
            self.sql_texts.clear()


class Database:
    """A database (in-memory sqlite by default) described by a catalog.

    ``driver`` picks the backend: an
    :class:`~repro.relational.driver.EngineDriver` instance or a
    registry name (``"sqlite"``, ``"duckdb"``); ``None`` means sqlite.
    """

    def __init__(
        self,
        catalog: Catalog,
        create: bool = True,
        path: Optional[str] = None,
        stats: Optional[QueryStats] = None,
        connection=None,
        read_only: bool = False,
        cross_thread: bool = False,
        driver: "EngineDriver | str | None" = None,
    ):
        self.catalog = catalog
        self.driver = resolve_driver(driver)
        if connection is not None:
            self.connection = connection
        else:
            # ``cross_thread`` relaxes sqlite's same-thread check for the
            # update-aware serving path, where a writer thread mutates
            # this database while a server worker snapshots it (the
            # hand-off is serialized by the server's sync lock — see the
            # threading contract above).
            self.connection = self.driver.connect(
                path, cross_thread=cross_thread
            )
        self.driver.configure(self.connection)
        self.stats = stats if stats is not None else QueryStats()
        self.read_only = read_only
        self.tracker = None
        self._tracker_auto = False
        # Cooperative cancellation hook (repro.resilience): when set, it
        # is invoked at the top of every run_query — a query/row
        # boundary — and may raise (e.g. DeadlineExceeded) to abandon
        # the evaluation between statements. Hard mid-statement cutoff
        # is the caller's job via ``driver.cancel(connection)``.
        self.cancel_check: Optional[Callable[[], None]] = None
        self._sql_cache: dict[int, tuple[str, list, Select]] = {}
        if create:
            self.create_all()

    @classmethod
    def open(
        cls,
        catalog: Catalog,
        path: str,
        read_only: bool = True,
        stats: Optional[QueryStats] = None,
        driver: "EngineDriver | str | None" = None,
    ) -> "Database":
        """Open an existing database file without creating tables.

        By default the connection is **read-only** (for sqlite: URI
        ``mode=ro`` plus ``PRAGMA query_only=ON``) and safe for pooled
        hand-off to worker threads — see the module docstring for the
        threading contract. Pass ``read_only=False`` for a plain
        writable connection.
        """
        engine_driver = resolve_driver(driver)
        if not read_only:
            return cls(
                catalog, create=False, path=path, stats=stats,
                driver=engine_driver,
            )
        connection = engine_driver.open_read_only(path)
        db = cls(
            catalog,
            create=False,
            connection=connection,
            stats=stats,
            read_only=True,
            driver=engine_driver,
        )
        engine_driver.enforce_read_only(db.connection)
        return db

    @classmethod
    def from_connection(
        cls,
        catalog: Catalog,
        connection,
        stats: Optional[QueryStats] = None,
        read_only: bool = False,
        driver: "EngineDriver | str | None" = None,
    ) -> "Database":
        """Wrap an existing backend connection (used by the serving pool)."""
        return cls(
            catalog,
            create=False,
            connection=connection,
            stats=stats,
            read_only=read_only,
            driver=driver,
        )

    # -- change capture ------------------------------------------------------

    def attach_tracker(self, tracker, auto: bool = False) -> None:
        """Publish this engine's writes to a maintenance ``tracker``.

        ``tracker`` is a :class:`repro.maintenance.tracker.WriteTracker`
        (anything with ``record_write(table, rows=...)``). In the default
        **explicit** mode only the engine's own write API
        (:meth:`insert_rows`) records; raw :meth:`run_sql` writes are the
        caller's responsibility. With ``auto=True`` the tracker installs
        the driver's write-capture hooks on this connection so *every*
        INSERT/UPDATE/DELETE is captured, including raw SQL — and the
        explicit path stands down to avoid double counting. Drivers
        without write hooks raise
        :class:`~repro.errors.DriverCapabilityError` before any state
        changes (auto capture degrades loudly, never silently).
        """
        self._check_writable("attach a write tracker")
        if auto:
            # Hooks first: on a driver without write hooks this raises
            # DriverCapabilityError *before* any tracker state is set,
            # so a failed auto attach can never leave the engine
            # half-attached (tracker set, hooks absent, explicit path
            # standing down — which would undercount silently).
            tracker.attach(self)
        self.tracker = tracker
        self._tracker_auto = auto

    def record_write(self, table: str, rows: int = 1) -> None:
        """Explicitly record a write against ``table`` (no-op untracked)."""
        if self.tracker is not None:
            self.tracker.record_write(table, rows=rows)

    # -- schema / data -------------------------------------------------------

    def create_all(self) -> None:
        """Create every table in the catalog (driver type mapping applied)."""
        self._check_writable("create tables")
        for ddl in self.catalog.ddl_statements(self.driver.type_map):
            self.driver.execute(self.connection, ddl)
        self.driver.commit(self.connection)

    def insert_rows(self, table: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert dict rows into ``table``; returns the number inserted."""
        self._check_writable(f"insert into {table}")
        declared = self.catalog.table(table)
        columns = declared.column_names()
        sql, as_params = self.driver.insert_statement(table, columns)
        payload: list[Any] = []
        for row in rows:
            missing = [c for c in columns if c not in row]
            if missing:
                raise ViewEvaluationError(
                    f"insert into {table}: row missing columns {missing}"
                )
            payload.append(as_params({c: row[c] for c in columns}))
        if payload:
            self.driver.executemany(self.connection, sql, payload)
        self.driver.commit(self.connection)
        # Auto-tracked engines capture the INSERT through the driver's
        # write hooks; recording here too would double-bump the version.
        if payload and self.tracker is not None and not self._tracker_auto:
            self.tracker.record_write(table, rows=len(payload))
        return len(payload)

    def _check_writable(self, action: str) -> None:
        if self.read_only:
            raise ViewEvaluationError(
                f"cannot {action}: connection is read-only"
            )

    def analyze(self) -> None:
        """Refresh the backend's planner statistics where it needs telling.

        Worth calling after bulk-loading on sqlite: with stats the
        planner picks selective indexes instead of guessing, which
        matters for the decorrelated bulk queries and correlated point
        queries alike. Backends with automatic statistics (DuckDB)
        no-op.
        """
        self._check_writable("ANALYZE")
        self.driver.analyze(self.connection)

    def table_count(self, table: str) -> int:
        """Row count of a base table."""
        cursor = self.driver.execute(
            self.connection, f"SELECT COUNT(*) FROM {table}"
        )
        return int(cursor.fetchone()[0])

    # -- query execution ----------------------------------------------------------

    def run_query(self, query: Select, env: Optional[Mapping[str, Row]] = None) -> list[Row]:
        """Execute a tag query under a binding environment.

        Args:
            query: the SQL AST; parameters ``$var.column`` are looked up as
                ``env[var][column]``.
            env: binding environment; may be ``None`` for closed queries.

        Returns:
            Result rows as dicts. When the result contains duplicate column
            names (possible after ``*`` plus carried columns), later
            occurrences are exposed with a ``__2``-style suffix so no value
            is silently lost.
        """
        if self.cancel_check is not None:
            self.cancel_check()
        # Cache the rendered SQL per query object. The cache entry keeps a
        # reference to the query so id() values cannot be recycled.
        key = id(query)
        cached = self._sql_cache.get(key)
        if cached is None or cached[2] is not query:
            sql = print_select(query, placeholders=self.driver.placeholder)
            params = collect_params(query)
            self._sql_cache[key] = (sql, params, query)
        else:
            sql, params, _ = cached
        bindings: dict[str, Any] = {}
        for param in params:
            if env is None or param.var not in env:
                raise ViewEvaluationError(
                    f"unbound binding variable ${param.var} for query: {sql}"
                )
            parent_row = env[param.var]
            if param.column not in parent_row:
                raise ViewEvaluationError(
                    f"binding variable ${param.var} has no column "
                    f"{param.column!r} (has: {sorted(parent_row)})"
                )
            bindings[placeholder_name(param)] = parent_row[param.column]
        started = time.perf_counter()
        try:
            cursor = self.driver.execute(self.connection, sql, bindings)
        except self.driver.errors as exc:
            raise ViewEvaluationError(
                f"{self.driver.name} error: {exc}; SQL: {sql}"
            ) from exc
        names = [d[0] for d in cursor.description]
        if len(set(names)) == len(names):
            # Fast path: unique column names, one dict(zip) per row.
            rows = [dict(zip(names, raw)) for raw in cursor.fetchall()]
        else:
            rows = []
            for raw in cursor.fetchall():
                row: Row = {}
                for index, name in enumerate(names):
                    if name in row:
                        suffix = 2
                        while f"{name}__{suffix}" in row:
                            suffix += 1
                        name = f"{name}__{suffix}"
                    row[name] = raw[index]
                rows.append(row)
        self.stats.record(len(rows), sql, time.perf_counter() - started)
        return rows

    def run_sql(self, sql: str, bindings: Optional[Mapping[str, Any]] = None) -> list[Row]:
        """Execute raw SQL (used by tests and the harness).

        Raw SQL is written in sqlite's ``:name`` placeholder style; the
        driver rewrites it for other backends
        (:meth:`~repro.relational.driver.EngineDriver.rewrite_sql`).
        On backends without engine-level read-only enforcement, DML
        against a read-only session is rejected here — the wrapper
        guard that stands in for sqlite's ``PRAGMA query_only``.
        """
        if self.read_only and not self.driver.supports_engine_read_only:
            target = _write_target(sql)
            if target is not None:
                raise ViewEvaluationError(
                    f"cannot write {target}: connection is read-only"
                )
        cursor = self.driver.execute(
            self.connection, self.driver.rewrite_sql(sql), dict(bindings or {})
        )
        description = getattr(cursor, "description", None)
        if description is None:
            self.driver.commit(self.connection)
            return []
        names = [d[0] for d in description]
        return [dict(zip(names, raw)) for raw in cursor.fetchall()]

    def close(self) -> None:
        """Close the underlying backend connection."""
        self.driver.close(self.connection)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

"""Structural query transforms backing UNBIND and NEST (Figures 10-13).

The central operation is :func:`inline_parameter`: given a query ``q``
parameterized by ``$var`` and the tag query ``parent`` that defines
``var``, rewrite ``q`` so ``parent`` appears as a derived table and every
``$var.c`` reference becomes ``ALIAS.c``. Together with
:func:`carry_parent_columns` (add the parent's columns to the select list,
extending GROUP BY when the query aggregates) this implements one
unbinding step of Figure 10/12; :mod:`repro.core.unbind` iterates it up
the schema tree.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import SQLTransformError
from repro.sql.analysis import (
    TableColumns,
    from_item_columns,
    has_top_level_aggregate,
    output_columns,
)
from repro.sql.ast import (
    ColumnRef,
    DerivedTable,
    Expr,
    ParamRef,
    Select,
    SelectItem,
    Star,
)
from repro.sql.params import map_exprs, referenced_vars


def used_aliases(select: Select) -> set[str]:
    """All FROM binding names used in this query and its subqueries
    (derived tables and EXISTS/IN bodies alike)."""
    from repro.sql.ast import ExistsExpr, InExpr
    from repro.sql.params import walk_exprs

    names: set[str] = set()

    def visit(query: Select) -> None:
        for from_item in query.from_items:
            names.add(from_item.binding_name)
            if isinstance(from_item, DerivedTable):
                visit(from_item.select)
        for expr in walk_exprs(query):
            if isinstance(expr, ExistsExpr):
                visit(expr.select)
            elif isinstance(expr, InExpr) and expr.select is not None:
                visit(expr.select)
            else:
                from repro.sql.ast import ScalarSubquery

                if isinstance(expr, ScalarSubquery):
                    visit(expr.select)

    visit(select)
    return names


def fresh_alias(select: Select, base: str = "TEMP") -> str:
    """A derived-table alias not colliding with any name in ``select``.

    Follows the paper's TEMP/TEMP1/TEMP2 convention (Figures 7, 16, 26).
    """
    taken = used_aliases(select)
    if base not in taken:
        return base
    counter = 1
    while f"{base}{counter}" in taken:
        counter += 1
    return f"{base}{counter}"


def qualify_bare_stars(query: Select) -> None:
    """Rewrite an unqualified ``*`` select item into per-FROM-item stars.

    Must run before new FROM items are appended, so that the original
    ``*`` does not silently widen to cover the new tables.
    """
    new_items: list[SelectItem] = []
    for item in query.items:
        if isinstance(item.expr, Star) and item.expr.table is None:
            for from_item in query.from_items:
                new_items.append(SelectItem(Star(from_item.binding_name)))
        else:
            new_items.append(item)
    query.items = new_items


def qualify_unqualified_columns(
    query: Select, catalog: TableColumns, outer: tuple["FromItem", ...] = ()
) -> None:
    """Qualify unqualified column references with their source FROM item.

    SQL scoping is respected: a name inside an EXISTS/IN body resolves
    against that body's own FROM items first, then correlates outward;
    derived tables see only their own scope. Names that no FROM item
    provides (select-list aliases referenced in GROUP BY/HAVING) are left
    untouched.

    Inlining a parent query as a derived table can make previously-unique
    names ambiguous (the paper's Figure 26 has this latent bug:
    ``WHERE rhotel_id = hotelid`` once ``TEMP`` also exposes ``hotelid``);
    running this before appending the new FROM item pins every name to
    its original source.
    """
    from repro.sql.ast import BinOp, ExistsExpr, FuncCall, InExpr, UnaryOp

    scope = tuple(query.from_items)

    def find(column: str) -> Optional[str]:
        for from_item in scope:
            if column in from_item_columns(from_item, catalog):
                return from_item.binding_name
        for from_item in outer:
            if column in from_item_columns(from_item, catalog):
                return from_item.binding_name
        return None

    def rewrite(expr):
        if isinstance(expr, ColumnRef) and expr.table is None:
            table = find(expr.column)
            if table is not None:
                return ColumnRef(expr.column, table=table)
            return expr
        if isinstance(expr, BinOp):
            return BinOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, FuncCall):
            return FuncCall(expr.name, tuple(rewrite(a) for a in expr.args), expr.star)
        if isinstance(expr, ExistsExpr):
            qualify_unqualified_columns(expr.select, catalog, scope + outer)
            return expr
        from repro.sql.ast import ScalarSubquery

        if isinstance(expr, ScalarSubquery):
            qualify_unqualified_columns(expr.select, catalog, scope + outer)
            return expr
        if isinstance(expr, InExpr):
            if expr.select is not None:
                qualify_unqualified_columns(expr.select, catalog, scope + outer)
            return InExpr(
                rewrite(expr.needle), tuple(rewrite(v) for v in expr.values), expr.select
            )
        return expr

    for item in query.items:
        item.expr = rewrite(item.expr)
    if query.where is not None:
        query.where = rewrite(query.where)
    query.group_by = [rewrite(e) for e in query.group_by]
    if query.having is not None:
        query.having = rewrite(query.having)
    for order in query.order_by:
        order.expr = rewrite(order.expr)
    for from_item in query.from_items:
        if isinstance(from_item, DerivedTable):
            qualify_unqualified_columns(from_item.select, catalog)


def propagate_order(query: Select, parent: Select, exposure: dict[str, str]) -> None:
    """Prepend the parent's ORDER BY keys to ``query``'s, via exposure.

    Document order in a publishing view is parent-major: the parent's
    tuples order the blocks, the child's keys order within a block. When
    a parent query is folded into a child during unbinding, its order
    keys (those that are plain output columns carried into ``query``'s
    result) must therefore come *first*. Keys that are not carried output
    columns are silently dropped — ordering is best-effort, matching the
    paper's "document order is future work" stance; see
    docs/ALGORITHM.md.
    """
    from repro.sql.ast import OrderItem

    inherited: list[OrderItem] = []
    for item in parent.order_by:
        if not isinstance(item.expr, ColumnRef):
            continue
        exposed = exposure.get(item.expr.column)
        if exposed is not None:
            # Reference the output alias; sqlite resolves ORDER BY against
            # the select list first.
            inherited.append(OrderItem(ColumnRef(exposed), item.ascending))
    query.order_by = inherited + query.order_by


def inline_parameter(query: Select, var: str, parent: Select, alias: Optional[str] = None) -> str:
    """Inline ``parent`` as a derived table replacing parameter ``$var``.

    Scope-correct: only references in ``query``'s own scope (its clauses
    and EXISTS/IN bodies) are rewritten to ``alias.c``, because a derived
    table cannot correlate to a sibling FROM item. References hiding
    inside nested derived tables are the caller's problem — use
    :func:`inline_parameter_deep` for the general case.

    Returns the alias used.
    """
    from repro.sql.params import map_exprs_scoped

    chosen = alias or fresh_alias(query)
    qualify_bare_stars(query)
    query.from_items.append(DerivedTable(parent.clone(), chosen))

    def fn(expr: Expr) -> Optional[Expr]:
        if isinstance(expr, ParamRef) and expr.var == var:
            return ColumnRef(expr.column, table=chosen)
        return None

    map_exprs_scoped(query, fn)
    return chosen


def scalar_aggregate_restructure(
    query: Select, catalog: TableColumns
) -> None:
    """Rewrite an ungrouped aggregate query into scalar-subquery form.

    ``SELECT SUM(x) AS s FROM t WHERE c`` becomes
    ``SELECT (SELECT SUM(x) FROM t WHERE c) AS s`` with an *empty* FROM
    list — the caller then installs the parent derived table as the sole
    FROM item. This preserves the one-row-per-parent semantics that an
    inner join + GROUP BY would lose on empty groups (a hotel with no
    conference rooms still publishes its ``<confstat>``; see
    tests/core/test_empty_groups.py).

    Any HAVING condition moves to the outer WHERE with its aggregate
    subexpressions replaced by their own correlated scalars.
    """
    from repro.sql.ast import FuncCall, ScalarSubquery, clone_expr

    if query.group_by:
        raise SQLTransformError("scalar restructuring requires no GROUP BY")
    inner_from = query.from_items
    inner_where = query.where

    def make_scalar(expr: Expr) -> ScalarSubquery:
        inner = Select(
            items=[SelectItem(clone_expr(expr))],
            from_items=[fi.clone() for fi in inner_from],
            where=clone_expr(inner_where) if inner_where is not None else None,
        )
        return ScalarSubquery(inner)

    new_items: list[SelectItem] = []
    for item in query.items:
        alias = item.alias or item.output_name()
        if alias is None:
            raise SQLTransformError(
                "scalar restructuring needs a derivable column name for "
                f"{item.expr!r}"
            )
        new_items.append(SelectItem(make_scalar(item.expr), alias))
    query.items = new_items

    if query.having is not None:
        def replace_aggregates(expr: Expr) -> Expr:
            if isinstance(expr, FuncCall) and expr.is_aggregate:
                return make_scalar(expr)
            from repro.sql.ast import BinOp, UnaryOp

            if isinstance(expr, BinOp):
                return BinOp(
                    expr.op, replace_aggregates(expr.left), replace_aggregates(expr.right)
                )
            if isinstance(expr, UnaryOp):
                return UnaryOp(expr.op, replace_aggregates(expr.operand))
            if isinstance(expr, FuncCall):
                return FuncCall(
                    expr.name,
                    tuple(replace_aggregates(a) for a in expr.args),
                    expr.star,
                )
            return expr

        query.where = replace_aggregates(query.having)
        query.having = None
    else:
        query.where = None
    query.from_items = []


def _attach_parent_scalar(
    query: Select, var: Optional[str], parent: Select, catalog: TableColumns
) -> dict[str, str]:
    """Scalar-form attachment of a parent to an ungrouped aggregate query."""
    scalar_aggregate_restructure(query, catalog)
    alias = fresh_alias(query)
    query.from_items = [DerivedTable(parent.clone(), alias)]
    if var is not None:
        from repro.sql.params import map_exprs

        def fn(expr: Expr) -> Optional[Expr]:
            if isinstance(expr, ParamRef) and expr.var == var:
                return ColumnRef(expr.column, table=alias)
            return None

        map_exprs(query, fn)
    exposure = carry_parent_columns(query, alias, catalog)
    propagate_order(query, parent, exposure)
    return exposure


def attach_parent_query(
    query: Select,
    var: Optional[str],
    parent: Select,
    catalog: TableColumns,
    scalar_aggregates: bool = True,
) -> dict[str, str]:
    """Attach a parent query to a child tag query, however is correct.

    This is the single entry point the composition algorithm uses for one
    unbinding step: it picks between deep inlining (``$var`` referenced),
    plain cross join (no reference — multiplicities/existence still
    require the parent), and the scalar-subquery form for ungrouped
    aggregates (empty groups must survive). Returns the exposure map of
    the parent's columns in ``query``'s output.
    """
    if var is not None and var in referenced_vars(query):
        return inline_parameter_deep(
            query, var, parent, catalog, scalar_aggregates=scalar_aggregates
        )
    if (
        scalar_aggregates
        and has_top_level_aggregate(query)
        and not query.group_by
    ):
        return _attach_parent_scalar(query, None, parent, catalog)
    qualify_unqualified_columns(query, catalog)
    qualify_bare_stars(query)
    alias = fresh_alias(query)
    query.from_items.append(DerivedTable(parent.clone(), alias))
    exposure = carry_parent_columns(query, alias, catalog)
    propagate_order(query, parent, exposure)
    return exposure


def inline_parameter_deep(
    query: Select,
    var: str,
    parent: Select,
    catalog: TableColumns,
    scalar_aggregates: bool = True,
) -> dict[str, str]:
    """Inline ``parent`` wherever ``$var`` is referenced, at any depth.

    This is the full unbinding step (Figures 10/12 for chains, Figure 16
    for forced unbinding): references in nested derived tables are handled
    by recursing *into* those subqueries — SQL forbids a derived table
    correlating with a sibling — and the parent's columns are carried up
    through every intermediate level so they remain addressable from
    ``query``'s output (with GROUP BY extended at aggregated levels).

    When several scopes reference ``$var`` independently, each gets its
    own copy of ``parent`` and the copies are equated column-by-column
    (with the null-safe ``IS``) so no cross-product inflation occurs.

    Returns:
        Mapping from ``parent``'s output columns to the names under which
        they are exposed in ``query``'s result.

    Raises:
        SQLTransformError: if ``query`` does not reference ``$var`` anywhere.
    """
    from repro.sql.ast import BinOp
    from repro.sql.params import referenced_vars_scoped

    if var not in referenced_vars(query):
        raise SQLTransformError(f"query does not reference ${var}")

    qualify_unqualified_columns(query, catalog)
    own_refs = var in referenced_vars_scoped(query)
    referencing_derived = [
        item
        for item in query.from_items
        if isinstance(item, DerivedTable) and var in referenced_vars(item.select)
    ]

    if (
        scalar_aggregates
        and not referencing_derived
        and has_top_level_aggregate(query)
        and not query.group_by
    ):
        # An ungrouped aggregate returns exactly one row per parent
        # binding — even over an empty group. Joining + grouping would
        # drop empty groups, so restructure into correlated scalar
        # subqueries over the parent instead.
        return _attach_parent_scalar(query, var, parent, catalog)

    # First resolve references inside derived tables, bottom-up; each
    # returns where the parent's columns surface in that subquery's output.
    derived_exposures: list[tuple[DerivedTable, dict[str, str]]] = []
    for derived in referencing_derived:
        exposure = inline_parameter_deep(
            derived.select, var, parent, catalog,
            scalar_aggregates=scalar_aggregates,
        )
        derived_exposures.append((derived, exposure))

    parent_columns = output_columns(parent, catalog)

    if own_refs or not derived_exposures:
        alias = inline_parameter(query, var, parent)
        top_exposure = carry_parent_columns(query, alias, catalog)
        propagate_order(query, parent, top_exposure)
        for derived, exposure in derived_exposures:
            for column in parent_columns:
                query.add_where(
                    BinOp(
                        "IS",
                        ColumnRef(exposure[column], table=derived.alias),
                        ColumnRef(column, table=alias),
                    )
                )
        return top_exposure

    # Only derived tables reference the variable: surface the first copy's
    # columns at this level and equate any further copies with it.
    primary, primary_exposure = derived_exposures[0]
    qualify_bare_stars(query)
    existing = set(output_columns(query, catalog))
    # A query with a GROUP BY is grouped even if no aggregate survives in
    # its select list (projections may have been pruned); carried columns
    # must extend the grouping either way.
    aggregated = has_top_level_aggregate(query) or bool(query.group_by)
    lifted: dict[str, str] = {}
    for column in parent_columns:
        inner_name = primary_exposure[column]
        exposed = inner_name
        if exposed in existing:
            exposed = f"{primary.alias}_{inner_name}"
            counter = 2
            while exposed in existing:
                exposed = f"{primary.alias}_{inner_name}_{counter}"
                counter += 1
        ref = ColumnRef(inner_name, table=primary.alias)
        query.items.append(
            SelectItem(ref, None if exposed == inner_name else exposed)
        )
        existing.add(exposed)
        lifted[column] = exposed
        if aggregated:
            query.group_by.append(ref)
    for derived, exposure in derived_exposures[1:]:
        for column in parent_columns:
            query.add_where(
                BinOp(
                    "IS",
                    ColumnRef(exposure[column], table=derived.alias),
                    ColumnRef(primary_exposure[column], table=primary.alias),
                )
            )
    propagate_order(query, parent, lifted)
    return lifted


def carry_parent_columns(query: Select, alias: str, catalog: TableColumns) -> dict[str, str]:
    """Expose a derived table's columns through ``query``'s select list.

    Implements lines 5-6 of Figure 13 ("add the SELECT columns of
    Q_bv(p) to q") plus the GROUP BY rule that preserves aggregation
    semantics (the paper's ``GROUP BY TEMP.hotelid, ..., TEMP.gym``).

    Columns whose names collide with existing output columns are exposed
    under a disambiguated alias ``<alias>_<column>``.

    Returns:
        A mapping from the parent's column name to the name under which it
        is exposed in ``query``'s result.
    """
    derived = None
    for from_item in query.from_items:
        if from_item.binding_name == alias:
            derived = from_item
            break
    if derived is None:
        raise SQLTransformError(f"no FROM item with alias {alias!r}")

    existing = set(output_columns(query, catalog))
    parent_columns = from_item_columns(derived, catalog)
    exposure: dict[str, str] = {}
    # Grouped even without a surviving aggregate item (see inline path).
    aggregated = has_top_level_aggregate(query) or bool(query.group_by)
    for column in parent_columns:
        exposed = column
        if column in existing:
            exposed = f"{alias}_{column}"
            counter = 2
            while exposed in existing:
                exposed = f"{alias}_{column}_{counter}"
                counter += 1
        ref = ColumnRef(column, table=alias)
        query.items.append(SelectItem(ref, None if exposed == column else exposed))
        existing.add(exposed)
        exposure[column] = exposed
        if aggregated:
            query.group_by.append(ref)
    return exposure


def push_key_predicate(
    query: Select, table: str, key_column: str, keys: Iterable
) -> str:
    """AND a ``<table>.<key_column> IN (...)`` restriction into ``query``.

    This is the row-level delta pushdown rewrite: given the primary-key
    values of rows that changed in base table ``table``, restrict a
    node's (decorrelated) query so it re-fetches only those rows' blocks
    instead of the whole node. Sound only when the table occurs exactly
    once, as a top-level FROM item — a self-join or a subquery occurrence
    would leave unrestricted copies reading the table — so anything else
    raises and the caller falls back to node-level re-evaluation.

    Key values are sorted into the IN list so the rendered SQL is
    deterministic (plan caches key on text). Returns the binding name
    the predicate was anchored to.

    Raises:
        SQLTransformError: no sole top-level occurrence, or ``keys`` is
            empty (the caller should skip the refetch entirely).
    """
    from repro.sql.analysis import sole_table_binding
    from repro.sql.ast import InExpr, LiteralValue

    binding = sole_table_binding(query, table)
    if binding is None:
        raise SQLTransformError(
            f"table {table!r} does not occur exactly once at the top "
            "level; key pushdown is unsound"
        )
    values = tuple(
        LiteralValue(key)
        for key in sorted(keys, key=lambda k: (str(type(k)), str(k)))
    )
    if not values:
        raise SQLTransformError("key pushdown needs at least one key")
    query.add_where(InExpr(ColumnRef(key_column, table=binding), values))
    return binding


def restrict_output_in(query: Select, output_name: str, values: Iterable) -> None:
    """AND an ``IN (...)`` restriction on a named output column of ``query``.

    The block-level delta pushdown rewrite: given the parent-block
    values of blocks that contain changed rows, restrict a node's
    decorrelated query so it re-computes only those blocks. The named
    select item must be a bare column reference (the context-key columns
    the decorrelator carries through always are); the predicate lands in
    WHERE, so on a grouped query it filters *whole groups* — every
    surviving group keeps its full row set and its aggregate values.

    Values are sorted into the IN list so the rendered SQL is
    deterministic, mirroring :func:`push_key_predicate`.

    Raises:
        SQLTransformError: no select item named ``output_name``, the
            item is a computed expression rather than a bare column
            reference, or ``values`` is empty.
    """
    from repro.sql.ast import InExpr, LiteralValue

    target = None
    for item in query.items:
        if item.output_name() == output_name:
            target = item
            break
    if target is None:
        raise SQLTransformError(
            f"no output column {output_name!r} to restrict on"
        )
    if not isinstance(target.expr, ColumnRef):
        raise SQLTransformError(
            f"output column {output_name!r} is a computed expression; "
            "block restriction needs a bare column reference"
        )
    literals = tuple(
        LiteralValue(value)
        for value in sorted(values, key=lambda v: (str(type(v)), str(v)))
    )
    if not literals:
        raise SQLTransformError("block restriction needs at least one value")
    query.add_where(
        InExpr(ColumnRef(target.expr.column, table=target.expr.table), literals)
    )


def expand_stars(query: Select, catalog: TableColumns) -> None:
    """Replace ``*`` / ``t.*`` select items with explicit column references.

    Composed queries carry ancestor columns; expanding stars first makes
    collision handling and attribute projection deterministic. Operates on
    the top level only (derived tables keep their own stars).
    """
    new_items: list[SelectItem] = []
    for item in query.items:
        if not isinstance(item.expr, Star):
            new_items.append(item)
            continue
        star = item.expr
        if star.table is not None:
            sources = [fi for fi in query.from_items if fi.binding_name == star.table]
            if not sources:
                raise SQLTransformError(f"{star.table}.* matches no FROM item")
        else:
            sources = list(query.from_items)
        for from_item in sources:
            for column in from_item_columns(from_item, catalog):
                new_items.append(SelectItem(ColumnRef(column, table=from_item.binding_name)))
    query.items = new_items


def project_columns(query: Select, names: Iterable[str], catalog: TableColumns) -> None:
    """Restrict the select list to the named output columns, in given order.

    Stars are expanded first. Unknown names raise.
    """
    expand_stars(query, catalog)
    by_name: dict[str, SelectItem] = {}
    for item in query.items:
        name = item.output_name()
        if name is not None and name not in by_name:
            by_name[name] = item
    new_items: list[SelectItem] = []
    for name in names:
        if name not in by_name:
            raise SQLTransformError(f"query has no output column {name!r}")
        new_items.append(by_name[name])
    query.items = new_items

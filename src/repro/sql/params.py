"""Parameter ($var.column) utilities for tag queries.

Tag queries reference ancestor binding variables as ``$var.column``
(Definition 1). The composition algorithm renames variables (Figure 9,
lines 18/21-22) and the view evaluator substitutes concrete values from
parent tuples at execution time.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sql.ast import (
    BinOp,
    DerivedTable,
    ExistsExpr,
    Expr,
    FuncCall,
    InExpr,
    OrderItem,
    ParamRef,
    ScalarSubquery,
    Select,
    SelectItem,
    UnaryOp,
)


def walk_exprs(select: Select):
    """Yield every expression reachable from ``select``, descending into
    subqueries (derived tables, EXISTS, IN)."""

    def from_expr(expr: Expr):
        yield expr
        if isinstance(expr, BinOp):
            yield from from_expr(expr.left)
            yield from from_expr(expr.right)
        elif isinstance(expr, UnaryOp):
            yield from from_expr(expr.operand)
        elif isinstance(expr, FuncCall):
            for arg in expr.args:
                yield from from_expr(arg)
        elif isinstance(expr, ExistsExpr):
            yield from walk_exprs(expr.select)
        elif isinstance(expr, ScalarSubquery):
            yield from walk_exprs(expr.select)
        elif isinstance(expr, InExpr):
            yield from from_expr(expr.needle)
            for value in expr.values:
                yield from from_expr(value)
            if expr.select is not None:
                yield from walk_exprs(expr.select)

    for item in select.items:
        yield from from_expr(item.expr)
    for from_item in select.from_items:
        if isinstance(from_item, DerivedTable):
            yield from walk_exprs(from_item.select)
    if select.where is not None:
        yield from from_expr(select.where)
    for expr in select.group_by:
        yield from from_expr(expr)
    if select.having is not None:
        yield from from_expr(select.having)
    for order in select.order_by:
        yield from from_expr(order.expr)


def collect_params(select: Select) -> list[ParamRef]:
    """Return the distinct parameters of a query, in first-use order."""
    seen: set[tuple[str, str]] = set()
    params: list[ParamRef] = []
    for expr in walk_exprs(select):
        if isinstance(expr, ParamRef):
            key = (expr.var, expr.column)
            if key not in seen:
                seen.add(key)
                params.append(expr)
    return params


def referenced_vars(select: Select) -> list[str]:
    """Return the distinct binding-variable names referenced by a query."""
    seen: set[str] = set()
    names: list[str] = []
    for param in collect_params(select):
        if param.var not in seen:
            seen.add(param.var)
            names.append(param.var)
    return names


def map_exprs(select: Select, fn: Callable[[Expr], Optional[Expr]]) -> None:
    """Rewrite expressions in place, bottom-up, across the whole query.

    ``fn`` receives each expression node and returns a replacement or
    ``None`` to keep the node. Subqueries are rewritten too.
    """

    def rewrite(expr: Expr) -> Expr:
        if isinstance(expr, BinOp):
            expr = BinOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        elif isinstance(expr, UnaryOp):
            expr = UnaryOp(expr.op, rewrite(expr.operand))
        elif isinstance(expr, FuncCall):
            expr = FuncCall(expr.name, tuple(rewrite(a) for a in expr.args), expr.star)
        elif isinstance(expr, ExistsExpr):
            map_exprs(expr.select, fn)
        elif isinstance(expr, ScalarSubquery):
            map_exprs(expr.select, fn)
        elif isinstance(expr, InExpr):
            if expr.select is not None:
                map_exprs(expr.select, fn)
            expr = InExpr(
                rewrite(expr.needle),
                tuple(rewrite(v) for v in expr.values),
                expr.select,
            )
        replacement = fn(expr)
        return expr if replacement is None else replacement

    for item in select.items:
        item.expr = rewrite(item.expr)
    for from_item in select.from_items:
        if isinstance(from_item, DerivedTable):
            map_exprs(from_item.select, fn)
    if select.where is not None:
        select.where = rewrite(select.where)
    select.group_by = [rewrite(e) for e in select.group_by]
    if select.having is not None:
        select.having = rewrite(select.having)
    for order in select.order_by:
        order.expr = rewrite(order.expr)


def walk_exprs_scoped(select: Select):
    """Like :func:`walk_exprs` but respecting SQL scoping: descends into
    EXISTS/IN subqueries (which may correlate with this query's FROM
    aliases) but **not** into derived tables (which cannot)."""

    def from_expr(expr: Expr):
        yield expr
        if isinstance(expr, BinOp):
            yield from from_expr(expr.left)
            yield from from_expr(expr.right)
        elif isinstance(expr, UnaryOp):
            yield from from_expr(expr.operand)
        elif isinstance(expr, FuncCall):
            for arg in expr.args:
                yield from from_expr(arg)
        elif isinstance(expr, ExistsExpr):
            yield from walk_exprs_scoped(expr.select)
        elif isinstance(expr, ScalarSubquery):
            yield from walk_exprs_scoped(expr.select)
        elif isinstance(expr, InExpr):
            yield from from_expr(expr.needle)
            for value in expr.values:
                yield from from_expr(value)
            if expr.select is not None:
                yield from walk_exprs_scoped(expr.select)

    for item in select.items:
        yield from from_expr(item.expr)
    if select.where is not None:
        yield from from_expr(select.where)
    for expr in select.group_by:
        yield from from_expr(expr)
    if select.having is not None:
        yield from from_expr(select.having)
    for order in select.order_by:
        yield from from_expr(order.expr)


def referenced_vars_scoped(select: Select) -> list[str]:
    """Binding variables referenced in this query's own scope (EXISTS/IN
    bodies included, derived tables excluded)."""
    seen: set[str] = set()
    names: list[str] = []
    for expr in walk_exprs_scoped(select):
        if isinstance(expr, ParamRef) and expr.var not in seen:
            seen.add(expr.var)
            names.append(expr.var)
    return names


def map_exprs_scoped(select: Select, fn: Callable[[Expr], Optional[Expr]]) -> None:
    """Like :func:`map_exprs` but scoped: rewrites this query's own
    expressions and EXISTS/IN bodies, leaving derived tables untouched."""

    def rewrite(expr: Expr) -> Expr:
        if isinstance(expr, BinOp):
            expr = BinOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        elif isinstance(expr, UnaryOp):
            expr = UnaryOp(expr.op, rewrite(expr.operand))
        elif isinstance(expr, FuncCall):
            expr = FuncCall(expr.name, tuple(rewrite(a) for a in expr.args), expr.star)
        elif isinstance(expr, ExistsExpr):
            map_exprs_scoped(expr.select, fn)
        elif isinstance(expr, ScalarSubquery):
            map_exprs_scoped(expr.select, fn)
        elif isinstance(expr, InExpr):
            if expr.select is not None:
                map_exprs_scoped(expr.select, fn)
            expr = InExpr(
                rewrite(expr.needle),
                tuple(rewrite(v) for v in expr.values),
                expr.select,
            )
        replacement = fn(expr)
        return expr if replacement is None else replacement

    for item in select.items:
        item.expr = rewrite(item.expr)
    if select.where is not None:
        select.where = rewrite(select.where)
    select.group_by = [rewrite(e) for e in select.group_by]
    if select.having is not None:
        select.having = rewrite(select.having)
    for order in select.order_by:
        order.expr = rewrite(order.expr)


def rename_param_vars(select: Select, mapping: dict[str, str]) -> None:
    """Rename binding variables in place: ``$old.c`` becomes ``$new.c``."""

    def fn(expr: Expr) -> Optional[Expr]:
        if isinstance(expr, ParamRef) and expr.var in mapping:
            return ParamRef(mapping[expr.var], expr.column)
        return None

    map_exprs(select, fn)


def to_placeholders(
    select: Select, placeholder: Optional[Callable[[str], str]] = None
) -> tuple[str, list[ParamRef]]:
    """Render a query with named placeholders and list the parameters.

    By default the returned SQL uses sqlite's ``:var__column``
    placeholders; pass an engine driver's
    :meth:`~repro.relational.driver.EngineDriver.placeholder` to render
    another backend's style. Callers bind a dictionary built from
    parent-tuple values (see :func:`placeholder_name` — the binding
    *keys* are backend-independent).
    """
    from repro.sql.printer import print_select

    return (
        print_select(select, placeholders=placeholder or True),
        collect_params(select),
    )


def placeholder_name(param: ParamRef) -> str:
    """The named-placeholder binding key for a parameter.

    Backend-independent: drivers render this key in their own style
    (``:var__column`` for sqlite, ``$var__column`` for DuckDB) but the
    bindings dictionary always uses the bare key.
    """
    return f"{param.var}__{param.column}"

"""Result-column analysis for the SQL subset.

The composition algorithm needs to know, statically, which columns a tag
query produces: to expand ``TEMP.*`` into explicit GROUP BY lists
(Figure 7(a)), to compute the attributes a ``value-of "."`` output node
emits, and to detect column-name collisions when ancestor columns are
carried through unbinding.

Analysis is catalog-driven: base tables resolve through a mapping of
table name to ordered column list (see
:class:`repro.relational.schema.Catalog`, whose instances satisfy the
:class:`TableColumns` protocol used here).
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import SchemaError
from repro.sql.ast import (
    ColumnRef,
    DerivedTable,
    FromItem,
    FuncCall,
    ParamRef,
    Select,
    Star,
    TableRef,
)


class TableColumns(Protocol):
    """Anything that can list the columns of a base table."""

    def columns_of(self, table: str) -> list[str]:
        """Ordered column names of ``table``; raises SchemaError if unknown."""
        ...  # pragma: no cover


class DictCatalog:
    """A minimal TableColumns over a plain dict (used in tests)."""

    def __init__(self, tables: dict[str, list[str]]):
        self._tables = dict(tables)

    def columns_of(self, table: str) -> list[str]:
        """Ordered column names of ``table``."""
        if table not in self._tables:
            raise SchemaError(f"unknown table {table!r}")
        return list(self._tables[table])


def from_item_columns(item: FromItem, catalog: TableColumns) -> list[str]:
    """Ordered output columns contributed by one FROM item."""
    if isinstance(item, TableRef):
        return catalog.columns_of(item.name)
    if isinstance(item, DerivedTable):
        return output_columns(item.select, catalog)
    raise TypeError(f"unknown FROM item {type(item).__name__}")


def output_columns(select: Select, catalog: TableColumns) -> list[str]:
    """Ordered result-column names of a query, with ``*`` expanded.

    Raises:
        SchemaError: if a ``table.*`` references an unknown FROM item or an
            expression has no derivable name (unaliased computed column).
    """
    names: list[str] = []
    for item in select.items:
        if isinstance(item.expr, Star):
            names.extend(_star_columns(item.expr, select, catalog))
            continue
        name = item.output_name()
        if name is None:
            raise SchemaError(
                "select item has no derivable column name; add an alias: "
                f"{item.expr!r}"
            )
        names.append(name)
    return names


def _star_columns(star: Star, select: Select, catalog: TableColumns) -> list[str]:
    if star.table is None:
        names: list[str] = []
        for from_item in select.from_items:
            names.extend(from_item_columns(from_item, catalog))
        return names
    for from_item in select.from_items:
        if from_item.binding_name == star.table:
            return from_item_columns(from_item, catalog)
    raise SchemaError(f"{star.table}.* does not match any FROM item")


def expand_star_refs(star: Star, select: Select, catalog: TableColumns) -> list[ColumnRef]:
    """Expand a star into explicit qualified column references.

    Used to materialize GROUP BY lists over a derived table's columns.
    """
    if star.table is not None:
        return [ColumnRef(c, table=star.table) for c in _star_columns(star, select, catalog)]
    refs: list[ColumnRef] = []
    for from_item in select.from_items:
        refs.extend(
            ColumnRef(c, table=from_item.binding_name)
            for c in from_item_columns(from_item, catalog)
        )
    return refs


def has_top_level_aggregate(select: Select) -> bool:
    """Whether the select list computes an aggregate at the top level.

    Subqueries do not count; GROUP BY semantics only depend on the top
    level of this query.
    """

    def expr_has_aggregate(expr) -> bool:
        if isinstance(expr, FuncCall):
            if expr.is_aggregate:
                return True
            return any(expr_has_aggregate(a) for a in expr.args)
        left = getattr(expr, "left", None)
        right = getattr(expr, "right", None)
        operand = getattr(expr, "operand", None)
        for child in (left, right, operand):
            if child is not None and expr_has_aggregate(child):
                return True
        return False

    return any(expr_has_aggregate(item.expr) for item in select.items)


def canonicalize_aggregate_aliases(select: Select) -> None:
    """Give unaliased aggregate select items their canonical alias.

    ``SUM(capacity)`` becomes ``SUM(capacity) AS SUM_capacity`` so that the
    result column has a deterministic, XML-attribute-safe name (the paper
    references ``$s_new.SUM_capacity`` in Figure 20). Operates in place; a
    numeric suffix disambiguates repeated aggregates of the same column.
    """
    used: set[str] = set()
    for item in select.items:
        if item.alias:
            used.add(item.alias)
        elif isinstance(item.expr, ColumnRef):
            used.add(item.expr.column)
    for item in select.items:
        if item.alias is None and isinstance(item.expr, FuncCall):
            base = item.expr.default_alias()
            alias = base
            suffix = 2
            while alias in used:
                alias = f"{base}_{suffix}"
                suffix += 1
            item.alias = alias
            used.add(alias)


def table_occurrences(select: Select, table: str) -> int:
    """How many times base table ``table`` occurs as a FROM item, at any
    depth (derived tables and EXISTS/IN/scalar subquery bodies included).

    Row-level delta pushdown needs the count: a key predicate is only
    sound against a table that occurs exactly once — a self-join or a
    subquery occurrence would leave unrestricted copies behind.
    """
    from repro.sql.ast import ExistsExpr, InExpr, ScalarSubquery
    from repro.sql.params import walk_exprs

    count = 0

    def visit(query: Select) -> None:
        nonlocal count
        for from_item in query.from_items:
            if isinstance(from_item, TableRef):
                if from_item.name == table:
                    count += 1
            else:
                visit(from_item.select)
        for expr in walk_exprs(query):
            if isinstance(expr, ExistsExpr):
                visit(expr.select)
            elif isinstance(expr, ScalarSubquery):
                visit(expr.select)
            elif isinstance(expr, InExpr) and expr.select is not None:
                visit(expr.select)

    visit(select)
    return count


def sole_table_binding(select: Select, table: str) -> "str | None":
    """The binding name of ``table`` when it occurs exactly once, as a
    top-level FROM item of ``select``; ``None`` otherwise."""
    if table_occurrences(select, table) != 1:
        return None
    for from_item in select.from_items:
        if isinstance(from_item, TableRef) and from_item.name == table:
            return from_item.binding_name
    return None


def _table_column_refs(
    select: Select,
    table: str,
    catalog: TableColumns,
    *,
    skip_projection: bool,
    skip_grouping: bool = False,
) -> set[str]:
    """Columns of base table ``table`` referenced by ``select``.

    Works on a qualified clone so unqualified names resolve to their
    source FROM item first. With ``skip_projection`` the top level's
    plain select-item expressions do not count (their values are
    recomputed from the fetched row anyway) — only references that can
    change *which* rows appear, their order, or other rows' values:
    WHERE / GROUP BY / HAVING / ORDER BY and every subquery body.
    """
    from repro.sql.ast import BinOp, ExistsExpr, InExpr, ScalarSubquery, UnaryOp
    from repro.sql.transform import qualify_unqualified_columns

    clone = select.clone()
    qualify_unqualified_columns(clone, catalog)
    columns: set[str] = set()

    def bindings_of(query: Select) -> set[str]:
        return {
            fi.binding_name
            for fi in query.from_items
            if isinstance(fi, TableRef) and fi.name == table
        }

    def visit(query: Select, outer_bindings: set[str], top: bool) -> None:
        bindings = outer_bindings | bindings_of(query)

        def collect(expr) -> None:
            if expr is None:
                return
            if isinstance(expr, ColumnRef):
                if expr.table in bindings:
                    columns.add(expr.column)
                return
            if isinstance(expr, Star):
                if expr.table is None or expr.table in bindings:
                    for fi in query.from_items:
                        if (
                            isinstance(fi, TableRef)
                            and fi.name == table
                            and (expr.table in (None, fi.binding_name))
                        ):
                            columns.update(catalog.columns_of(table))
                return
            if isinstance(expr, BinOp):
                collect(expr.left)
                collect(expr.right)
                return
            if isinstance(expr, UnaryOp):
                collect(expr.operand)
                return
            if isinstance(expr, FuncCall):
                for arg in expr.args:
                    collect(arg)
                return
            if isinstance(expr, ExistsExpr):
                visit(expr.select, bindings, top=False)
                return
            if isinstance(expr, ScalarSubquery):
                visit(expr.select, bindings, top=False)
                return
            if isinstance(expr, InExpr):
                collect(expr.needle)
                for value in expr.values:
                    collect(value)
                if expr.select is not None:
                    visit(expr.select, bindings, top=False)
                return

        for item in query.items:
            if top and skip_projection:
                # Projection values are recomputed per fetched row, but a
                # subquery inside a projection reads other rows — descend
                # into subquery bodies only.
                def subqueries_only(expr) -> None:
                    if isinstance(expr, (ExistsExpr, ScalarSubquery)):
                        visit(expr.select, bindings, top=False)
                    elif isinstance(expr, InExpr):
                        if expr.select is not None:
                            visit(expr.select, bindings, top=False)
                        for value in expr.values:
                            subqueries_only(value)
                        subqueries_only(expr.needle)
                    elif isinstance(expr, BinOp):
                        subqueries_only(expr.left)
                        subqueries_only(expr.right)
                    elif isinstance(expr, UnaryOp):
                        subqueries_only(expr.operand)
                    elif isinstance(expr, FuncCall):
                        for arg in expr.args:
                            subqueries_only(arg)

                subqueries_only(item.expr)
            else:
                collect(item.expr)
        collect(query.where)
        if not (top and skip_grouping):
            for expr in query.group_by:
                collect(expr)
            for order in query.order_by:
                collect(order.expr)
        collect(query.having)
        for from_item in query.from_items:
            if isinstance(from_item, DerivedTable):
                visit(from_item.select, bindings, top=False)

    visit(clone, set(), top=True)
    return columns


def referenced_columns_of_table(
    select: Select, table: str, catalog: TableColumns
) -> set[str]:
    """Every column of ``table`` the query's result can depend on.

    Drives column-level dirty refinement: if a write's changed columns
    are disjoint from this set, the node's result is untouched by the
    write. Unqualified references resolve scope-aware; a ``*`` covering
    the table counts as all of its columns.
    """
    return _table_column_refs(select, table, catalog, skip_projection=False)


def load_bearing_columns(
    select: Select, table: str, catalog: TableColumns
) -> set[str]:
    """Columns of ``table`` that affect more than the owning row's values.

    A changed column in this set can move rows in or out of the result,
    reorder them, regroup them, or change *other* rows (via subqueries) —
    so a row-level refetch of just the changed keys would be unsound.
    Top-level projection references are excluded: those values are
    recomputed from the freshly fetched row.
    """
    return _table_column_refs(select, table, catalog, skip_projection=True)


def membership_bearing_columns(
    select: Select, table: str, catalog: TableColumns
) -> set[str]:
    """Columns of ``table`` that steer which rows join which result blocks.

    Like :func:`load_bearing_columns` minus the top-level GROUP BY and
    ORDER BY references. A change confined to columns *outside* this set
    cannot move a row in or out of the result, move it to a different
    join partner, or change rows of other base keys — it can only alter
    the row's own projected values, its top-level group, or its position
    within an ORDER. That is exactly the guarantee block-level delta
    maintenance (:mod:`repro.maintenance.incremental`) needs: a changed
    row stays inside the same parent *block*, so re-evaluating the
    blocks that contain changed rows — regrouping and reordering them
    from scratch — reproduces the full result. Subquery bodies still
    count in full (they can affect arbitrary other rows), as do HAVING
    references (group survival).
    """
    return _table_column_refs(
        select, table, catalog, skip_projection=True, skip_grouping=True
    )


def referenced_tables(select: Select) -> list[str]:
    """Base-table names referenced anywhere in the query, subqueries included."""
    from repro.sql.ast import ExistsExpr, InExpr, ScalarSubquery
    from repro.sql.params import walk_exprs

    names: list[str] = []

    def visit(query: Select) -> None:
        for from_item in query.from_items:
            if isinstance(from_item, TableRef):
                if from_item.name not in names:
                    names.append(from_item.name)
            else:
                visit(from_item.select)
        for expr in walk_exprs(query):
            if isinstance(expr, ExistsExpr):
                visit(expr.select)
            elif isinstance(expr, ScalarSubquery):
                visit(expr.select)
            elif isinstance(expr, InExpr) and expr.select is not None:
                visit(expr.select)

    visit(select)
    return names

"""Result-column analysis for the SQL subset.

The composition algorithm needs to know, statically, which columns a tag
query produces: to expand ``TEMP.*`` into explicit GROUP BY lists
(Figure 7(a)), to compute the attributes a ``value-of "."`` output node
emits, and to detect column-name collisions when ancestor columns are
carried through unbinding.

Analysis is catalog-driven: base tables resolve through a mapping of
table name to ordered column list (see
:class:`repro.relational.schema.Catalog`, whose instances satisfy the
:class:`TableColumns` protocol used here).
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import SchemaError
from repro.sql.ast import (
    ColumnRef,
    DerivedTable,
    FromItem,
    FuncCall,
    ParamRef,
    Select,
    Star,
    TableRef,
)


class TableColumns(Protocol):
    """Anything that can list the columns of a base table."""

    def columns_of(self, table: str) -> list[str]:
        """Ordered column names of ``table``; raises SchemaError if unknown."""
        ...  # pragma: no cover


class DictCatalog:
    """A minimal TableColumns over a plain dict (used in tests)."""

    def __init__(self, tables: dict[str, list[str]]):
        self._tables = dict(tables)

    def columns_of(self, table: str) -> list[str]:
        """Ordered column names of ``table``."""
        if table not in self._tables:
            raise SchemaError(f"unknown table {table!r}")
        return list(self._tables[table])


def from_item_columns(item: FromItem, catalog: TableColumns) -> list[str]:
    """Ordered output columns contributed by one FROM item."""
    if isinstance(item, TableRef):
        return catalog.columns_of(item.name)
    if isinstance(item, DerivedTable):
        return output_columns(item.select, catalog)
    raise TypeError(f"unknown FROM item {type(item).__name__}")


def output_columns(select: Select, catalog: TableColumns) -> list[str]:
    """Ordered result-column names of a query, with ``*`` expanded.

    Raises:
        SchemaError: if a ``table.*`` references an unknown FROM item or an
            expression has no derivable name (unaliased computed column).
    """
    names: list[str] = []
    for item in select.items:
        if isinstance(item.expr, Star):
            names.extend(_star_columns(item.expr, select, catalog))
            continue
        name = item.output_name()
        if name is None:
            raise SchemaError(
                "select item has no derivable column name; add an alias: "
                f"{item.expr!r}"
            )
        names.append(name)
    return names


def _star_columns(star: Star, select: Select, catalog: TableColumns) -> list[str]:
    if star.table is None:
        names: list[str] = []
        for from_item in select.from_items:
            names.extend(from_item_columns(from_item, catalog))
        return names
    for from_item in select.from_items:
        if from_item.binding_name == star.table:
            return from_item_columns(from_item, catalog)
    raise SchemaError(f"{star.table}.* does not match any FROM item")


def expand_star_refs(star: Star, select: Select, catalog: TableColumns) -> list[ColumnRef]:
    """Expand a star into explicit qualified column references.

    Used to materialize GROUP BY lists over a derived table's columns.
    """
    if star.table is not None:
        return [ColumnRef(c, table=star.table) for c in _star_columns(star, select, catalog)]
    refs: list[ColumnRef] = []
    for from_item in select.from_items:
        refs.extend(
            ColumnRef(c, table=from_item.binding_name)
            for c in from_item_columns(from_item, catalog)
        )
    return refs


def has_top_level_aggregate(select: Select) -> bool:
    """Whether the select list computes an aggregate at the top level.

    Subqueries do not count; GROUP BY semantics only depend on the top
    level of this query.
    """

    def expr_has_aggregate(expr) -> bool:
        if isinstance(expr, FuncCall):
            if expr.is_aggregate:
                return True
            return any(expr_has_aggregate(a) for a in expr.args)
        left = getattr(expr, "left", None)
        right = getattr(expr, "right", None)
        operand = getattr(expr, "operand", None)
        for child in (left, right, operand):
            if child is not None and expr_has_aggregate(child):
                return True
        return False

    return any(expr_has_aggregate(item.expr) for item in select.items)


def canonicalize_aggregate_aliases(select: Select) -> None:
    """Give unaliased aggregate select items their canonical alias.

    ``SUM(capacity)`` becomes ``SUM(capacity) AS SUM_capacity`` so that the
    result column has a deterministic, XML-attribute-safe name (the paper
    references ``$s_new.SUM_capacity`` in Figure 20). Operates in place; a
    numeric suffix disambiguates repeated aggregates of the same column.
    """
    used: set[str] = set()
    for item in select.items:
        if item.alias:
            used.add(item.alias)
        elif isinstance(item.expr, ColumnRef):
            used.add(item.expr.column)
    for item in select.items:
        if item.alias is None and isinstance(item.expr, FuncCall):
            base = item.expr.default_alias()
            alias = base
            suffix = 2
            while alias in used:
                alias = f"{base}_{suffix}"
                suffix += 1
            item.alias = alias
            used.add(alias)


def referenced_tables(select: Select) -> list[str]:
    """Base-table names referenced anywhere in the query, subqueries included."""
    from repro.sql.ast import ExistsExpr, InExpr, ScalarSubquery
    from repro.sql.params import walk_exprs

    names: list[str] = []

    def visit(query: Select) -> None:
        for from_item in query.from_items:
            if isinstance(from_item, TableRef):
                if from_item.name not in names:
                    names.append(from_item.name)
            else:
                visit(from_item.select)
        for expr in walk_exprs(query):
            if isinstance(expr, ExistsExpr):
                visit(expr.select)
            elif isinstance(expr, ScalarSubquery):
                visit(expr.select)
            elif isinstance(expr, InExpr) and expr.select is not None:
                visit(expr.select)

    visit(select)
    return names

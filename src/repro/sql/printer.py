"""Deterministic rendering of SQL ASTs (sqlite dialect).

Two parameter modes:

* debug form — parameters print as ``$var.column`` (round-trips through
  the parser; used in tests and DESIGN/EXPERIMENTS listings),
* placeholder form — parameters print as named placeholders for
  execution. ``placeholders=True`` renders sqlite's ``:var__column``
  style; passing a *callable* instead renders through it (an engine
  driver's :meth:`~repro.relational.driver.EngineDriver.placeholder`,
  e.g. DuckDB's ``$var__column``). See
  :func:`repro.sql.params.to_placeholders`.
"""

from __future__ import annotations

from repro.sql.ast import (
    BinOp,
    ColumnRef,
    DerivedTable,
    ExistsExpr,
    Expr,
    FromItem,
    FuncCall,
    InExpr,
    LiteralValue,
    ParamRef,
    ScalarSubquery,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
)

# Binding strengths for minimal parenthesization.
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4, "IS": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


def print_select(select: Select, placeholders=False) -> str:
    """Render a :class:`Select` to SQL text.

    ``placeholders`` is ``False`` (debug ``$var.column`` form), ``True``
    (sqlite ``:var__column`` named placeholders), or a callable mapping
    a placeholder key like ``var__column`` to the backend's rendering.
    """
    parts = ["SELECT "]
    if select.distinct:
        parts.append("DISTINCT ")
    parts.append(", ".join(_item(i, placeholders) for i in select.items))
    parts.append(" FROM ")
    parts.append(", ".join(_from_item(f, placeholders) for f in select.from_items))
    if select.where is not None:
        parts.append(" WHERE ")
        parts.append(_expr(select.where, placeholders, 0))
    if select.group_by:
        parts.append(" GROUP BY ")
        parts.append(", ".join(_expr(e, placeholders, 0) for e in select.group_by))
    if select.having is not None:
        parts.append(" HAVING ")
        parts.append(_expr(select.having, placeholders, 0))
    if select.order_by:
        parts.append(" ORDER BY ")
        rendered = []
        for item in select.order_by:
            text = _expr(item.expr, placeholders, 0)
            rendered.append(text if item.ascending else f"{text} DESC")
        parts.append(", ".join(rendered))
    return "".join(parts)


def print_expr(expr: Expr, placeholders=False) -> str:
    """Render a standalone expression."""
    return _expr(expr, placeholders, 0)


def _item(item: SelectItem, placeholders: bool) -> str:
    text = _expr(item.expr, placeholders, 0)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _from_item(item: FromItem, placeholders: bool) -> str:
    if isinstance(item, TableRef):
        if item.alias:
            return f"{item.name} AS {item.alias}"
        return item.name
    if isinstance(item, DerivedTable):
        return f"({print_select(item.select, placeholders)}) AS {item.alias}"
    raise TypeError(f"cannot print FROM item {type(item).__name__}")


def _literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float) and value == int(value):
        return str(value)  # keep the .0 so floats round-trip as floats
    return str(value)


def _expr(expr: Expr, placeholders: bool, parent_precedence: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.qualified()
    if isinstance(expr, ParamRef):
        if callable(placeholders):
            return placeholders(f"{expr.var}__{expr.column}")
        if placeholders:
            return f":{expr.var}__{expr.column}"
        return expr.qualified()
    if isinstance(expr, LiteralValue):
        return _literal(expr.value)
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, FuncCall):
        if expr.star:
            return f"{expr.name}(*)"
        args = ", ".join(_expr(a, placeholders, 0) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ExistsExpr):
        return f"EXISTS ({print_select(expr.select, placeholders)})"
    if isinstance(expr, ScalarSubquery):
        return f"({print_select(expr.select, placeholders)})"
    if isinstance(expr, InExpr):
        needle = _expr(expr.needle, placeholders, 7)
        if expr.select is not None:
            return f"{needle} IN ({print_select(expr.select, placeholders)})"
        values = ", ".join(_expr(v, placeholders, 0) for v in expr.values)
        return f"{needle} IN ({values})"
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            inner = _expr(expr.operand, placeholders, 3)
            return f"NOT {inner}"
        return f"-{_expr(expr.operand, placeholders, 7)}"
    if isinstance(expr, BinOp):
        precedence = _PRECEDENCE.get(expr.op, 4)
        left = _expr(expr.left, placeholders, precedence)
        right = _expr(expr.right, placeholders, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    raise TypeError(f"cannot print expression {type(expr).__name__}")

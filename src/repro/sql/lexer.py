"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

NAME = "NAME"       # identifiers and keywords (value preserved as written)
NUMBER = "NUMBER"
STRING = "STRING"
PARAM = "PARAM"     # $var.column — value is "var.column"
SYMBOL = "SYMBOL"
EOF = "EOF"

_KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
        "ORDER", "ASC", "DESC", "AS", "AND", "OR", "NOT", "EXISTS", "IN",
        "NULL", "IS", "BETWEEN", "LIKE",
    }
)

_TWO_CHAR = ("<>", "<=", ">=", "!=", "||")
_ONE_CHAR = set("(),*.=<>+-/%")


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the given keyword (case-insensitive)."""
        return self.kind == NAME and self.value.upper() == word

    def is_symbol(self, value: str) -> bool:
        """Whether this token is the given symbol."""
        return self.kind == SYMBOL and self.value == value

    @property
    def upper(self) -> str:
        return self.value.upper()


def is_keyword_name(value: str) -> bool:
    """Whether an identifier collides with a reserved keyword."""
    return value.upper() in _KEYWORDS


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL string; appends a trailing EOF token.

    Raises:
        SQLSyntaxError: on unterminated strings or unexpected characters.
    """
    tokens: list[Token] = []
    pos = 0
    length = len(sql)
    while pos < length:
        ch = sql[pos]
        if ch.isspace():
            pos += 1
            continue
        if ch == "'":
            start = pos
            pos += 1
            parts: list[str] = []
            while True:
                if pos >= length:
                    raise SQLSyntaxError("unterminated string literal", sql, start)
                if sql[pos] == "'":
                    if pos + 1 < length and sql[pos + 1] == "'":
                        parts.append("'")  # doubled quote escape
                        pos += 2
                        continue
                    pos += 1
                    break
                parts.append(sql[pos])
                pos += 1
            tokens.append(Token(STRING, "".join(parts), start))
            continue
        if ch == '"':
            # Double-quoted identifier.
            start = pos
            end = sql.find('"', pos + 1)
            if end < 0:
                raise SQLSyntaxError("unterminated quoted identifier", sql, start)
            tokens.append(Token(NAME, sql[pos + 1:end], start))
            pos = end + 1
            continue
        if ch.isdigit():
            start = pos
            while pos < length and sql[pos].isdigit():
                pos += 1
            if pos + 1 < length and sql[pos] == "." and sql[pos + 1].isdigit():
                pos += 1
                while pos < length and sql[pos].isdigit():
                    pos += 1
            tokens.append(Token(NUMBER, sql[start:pos], start))
            continue
        if ch == "$":
            start = pos
            pos += 1
            name_start = pos
            while pos < length and (sql[pos].isalnum() or sql[pos] == "_"):
                pos += 1
            if pos == name_start:
                raise SQLSyntaxError("expected name after '$'", sql, start)
            var = sql[name_start:pos]
            if pos >= length or sql[pos] != ".":
                raise SQLSyntaxError(
                    f"parameter ${var} must be qualified as ${var}.column", sql, start
                )
            pos += 1
            col_start = pos
            while pos < length and (sql[pos].isalnum() or sql[pos] == "_"):
                pos += 1
            if pos == col_start:
                raise SQLSyntaxError(f"expected column after ${var}.", sql, start)
            tokens.append(Token(PARAM, f"{var}.{sql[col_start:pos]}", start))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (sql[pos].isalnum() or sql[pos] == "_"):
                pos += 1
            tokens.append(Token(NAME, sql[start:pos], start))
            continue
        two = sql[pos:pos + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(SYMBOL, two, pos))
            pos += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token(SYMBOL, ch, pos))
            pos += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", sql, pos)
    tokens.append(Token(EOF, "", length))
    return tokens

"""Recursive-descent parser for the SQL subset.

Grammar (keywords case-insensitive):

.. code-block:: text

    select      := SELECT [DISTINCT] items FROM from_items
                   [WHERE expr] [GROUP BY exprs] [HAVING expr]
                   [ORDER BY order_items]
    items       := item (',' item)*
    item        := '*' | name '.' '*' | expr [[AS] name]
    from_items  := from_item (',' from_item)*
    from_item   := name [[AS] name] | '(' select ')' [AS] name
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | cmp_expr
    cmp_expr    := add_expr [cmp_op add_expr]
                 | add_expr IS [NOT] NULL
                 | add_expr [NOT] IN '(' (select | expr_list) ')'
    add_expr    := mul_expr (('+'|'-') mul_expr)*
    mul_expr    := primary (('*'|'/'|'%') primary)*
    primary     := NUMBER | STRING | NULL | PARAM | EXISTS '(' select ')'
                 | name '(' ('*' | expr_list) ')'     -- function call
                 | name ['.' name]                    -- column ref
                 | '(' (select | expr) ')'
                 | '-' primary
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    DerivedTable,
    ExistsExpr,
    Expr,
    FromItem,
    FuncCall,
    InExpr,
    LiteralValue,
    OrderItem,
    ParamRef,
    ScalarSubquery,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.lexer import (
    EOF,
    NAME,
    NUMBER,
    PARAM,
    STRING,
    SYMBOL,
    Token,
    is_keyword_name,
    tokenize,
)

_COMPARISONS = ("=", "<>", "!=", "<=", ">=", "<", ">")


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # -- helpers --------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        return SQLSyntaxError(message, self.sql, self.current.position)

    def _accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word}")

    def _accept_symbol(self, value: str) -> bool:
        if self.current.is_symbol(value):
            self._advance()
            return True
        return False

    def _expect_symbol(self, value: str) -> None:
        if not self._accept_symbol(value):
            raise self._error(f"expected {value!r}")

    def _expect_identifier(self) -> str:
        token = self.current
        if token.kind != NAME or is_keyword_name(token.value):
            raise self._error(f"expected an identifier, found {token.value!r}")
        self._advance()
        return token.value

    # -- select ---------------------------------------------------------------

    def parse(self) -> Select:
        select = self._select()
        if self.current.kind != EOF:
            raise self._error(f"unexpected trailing input {self.current.value!r}")
        return select

    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        query = Select()
        query.distinct = self._accept_keyword("DISTINCT")
        query.items.append(self._select_item())
        while self._accept_symbol(","):
            query.items.append(self._select_item())
        self._expect_keyword("FROM")
        query.from_items.append(self._from_item())
        while self._accept_symbol(","):
            query.from_items.append(self._from_item())
        if self._accept_keyword("WHERE"):
            query.where = self._expr()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            query.group_by.append(self._expr())
            while self._accept_symbol(","):
                query.group_by.append(self._expr())
        if self._accept_keyword("HAVING"):
            query.having = self._expr()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            query.order_by.append(self._order_item())
            while self._accept_symbol(","):
                query.order_by.append(self._order_item())
        return query

    def _select_item(self) -> SelectItem:
        if self.current.is_symbol("*"):
            self._advance()
            return SelectItem(Star())
        if (
            self.current.kind == NAME
            and not is_keyword_name(self.current.value)
            and self._peek().is_symbol(".")
            and self._peek(2).is_symbol("*")
        ):
            table = self._advance().value
            self._advance()  # '.'
            self._advance()  # '*'
            return SelectItem(Star(table))
        expr = self._expr()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self.current.kind == NAME and not is_keyword_name(self.current.value):
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _from_item(self) -> FromItem:
        if self._accept_symbol("("):
            select = self._select()
            self._expect_symbol(")")
            self._accept_keyword("AS")
            alias = self._expect_identifier()
            return DerivedTable(select, alias)
        name = self._expect_identifier()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self.current.kind == NAME and not is_keyword_name(self.current.value):
            alias = self._advance().value
        return TableRef(name, alias)

    def _order_item(self) -> OrderItem:
        expr = self._expr()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr, ascending)

    # -- expressions -------------------------------------------------------------

    def _expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = BinOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = BinOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._cmp_expr()

    def _cmp_expr(self) -> Expr:
        left = self._add_expr()
        if self._accept_keyword("IS"):
            negated = self._accept_keyword("NOT")
            # sqlite's IS is general null-safe equality; `IS NULL` is the
            # common special case.
            if self._accept_keyword("NULL"):
                right: Expr = LiteralValue(None)
            else:
                right = self._add_expr()
            check: Expr = BinOp("IS", left, right)
            return UnaryOp("NOT", check) if negated else check
        negated = False
        if self.current.is_keyword("NOT") and self._peek().is_keyword("IN"):
            self._advance()
            negated = True
        if self._accept_keyword("IN"):
            self._expect_symbol("(")
            if self.current.is_keyword("SELECT"):
                sub = self._select()
                self._expect_symbol(")")
                result: Expr = InExpr(left, select=sub)
            else:
                values = [self._expr()]
                while self._accept_symbol(","):
                    values.append(self._expr())
                self._expect_symbol(")")
                result = InExpr(left, tuple(values))
            return UnaryOp("NOT", result) if negated else result
        for op in _COMPARISONS:
            if self.current.is_symbol(op):
                self._advance()
                normalized = "<>" if op == "!=" else op
                return BinOp(normalized, left, self._add_expr())
        return left

    def _add_expr(self) -> Expr:
        left = self._mul_expr()
        while self.current.kind == SYMBOL and self.current.value in ("+", "-", "||"):
            op = self._advance().value
            left = BinOp(op, left, self._mul_expr())
        return left

    def _mul_expr(self) -> Expr:
        left = self._primary()
        while self.current.kind == SYMBOL and self.current.value in ("*", "/", "%"):
            op = self._advance().value
            left = BinOp(op, left, self._primary())
        return left

    def _primary(self) -> Expr:
        token = self.current
        if token.kind == NUMBER:
            self._advance()
            if "." in token.value:
                return LiteralValue(float(token.value))
            return LiteralValue(int(token.value))
        if token.kind == STRING:
            self._advance()
            return LiteralValue(token.value)
        if token.kind == PARAM:
            self._advance()
            var, column = token.value.split(".", 1)
            return ParamRef(var, column)
        if token.is_keyword("NULL"):
            self._advance()
            return LiteralValue(None)
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_symbol("(")
            sub = self._select()
            self._expect_symbol(")")
            return ExistsExpr(sub)
        if token.is_symbol("-"):
            self._advance()
            return UnaryOp("-", self._primary())
        if token.is_symbol("("):
            self._advance()
            if self.current.is_keyword("SELECT"):
                sub = self._select()
                self._expect_symbol(")")
                return ScalarSubquery(sub)
            inner = self._expr()
            self._expect_symbol(")")
            return inner
        if token.kind == NAME and not is_keyword_name(token.value):
            if self._peek().is_symbol("("):
                name = self._advance().value.upper()
                self._advance()  # '('
                if self._accept_symbol("*"):
                    self._expect_symbol(")")
                    return FuncCall(name, star=True)
                args = [self._expr()]
                while self._accept_symbol(","):
                    args.append(self._expr())
                self._expect_symbol(")")
                return FuncCall(name, tuple(args))
            first = self._advance().value
            if self._accept_symbol("."):
                column = self._expect_identifier()
                return ColumnRef(column, table=first)
            return ColumnRef(first)
        raise self._error(f"expected an expression, found {token.value!r}")


def parse_select(sql: str) -> Select:
    """Parse a SELECT statement in the tag-query dialect.

    Raises:
        SQLSyntaxError: when the input is outside the dialect.
    """
    return _Parser(sql).parse()

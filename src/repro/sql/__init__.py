"""SQL substrate: AST, parser, printer, and the transforms UNBIND needs.

Tag queries of schema-tree views are parameterized SQL (Definition 1 of the
paper): parameters are written ``$var.column`` and range over tuples bound
by ancestor view nodes. This package provides:

* a structured AST (:mod:`repro.sql.ast`) with deep cloning,
* a parser for the SQL subset tag queries use (:mod:`repro.sql.parser`),
* a deterministic printer in the sqlite dialect (:mod:`repro.sql.printer`),
* parameter utilities — collection, renaming, placeholder substitution
  (:mod:`repro.sql.params`),
* the structural transforms behind UNBIND and NEST: derived-table
  inlining, select-list/GROUP BY augmentation, EXISTS injection, alias
  management (:mod:`repro.sql.transform`),
* result-column analysis with catalog-aware ``*`` expansion
  (:mod:`repro.sql.analysis`).
"""

from repro.sql.ast import (
    BinOp,
    ColumnRef,
    DerivedTable,
    ExistsExpr,
    FuncCall,
    LiteralValue,
    OrderItem,
    ParamRef,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.parser import parse_select
from repro.sql.printer import print_select
from repro.sql.params import collect_params, rename_param_vars, to_placeholders

__all__ = [
    "BinOp",
    "ColumnRef",
    "DerivedTable",
    "ExistsExpr",
    "FuncCall",
    "LiteralValue",
    "OrderItem",
    "ParamRef",
    "Select",
    "SelectItem",
    "Star",
    "TableRef",
    "UnaryOp",
    "parse_select",
    "print_select",
    "collect_params",
    "rename_param_vars",
    "to_placeholders",
]

"""AST for the SQL subset used by tag queries.

Expression nodes are frozen dataclasses (structural equality, safe
sharing); :class:`Select` and the FROM items are mutable, because the
composition algorithm edits queries in place after cloning them. Every
node supports :meth:`clone`, a deep copy that keeps expression sharing
irrelevant (expressions are immutable, so they may be shared freely).

The supported dialect covers what the paper's examples and composed
queries need: select lists with ``*``/``t.*``/aggregates/aliases, comma
joins of tables and derived tables, WHERE trees over comparisons and
boolean connectives, EXISTS subqueries, IN lists, GROUP BY, HAVING, and
ORDER BY.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# ---------------------------------------------------------------------------
# Expressions (immutable)
# ---------------------------------------------------------------------------

Expr = Union[
    "ColumnRef",
    "ParamRef",
    "LiteralValue",
    "FuncCall",
    "BinOp",
    "UnaryOp",
    "ExistsExpr",
    "ScalarSubquery",
    "InExpr",
    "Star",
]

#: Aggregate function names recognized by the dialect.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass(frozen=True)
class ColumnRef:
    """A column reference, optionally qualified: ``capacity``, ``TEMP.hotelid``."""

    column: str
    table: Optional[str] = None

    def qualified(self) -> str:
        """The reference as text, e.g. ``TEMP.hotelid``."""
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class ParamRef:
    """A binding-variable parameter reference: ``$m.metroid``."""

    var: str
    column: str

    def qualified(self) -> str:
        """The reference as text, e.g. ``$m.metroid``."""
        return f"${self.var}.{self.column}"


@dataclass(frozen=True)
class LiteralValue:
    """A literal: integer, float, string, or NULL (``None``)."""

    value: Union[int, float, str, None]


@dataclass(frozen=True)
class Star:
    """``*`` or ``table.*`` in a select list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class FuncCall:
    """A function call, e.g. ``SUM(capacity)`` or ``COUNT(*)``."""

    name: str  # stored upper-case
    args: tuple[Expr, ...] = ()
    star: bool = False  # COUNT(*)

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS

    def default_alias(self) -> str:
        """Canonical output name, e.g. ``SUM_capacity`` (Figure 20's naming)."""
        if self.star or not self.args:
            return f"{self.name}_all"
        first = self.args[0]
        if isinstance(first, ColumnRef):
            return f"{self.name}_{first.column}"
        if isinstance(first, ParamRef):
            return f"{self.name}_{first.column}"
        return f"{self.name}_expr"


@dataclass(frozen=True)
class BinOp:
    """A binary operation. ``op`` is upper-case for keywords (AND, OR)."""

    op: str  # =, <>, <, <=, >, >=, +, -, *, /, AND, OR
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp:
    """NOT or unary minus."""

    op: str  # NOT, -
    operand: Expr


@dataclass(frozen=True)
class ExistsExpr:
    """``EXISTS (subquery)``. The subquery is NOT frozen — treat with care:

    expression nodes containing an ExistsExpr should not be shared across
    queries that will subsequently be edited; :func:`clone_expr` deep-copies
    through them.
    """

    select: "Select"


@dataclass(frozen=True)
class ScalarSubquery:
    """A parenthesized subquery in expression position: ``(SELECT ...)``.

    Produces the single value of the subquery's first row (NULL when the
    subquery returns no rows). The unbinding of ungrouped aggregate tag
    queries generates these: ``(SELECT SUM(capacity) FROM confroom WHERE
    chotel_id = TEMP.hotelid)`` keeps the one-row-per-parent semantics an
    inner join + GROUP BY would lose on empty groups.
    """

    select: "Select"


@dataclass(frozen=True)
class InExpr:
    """``expr IN (v1, v2, ...)`` or ``expr IN (subquery)``."""

    needle: Expr
    values: tuple[Expr, ...] = ()
    select: Optional["Select"] = None


# ---------------------------------------------------------------------------
# Select structure (mutable)
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None

    def output_name(self) -> Optional[str]:
        """The result-column name, if statically known."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.column
        if isinstance(self.expr, ParamRef):
            return self.expr.column
        if isinstance(self.expr, FuncCall):
            return self.expr.default_alias()
        return None

    def clone(self) -> "SelectItem":
        """Deep copy."""
        return SelectItem(clone_expr(self.expr), self.alias)


@dataclass
class TableRef:
    """A base-table FROM item with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        """The name by which columns of this item are qualified."""
        return self.alias or self.name

    def clone(self) -> "TableRef":
        """Deep copy."""
        return TableRef(self.name, self.alias)


@dataclass
class DerivedTable:
    """A parenthesized subquery FROM item: ``(SELECT ...) AS alias``."""

    select: "Select"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias

    def clone(self) -> "DerivedTable":
        """Deep copy (clones the subquery)."""
        return DerivedTable(self.select.clone(), self.alias)


FromItem = Union[TableRef, DerivedTable]


@dataclass
class OrderItem:
    """One ORDER BY entry."""

    expr: Expr
    ascending: bool = True

    def clone(self) -> "OrderItem":
        """Deep copy."""
        return OrderItem(clone_expr(self.expr), self.ascending)


@dataclass
class Select:
    """A SELECT statement."""

    items: list[SelectItem] = field(default_factory=list)
    from_items: list[FromItem] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    distinct: bool = False

    def clone(self) -> "Select":
        """Deep copy of the whole statement."""
        return Select(
            items=[item.clone() for item in self.items],
            from_items=[fi.clone() for fi in self.from_items],
            where=clone_expr(self.where) if self.where is not None else None,
            group_by=[clone_expr(e) for e in self.group_by],
            having=clone_expr(self.having) if self.having is not None else None,
            order_by=[o.clone() for o in self.order_by],
            distinct=self.distinct,
        )

    def from_binding_names(self) -> list[str]:
        """Names by which FROM items can be referenced in this query."""
        return [fi.binding_name for fi in self.from_items]

    def add_where(self, condition: Expr) -> None:
        """AND a condition into the WHERE clause."""
        if self.where is None:
            self.where = condition
        else:
            self.where = BinOp("AND", self.where, condition)

    def add_having(self, condition: Expr) -> None:
        """AND a condition into the HAVING clause."""
        if self.having is None:
            self.having = condition
        else:
            self.having = BinOp("AND", self.having, condition)


def clone_expr(expr: Expr) -> Expr:
    """Deep-copy an expression, cloning through embedded subqueries.

    Immutable leaves are returned as-is; only nodes holding a
    :class:`Select` actually allocate.
    """
    if isinstance(expr, (ColumnRef, ParamRef, LiteralValue, Star)):
        return expr
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(clone_expr(a) for a in expr.args), expr.star)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, clone_expr(expr.left), clone_expr(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, clone_expr(expr.operand))
    if isinstance(expr, ExistsExpr):
        return ExistsExpr(expr.select.clone())
    if isinstance(expr, ScalarSubquery):
        return ScalarSubquery(expr.select.clone())
    if isinstance(expr, InExpr):
        return InExpr(
            clone_expr(expr.needle),
            tuple(clone_expr(v) for v in expr.values),
            expr.select.clone() if expr.select is not None else None,
        )
    raise TypeError(f"cannot clone {type(expr).__name__}")

"""Staleness policies: how old a cached response may be when served.

Freshness is measured in *version lag*: the sum, over the plan's
base-table read set, of ``current_version - stamped_version`` as
published by a :class:`~repro.maintenance.tracker.WriteTracker`. One
unit of lag is one recorded write event against a table the response
depends on — writes to unrelated tables never count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

_KINDS = ("strict", "bounded", "manual")


@dataclass(frozen=True)
class StalenessPolicy:
    """Consistency-vs-throughput dial for the result cache.

    * ``strict`` — a cached response is served only at lag 0; any write
      to a read-set table forces recomputation over live data. Served
      bytes are identical to uncached evaluation.
    * ``bounded`` — a cached response is served while its lag is at most
      ``max_lag`` write events; beyond that it is recomputed. Bounds the
      staleness an operator tolerates for throughput.
    * ``manual`` — cached responses are served regardless of lag; only
      explicit invalidation (``invalidate_tables`` / ``invalidate``)
      forces recomputation. The operator owns freshness entirely.
    """

    kind: str
    max_lag: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ReproError(
                f"unknown staleness policy {self.kind!r} "
                f"(expected one of {', '.join(_KINDS)})"
            )
        if self.max_lag < 0:
            raise ReproError(
                f"staleness bound must be >= 0, got {self.max_lag}"
            )

    @classmethod
    def strict(cls) -> "StalenessPolicy":
        """Serve cached bytes only when no dependent write has landed."""
        return cls("strict")

    @classmethod
    def bounded(cls, max_lag: int) -> "StalenessPolicy":
        """Serve cached bytes while lag is at most ``max_lag`` writes."""
        return cls("bounded", max_lag)

    @classmethod
    def manual(cls) -> "StalenessPolicy":
        """Serve cached bytes until explicitly invalidated."""
        return cls("manual")

    @classmethod
    def parse(cls, text: str) -> "StalenessPolicy":
        """Parse ``"strict"``, ``"manual"``, or ``"bounded:N"``.

        This is the CLI/config syntax (``serve-bench --staleness``).
        """
        spec = text.strip()
        if spec == "strict":
            return cls.strict()
        if spec == "manual":
            return cls.manual()
        if spec.startswith("bounded:"):
            _, _, bound = spec.partition(":")
            try:
                return cls.bounded(int(bound))
            except ValueError:
                pass
        raise ReproError(
            f"cannot parse staleness policy {text!r} "
            "(expected strict, manual, or bounded:N)"
        )

    def allows(self, lag: int) -> bool:
        """Whether a cached response at ``lag`` write events may be served."""
        if self.kind == "manual":
            return True
        if self.kind == "strict":
            return lag == 0
        return lag <= self.max_lag

    def describe(self) -> str:
        """Round-trippable text form (inverse of :meth:`parse`)."""
        if self.kind == "bounded":
            return f"bounded:{self.max_lag}"
        return self.kind

"""Incremental delta re-evaluation of stale publishing results.

E14 showed the strict staleness policy costs ~2x throughput under
writes because any single-table change forces a full re-run of the
compiled plan. The paper's schema-tree queries make per-node read sets
explicit (each tag query names its base tables), so maintenance can be
pushed to exactly the affected nodes:

1. **Dirty selection.** Intersect the tracker's changed tables (tables
   whose version advanced past the cached entry's stamp) with the
   compiled plan's per-node read sets
   (:func:`repro.serving.fingerprint.node_read_sets`). Literal nodes
   read nothing and are never dirty.
2. **Frontier.** A dirty node whose ancestor is also dirty is subsumed:
   re-evaluating the ancestor rebuilds the descendant anyway. The
   *frontier* is the set of dirty nodes with no dirty proper ancestor;
   frontier subtrees are pairwise disjoint.
3. **Shadow re-evaluation.** Each frontier subtree is re-executed with
   the bulk evaluator's one-query-per-node machinery
   (:meth:`~repro.schema_tree.bulk_evaluator.BulkViewEvaluator.evaluate_node`)
   against *shadow parents*: throwaway collector elements carrying the
   retained parent instances' binding environments and context keys, so
   the decorrelated bulk rows group exactly as they would in a full
   run. The captured environments also make the correlated per-parent
   fallback work unchanged.
4. **Persistent splice.** The fresh subtrees replace the stale ones in
   a *copy-on-spine* rebuild: only the ancestors of frontier nodes (the
   spine) are shallow-copied; untouched sibling subtrees are shared
   with the old document, which is never mutated — a mid-splice failure
   cannot tear the cached entry, the server just falls back to full
   recomputation.

Anything the splice cannot prove safe raises :class:`DeltaUnsupported`
(deliberately *not* a :class:`~repro.errors.ReproError`, so the server's
request-error handling never confuses "delta declined" with "request
failed"): an unreliable ancestor plan (runtime column names may differ
from the static ones the context keys use), a missing binding or key
column in a captured environment, or captured state that no longer
matches the cached document.

Shared subtrees keep their original ``parent`` pointers (pointing into
the old document); nothing downstream reads them — serialization and
the next delta walk schema structure and child lists only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.relational.engine import Database, Row
from repro.schema_tree.bulk_evaluator import BulkViewEvaluator, _Instance, _NodePlan
from repro.schema_tree.evaluator import MaterializeStats
from repro.schema_tree.model import SchemaNode, SchemaTreeQuery
from repro.xmlcore.nodes import Document, Element

#: Maintenance modes the server accepts: ``"full"`` re-runs the whole
#: compiled plan on staleness (the pre-E15 behaviour); ``"delta"``
#: re-executes only dirty schema nodes and splices, falling back to full
#: when the delta path declines.
MAINTENANCE_MODES = ("full", "delta")


class DeltaUnsupported(Exception):
    """This stale result cannot be safely delta-maintained.

    Raised (and caught by the server, which falls back to a full
    recompute) when the splice preconditions fail — see the module
    docstring for the cases. Intentionally a plain ``Exception`` rather
    than a ``ReproError`` so it is never mistaken for a request error.
    """


@dataclass
class MaterializedState:
    """Captured evaluation state a delta re-evaluation splices against.

    ``instances`` maps each schema node id to its materialized
    ``(element, env)`` pairs in document order, where ``env`` is the
    binding environment visible to that element's children; the
    synthetic root maps to ``[(document, {})]``. Produced by the
    evaluators' ``capture_instances`` hook during a full run, and by
    :meth:`DeltaEvaluator.evaluate` for the spliced document. Treated
    as immutable once stored.
    """

    document: Document
    instances: dict[int, list[tuple[Any, dict[str, Row]]]]


@dataclass
class DeltaResult:
    """Outcome of one successful delta re-evaluation."""

    #: The spliced document (a new tree sharing untouched subtrees with
    #: the old one, which is left intact).
    document: Document
    #: Captured state for the spliced document, ready for the next delta.
    state: MaterializedState
    #: All schema nodes whose read set intersected the changed tables.
    dirty_nodes: tuple[int, ...]
    #: The dirty nodes actually re-executed (no dirty proper ancestor).
    frontier_nodes: tuple[int, ...]
    #: Elements created while re-evaluating the frontier subtrees.
    elements_refreshed: int
    #: Rows fetched from the database by the re-evaluation.
    rows_refetched: int


def dirty_node_ids(
    node_read_sets: dict[int, tuple[str, ...]],
    changed_tables: Iterable[str],
) -> list[int]:
    """Schema nodes whose tag query reads a changed table, ascending.

    ``node_read_sets`` is the compiled plan's per-node map
    (:attr:`repro.serving.plan_cache.CompiledPlan.node_read_sets`);
    nodes absent from it (literal output elements) are never dirty.
    """
    changed = set(changed_tables)
    return sorted(
        node_id
        for node_id, tables in node_read_sets.items()
        if changed.intersection(tables)
    )


class DeltaEvaluator:
    """Re-evaluates only the dirty schema nodes of a stale cached result.

    ``db`` and ``stats`` are the usual injected connection/stats pair
    (see :class:`~repro.schema_tree.evaluator.ViewEvaluator`); fresh
    elements created during the splice land in ``stats`` so traces
    account delta work like any other materialization.
    """

    def __init__(self, db: Database, stats: Optional[MaterializeStats] = None):
        self.db = db
        self.stats = stats if stats is not None else MaterializeStats()

    # -- public entry point ---------------------------------------------------

    def evaluate(
        self,
        view: SchemaTreeQuery,
        state: MaterializedState,
        node_read_sets: dict[int, tuple[str, ...]],
        changed_tables: Iterable[str],
    ) -> DeltaResult:
        """Refresh ``state`` for ``changed_tables``; returns the splice.

        Raises :class:`DeltaUnsupported` when the delta path cannot
        guarantee byte-identical output (the caller should recompute in
        full); never mutates ``state`` or its document either way.
        """
        bulk = BulkViewEvaluator(self.db, self.stats, capture_instances={})
        plans = bulk.plan_view(view)
        nodes_by_id = {n.id: n for n in view.nodes(include_root=False)}
        dirty = dirty_node_ids(node_read_sets, changed_tables)
        if not dirty:
            raise DeltaUnsupported("no schema node reads the changed tables")
        dirty_set = set(dirty)
        frontier = [
            node_id
            for node_id in dirty
            if not any(
                a.id in dirty_set
                for a in nodes_by_id[node_id].path_from_root()[1:-1]
            )
        ]
        for node_id in frontier:
            self._check_spliceable(nodes_by_id[node_id], plans)

        rows_before = self.db.stats.rows_fetched
        fresh: dict[int, list[_Instance]] = {}
        subtree_ids: set[int] = set()
        # id(old parent element) -> {frontier node id: fresh child elements}
        replace_at: dict[int, dict[int, list]] = {}
        elements_refreshed = 0
        for node_id in frontier:
            node = nodes_by_id[node_id]
            parent_node = node.parent
            assert parent_node is not None
            retained = state.instances.get(parent_node.id, [])
            shadows = [
                _Instance(Element(node.tag), env, self._context_key(bulk, node, env))
                for _element, env in retained
            ]
            local = self._evaluate_subtree(bulk, plans, node, shadows)
            for sub_id, created in local.items():
                subtree_ids.add(sub_id)
                elements_refreshed += len(created)
                fresh.setdefault(sub_id, []).extend(created)
            for (old_element, _env), shadow in zip(retained, shadows):
                replace_at.setdefault(id(old_element), {})[node_id] = (
                    shadow.element.children
                )

        spine_ids = self._spine_ids(nodes_by_id, frontier)
        elem_node = self._element_owners(nodes_by_id, state, spine_ids)
        new_document = Document()
        copies: dict[int, Element] = {}
        self._rebuild_children(
            view.root, state.document, new_document,
            replace_at, spine_ids, elem_node, copies,
        )
        new_state = self._rebuild_state(
            view, state, new_document, subtree_ids, spine_ids, fresh, copies
        )
        return DeltaResult(
            document=new_document,
            state=new_state,
            dirty_nodes=tuple(dirty),
            frontier_nodes=tuple(frontier),
            elements_refreshed=elements_refreshed,
            rows_refetched=self.db.stats.rows_fetched - rows_before,
        )

    # -- frontier validation and re-evaluation --------------------------------

    def _check_spliceable(
        self, node: SchemaNode, plans: dict[int, _NodePlan]
    ) -> None:
        """Reject frontiers whose ancestor context keys are untrustworthy."""
        for ancestor in node.path_from_root()[1:-1]:
            if ancestor.tag_query is None:
                continue
            plan = plans.get(ancestor.id)
            if plan is None or not plan.reliable or ancestor.bv is None:
                raise DeltaUnsupported(
                    f"ancestor <{ancestor.tag}> of dirty node {node.id} has "
                    "no reliable context key (correlated or unstable shape)"
                )

    def _context_key(
        self, bulk: BulkViewEvaluator, node: SchemaNode, env: dict[str, Row]
    ) -> tuple:
        """Rebuild the bulk context key a retained parent instance carries.

        Concatenates the key columns of every query-bearing strict
        ancestor of ``node`` in root-to-leaf order — exactly the order
        the decorrelator exposes them in the bulk rows, so
        ``_group_rows`` deals each shadow parent its share.
        """
        key: list = []
        for ancestor in node.path_from_root()[1:-1]:
            if ancestor.tag_query is None:
                continue
            row = env.get(ancestor.bv) if ancestor.bv is not None else None
            if row is None:
                raise DeltaUnsupported(
                    f"captured environment lacks binding ${ancestor.bv} "
                    f"for ancestor <{ancestor.tag}>"
                )
            for column in bulk.node_key_columns(ancestor):
                if column not in row:
                    raise DeltaUnsupported(
                        f"captured ${ancestor.bv} row lacks key column "
                        f"{column!r}"
                    )
                key.append(row[column])
        return tuple(key)

    def _evaluate_subtree(
        self,
        bulk: BulkViewEvaluator,
        plans: dict[int, _NodePlan],
        node: SchemaNode,
        shadows: list[_Instance],
    ) -> dict[int, list[_Instance]]:
        """Re-execute one frontier subtree under its shadow parents."""
        local: dict[int, list[_Instance]] = {}
        for sub in node.walk():
            if sub is node:
                parents = shadows
            else:
                assert sub.parent is not None
                parents = local[sub.parent.id]
            local[sub.id] = bulk.evaluate_node(plans[sub.id], parents)
        return local

    # -- persistent splice ----------------------------------------------------

    def _spine_ids(
        self, nodes_by_id: dict[int, SchemaNode], frontier: list[int]
    ) -> set[int]:
        """Schema ids on a root-to-frontier path (the copied spine)."""
        spine: set[int] = set()
        for node_id in frontier:
            for ancestor in nodes_by_id[node_id].path_from_root()[:-1]:
                spine.add(ancestor.id)
        return spine

    def _element_owners(
        self,
        nodes_by_id: dict[int, SchemaNode],
        state: MaterializedState,
        spine_ids: set[int],
    ) -> dict[int, int]:
        """Map ``id(element) -> schema node id`` for spine-node children.

        Only children of spine elements need owners: the rebuild groups
        each spine element's child list by schema node to know where
        the fresh subtrees go and which groups to share.
        """
        owners: dict[int, int] = {}
        for node in nodes_by_id.values():
            if node.parent is None or node.parent.id not in spine_ids:
                continue
            for element, _env in state.instances.get(node.id, []):
                owners[id(element)] = node.id
        return owners

    def _rebuild_children(
        self,
        schema_node: SchemaNode,
        old_parent,
        new_parent,
        replace_at: dict[int, dict[int, list]],
        spine_ids: set[int],
        elem_node: dict[int, int],
        copies: dict[int, Element],
    ) -> None:
        """Copy-on-spine rebuild of one spine element's child list.

        Fresh subtrees are adopted (reparented — they are throwaway
        collector children); spine children are shallow-copied and
        recursed into; everything else is *shared* with the old
        document, parent pointers untouched, so the old tree stays
        fully intact.
        """
        groups: dict[int, list] = {}
        for child in old_parent.children:
            owner = elem_node.get(id(child))
            if owner is None:
                raise DeltaUnsupported(
                    "cached document has a child the captured state does "
                    "not account for"
                )
            groups.setdefault(owner, []).append(child)
        replacements = replace_at.get(id(old_parent), {})
        children: list = []
        for child_node in schema_node.children:
            if child_node.id in replacements:
                for fresh_element in replacements[child_node.id]:
                    fresh_element.parent = new_parent
                    children.append(fresh_element)
            elif child_node.id in spine_ids:
                for old_child in groups.get(child_node.id, []):
                    copy = old_child.shallow_copy()
                    copy.parent = new_parent
                    copies[id(old_child)] = copy
                    children.append(copy)
                    self._rebuild_children(
                        child_node, old_child, copy,
                        replace_at, spine_ids, elem_node, copies,
                    )
            else:
                children.extend(groups.get(child_node.id, []))
        new_parent.children = children

    def _rebuild_state(
        self,
        view: SchemaTreeQuery,
        state: MaterializedState,
        new_document: Document,
        subtree_ids: set[int],
        spine_ids: set[int],
        fresh: dict[int, list[_Instance]],
        copies: dict[int, Element],
    ) -> MaterializedState:
        """Captured state for the spliced document.

        Spine instances point at their copies, refreshed subtrees at
        the fresh instances, and untouched nodes share the old lists
        (which are never mutated).
        """
        new_instances: dict[int, list[tuple[Any, dict[str, Row]]]] = {
            view.root.id: [(new_document, {})]
        }
        for node_id, old_list in state.instances.items():
            if node_id == view.root.id or node_id in subtree_ids:
                continue
            if node_id in spine_ids:
                rebuilt: list[tuple[Any, dict[str, Row]]] = []
                for element, env in old_list:
                    copy = copies.get(id(element))
                    if copy is None:
                        raise DeltaUnsupported(
                            "captured spine instance is absent from the "
                            "cached document"
                        )
                    rebuilt.append((copy, env))
                new_instances[node_id] = rebuilt
            else:
                new_instances[node_id] = old_list
        for node_id in subtree_ids:
            new_instances[node_id] = [
                (inst.element, inst.env) for inst in fresh.get(node_id, [])
            ]
        return MaterializedState(document=new_document, instances=new_instances)

"""Incremental delta re-evaluation of stale publishing results.

E14 showed the strict staleness policy costs ~2x throughput under
writes because any single-table change forces a full re-run of the
compiled plan. The paper's schema-tree queries make per-node read sets
explicit (each tag query names its base tables), so maintenance can be
pushed to exactly the affected nodes:

1. **Dirty selection.** Intersect the tracker's changed tables (tables
   whose version advanced past the cached entry's stamp) with the
   compiled plan's per-node read sets
   (:func:`repro.serving.fingerprint.node_read_sets`). Literal nodes
   read nothing and are never dirty.
2. **Frontier.** A dirty node whose ancestor is also dirty is subsumed:
   re-evaluating the ancestor rebuilds the descendant anyway. The
   *frontier* is the set of dirty nodes with no dirty proper ancestor;
   frontier subtrees are pairwise disjoint.
3. **Shadow re-evaluation.** Each frontier subtree is re-executed with
   the bulk evaluator's one-query-per-node machinery
   (:meth:`~repro.schema_tree.bulk_evaluator.BulkViewEvaluator.evaluate_node`)
   against *shadow parents*: throwaway collector elements carrying the
   retained parent instances' binding environments and context keys, so
   the decorrelated bulk rows group exactly as they would in a full
   run. The captured environments also make the correlated per-parent
   fallback work unchanged.
4. **Persistent splice.** The fresh subtrees replace the stale ones in
   a *copy-on-spine* rebuild: only the ancestor instances on a path to
   a replacement (the spine) are shallow-copied; untouched sibling
   subtrees — including sibling instances of spine schema nodes with
   no replacement beneath them — are shared with the old document,
   which is never mutated — a mid-splice failure cannot tear the
   cached entry, the server just falls back to full recomputation.
   Sharing by identity is load-bearing: the fragment byte cache
   (:mod:`repro.maintenance.fragments`) keys serialized spans by
   ``id(element)``, so every instance the splice shares keeps its
   cached bytes.

Anything the splice cannot prove safe raises :class:`DeltaUnsupported`
(deliberately *not* a :class:`~repro.errors.ReproError`, so the server's
request-error handling never confuses "delta declined" with "request
failed"): an unreliable ancestor plan (runtime column names may differ
from the static ones the context keys use), a missing binding or key
column in a captured environment, or captured state that no longer
matches the cached document.

Shared subtrees keep their original ``parent`` pointers (pointing into
the old document); nothing downstream reads them — serialization and
the next delta walk schema structure and child lists only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace as replace_dataclass
from typing import Any, Iterable, Mapping, Optional

from repro.errors import SQLTransformError
from repro.maintenance.tracker import TableChange
from repro.relational.engine import Database, Row
from repro.schema_tree.bulk_evaluator import BulkViewEvaluator, _Instance, _NodePlan
from repro.schema_tree.evaluator import MaterializeStats
from repro.schema_tree.model import SchemaNode, SchemaTreeQuery
from repro.sql.analysis import (
    load_bearing_columns,
    membership_bearing_columns,
    referenced_columns_of_table,
    referenced_tables,
)
from repro.sql.ast import ColumnRef, SelectItem, Star
from repro.sql.params import collect_params
from repro.sql.transform import (
    push_key_predicate,
    qualify_unqualified_columns,
    restrict_output_in,
)
from repro.xmlcore.nodes import Document, Element

#: Maintenance modes the server accepts: ``"full"`` re-runs the whole
#: compiled plan on staleness (the pre-E15 behaviour); ``"delta"``
#: re-executes only dirty schema nodes and splices, falling back to full
#: when the delta path declines; ``"fragment"`` is delta plus the
#: serialized-fragment byte cache (:mod:`repro.maintenance.fragments`).
MAINTENANCE_MODES = ("full", "delta", "fragment")

#: Row-level pushdown bail-out: above this many changed keys the IN-list
#: query stops being obviously cheaper than the node re-evaluation it
#: replaces, so the delta falls back to node granularity.
ROW_PUSHDOWN_MAX_KEYS = 512


class DeltaUnsupported(Exception):
    """This stale result cannot be safely delta-maintained.

    Raised (and caught by the server, which falls back to a full
    recompute) when the splice preconditions fail — see the module
    docstring for the cases. Intentionally a plain ``Exception`` rather
    than a ``ReproError`` so it is never mistaken for a request error.
    """


@dataclass
class MaterializedState:
    """Captured evaluation state a delta re-evaluation splices against.

    ``instances`` maps each schema node id to its materialized
    ``(element, env)`` pairs in document order, where ``env`` is the
    binding environment visible to that element's children; the
    synthetic root maps to ``[(document, {})]``. Produced by the
    evaluators' ``capture_instances`` hook during a full run, and by
    :meth:`DeltaEvaluator.evaluate` for the spliced document. Treated
    as immutable once stored.
    """

    document: Document
    instances: dict[int, list[tuple[Any, dict[str, Row]]]]


@dataclass
class DeltaResult:
    """Outcome of one successful delta re-evaluation."""

    #: The spliced document (a new tree sharing untouched subtrees with
    #: the old one, which is left intact).
    document: Document
    #: Captured state for the spliced document, ready for the next delta.
    state: MaterializedState
    #: All schema nodes whose read set intersected the changed tables.
    dirty_nodes: tuple[int, ...]
    #: The dirty nodes actually re-executed (no dirty proper ancestor).
    frontier_nodes: tuple[int, ...]
    #: Elements created while re-evaluating the frontier subtrees.
    elements_refreshed: int
    #: Rows fetched from the database by the re-evaluation.
    rows_refetched: int
    #: Frontier nodes maintained at *row* granularity (key pushdown):
    #: only the changed rows' elements were rebuilt, siblings and their
    #: subtrees were shared. Always a subset of ``frontier_nodes``.
    row_frontier_nodes: tuple[int, ...] = ()
    #: Elements rebuilt by the row-level path (one per changed row per
    #: affected parent block).
    rows_spliced: int = 0
    #: Frontier nodes maintained at *block* granularity: only the parent
    #: blocks containing changed rows were re-evaluated (whole subtree,
    #: restricted by block key), sibling blocks were shared. Disjoint
    #: from ``row_frontier_nodes``; a subset of ``frontier_nodes``.
    block_frontier_nodes: tuple[int, ...] = ()
    #: Parent blocks re-evaluated by the block-level path.
    blocks_spliced: int = 0
    #: Wall-clock seconds spent in the copy-on-spine splice itself
    #: (document and state rebuild), excluding query work — the "splice"
    #: phase of the serve-bench profile.
    splice_seconds: float = 0.0


def dirty_node_ids(
    node_read_sets: dict[int, tuple[str, ...]],
    changed_tables: Iterable[str],
) -> list[int]:
    """Schema nodes whose tag query reads a changed table, ascending.

    ``node_read_sets`` is the compiled plan's per-node map
    (:attr:`repro.serving.plan_cache.CompiledPlan.node_read_sets`);
    nodes absent from it (literal output elements) are never dirty.
    """
    changed = set(changed_tables)
    return sorted(
        node_id
        for node_id, tables in node_read_sets.items()
        if changed.intersection(tables)
    )


@dataclass
class _RowSplice:
    """Prepared outcome of one frontier node's row-level maintenance."""

    #: id(parent element) -> merged child list for this node's group
    #: (kept old elements interleaved with fresh ones, in old order).
    replace_entries: dict[int, list] = field(default_factory=dict)
    #: The node's full (element, env) instance list for the new state.
    instances: list[tuple[Any, dict[str, Row]]] = field(default_factory=list)
    #: Fresh elements built (== changed rows that survived in the view).
    fresh_count: int = 0


@dataclass
class _BlockSplice:
    """Prepared outcome of one frontier node's block-level maintenance."""

    #: id(affected parent element) -> fresh child list for this node's
    #: group (the whole block is rebuilt; unaffected parents are absent).
    replace_entries: dict[int, list] = field(default_factory=dict)
    #: Merged (element, env) instance lists for the frontier node *and*
    #: every descendant: kept blocks share the old pairs, affected
    #: blocks carry the fresh ones.
    instances: dict[int, list[tuple[Any, dict[str, Row]]]] = field(
        default_factory=dict
    )
    #: Fresh elements built across the re-evaluated subtrees.
    fresh_count: int = 0
    #: Number of parent blocks re-evaluated.
    blocks: int = 0


class DeltaEvaluator:
    """Re-evaluates only the dirty schema nodes of a stale cached result.

    ``db`` and ``stats`` are the usual injected connection/stats pair
    (see :class:`~repro.schema_tree.evaluator.ViewEvaluator`); fresh
    elements created during the splice land in ``stats`` so traces
    account delta work like any other materialization.
    """

    def __init__(self, db: Database, stats: Optional[MaterializeStats] = None):
        self.db = db
        self.stats = stats if stats is not None else MaterializeStats()

    # -- public entry point ---------------------------------------------------

    def evaluate(
        self,
        view: SchemaTreeQuery,
        state: MaterializedState,
        node_read_sets: dict[int, tuple[str, ...]],
        changed_tables: Iterable[str],
        changes: Optional[Mapping[str, TableChange]] = None,
    ) -> DeltaResult:
        """Refresh ``state`` for ``changed_tables``; returns the splice.

        ``changes`` is optional row-level detail from
        :meth:`~repro.maintenance.tracker.WriteTracker.changes_since`;
        when present it refines dirtiness to column granularity (a node
        whose query cannot see any changed column is not dirty) and
        lets traceable frontier nodes re-fetch only the changed rows
        (key pushdown) instead of re-running the whole node. Both
        refinements degrade — never break — when the detail is absent
        or the shape is untraceable.

        Raises :class:`DeltaUnsupported` when the delta path cannot
        guarantee byte-identical output (the caller should recompute in
        full); never mutates ``state`` or its document either way.
        """
        bulk = BulkViewEvaluator(self.db, self.stats, capture_instances={})
        plans = bulk.plan_view(view)
        nodes_by_id = {n.id: n for n in view.nodes(include_root=False)}
        dirty = dirty_node_ids(node_read_sets, changed_tables)
        if not dirty:
            raise DeltaUnsupported("no schema node reads the changed tables")
        if changes is not None:
            dirty = [
                node_id
                for node_id in dirty
                if self._node_affected(
                    nodes_by_id[node_id], node_read_sets[node_id],
                    set(changed_tables), changes,
                )
            ]
            if not dirty:
                # Every dirty candidate was refined away at column
                # granularity: the document is untouched, only the
                # version stamp moves forward.
                return DeltaResult(
                    document=state.document,
                    state=state,
                    dirty_nodes=(),
                    frontier_nodes=(),
                    elements_refreshed=0,
                    rows_refetched=0,
                )
        dirty_set = set(dirty)
        frontier = [
            node_id
            for node_id in dirty
            if not any(
                a.id in dirty_set
                for a in nodes_by_id[node_id].path_from_root()[1:-1]
            )
        ]
        for node_id in frontier:
            self._check_spliceable(nodes_by_id[node_id], plans)

        rows_before = self.db.stats.rows_fetched
        fresh: dict[int, list[_Instance]] = {}
        subtree_ids: set[int] = set()
        # Frontier node id -> full merged instance list (row-level path).
        row_instances: dict[int, list[tuple[Any, dict[str, Row]]]] = {}
        row_frontier: list[int] = []
        rows_spliced = 0
        block_frontier: list[int] = []
        blocks_spliced = 0
        # id(old parent element) -> {frontier node id: fresh child elements}
        replace_at: dict[int, dict[int, list]] = {}
        elements_refreshed = 0
        for node_id in frontier:
            node = nodes_by_id[node_id]
            parent_node = node.parent
            assert parent_node is not None
            retained = state.instances.get(parent_node.id, [])
            row = self._try_row_splice(
                bulk, plans, node, state, retained, changes, dirty_set
            )
            if row is not None:
                for parent_key, group in row.replace_entries.items():
                    replace_at.setdefault(parent_key, {})[node_id] = group
                row_instances[node_id] = row.instances
                row_frontier.append(node_id)
                rows_spliced += row.fresh_count
                elements_refreshed += row.fresh_count
                continue
            block = self._try_block_splice(
                bulk, plans, node, state, retained, changes
            )
            if block is not None:
                for parent_key, group in block.replace_entries.items():
                    replace_at.setdefault(parent_key, {})[node_id] = group
                row_instances.update(block.instances)
                block_frontier.append(node_id)
                blocks_spliced += block.blocks
                elements_refreshed += block.fresh_count
                continue
            shadows = [
                _Instance(Element(node.tag), env, self._context_key(bulk, node, env))
                for _element, env in retained
            ]
            local = self._evaluate_subtree(bulk, plans, node, shadows)
            for sub_id, created in local.items():
                subtree_ids.add(sub_id)
                elements_refreshed += len(created)
                fresh.setdefault(sub_id, []).extend(created)
            for (old_element, _env), shadow in zip(retained, shadows):
                replace_at.setdefault(id(old_element), {})[node_id] = (
                    shadow.element.children
                )

        splice_started = time.perf_counter()
        spine_ids = self._spine_ids(nodes_by_id, frontier)
        elem_node = self._element_owners(nodes_by_id, state, spine_ids)
        copy_ids = self._copy_targets(
            state.document, replace_at, spine_ids, elem_node
        )
        new_document = Document()
        copies: dict[int, Element] = {}
        self._rebuild_children(
            view.root, state.document, new_document,
            replace_at, spine_ids, elem_node, copies, copy_ids,
        )
        new_state = self._rebuild_state(
            view, state, new_document, subtree_ids, spine_ids, fresh, copies,
            row_instances,
        )
        return DeltaResult(
            document=new_document,
            state=new_state,
            dirty_nodes=tuple(dirty),
            frontier_nodes=tuple(frontier),
            elements_refreshed=elements_refreshed,
            rows_refetched=self.db.stats.rows_fetched - rows_before,
            row_frontier_nodes=tuple(row_frontier),
            rows_spliced=rows_spliced,
            block_frontier_nodes=tuple(block_frontier),
            blocks_spliced=blocks_spliced,
            splice_seconds=time.perf_counter() - splice_started,
        )

    # -- column-level dirty refinement ----------------------------------------

    def _node_affected(
        self,
        node: SchemaNode,
        reads: tuple[str, ...],
        changed: set[str],
        changes: Mapping[str, TableChange],
    ) -> bool:
        """Whether any changed table's changed *columns* reach this node.

        A table whose change detail names its updated columns only
        dirties nodes whose tag query can see one of them; unknown
        detail (``columns is None`` or the table missing from
        ``changes``) keeps the conservative table-level answer.
        """
        if node.tag_query is None:
            return False
        for table in reads:
            if table not in changed:
                continue
            change = changes.get(table)
            if change is None or change.columns is None:
                return True
            referenced = referenced_columns_of_table(
                node.tag_query, table, self.db.catalog
            )
            if referenced & change.columns:
                return True
        return False

    # -- row-level key pushdown -----------------------------------------------

    def _try_row_splice(
        self,
        bulk: BulkViewEvaluator,
        plans: dict[int, _NodePlan],
        node: SchemaNode,
        state: MaterializedState,
        retained: list[tuple[Any, dict[str, Row]]],
        changes: Optional[Mapping[str, TableChange]],
        dirty_set: set[int],
    ) -> Optional[_RowSplice]:
        """Attempt row-granular maintenance of one frontier node.

        Returns ``None`` whenever any precondition fails — the caller
        falls back to node-level re-evaluation, which is always sound.
        The preconditions, in order:

        * row-level change detail exists: the node is dirty via exactly
          one table, with known changed keys *and* columns;
        * no descendant of the node is itself dirty (kept siblings'
          subtrees are shared verbatim, so they must not need work);
        * the node has a reliable bulk plan, no aggregation/DISTINCT
          (those fold many base rows into one element), a binding
          variable, and the table's single-column primary key among its
          output columns;
        * the changed columns are not *load-bearing* in the decorrelated
          query (they appear in no WHERE/GROUP BY/HAVING/ORDER BY or
          subquery) — membership, order and grouping of the result are
          therefore unchanged — and they feed no output column a
          descendant consumes (via ``$bv.column`` parameters or
          attribute surfacing), so kept subtrees under replaced
          elements stay byte-identical;
        * the key-restricted probe returns exactly the keys the old
          instances hold, per parent block (no rows moved in, out, or
          across parents).

        When all hold, each changed row's element is rebuilt in place
        from its freshly fetched row and adopts the old element's
        children; everything else — sibling elements, their subtrees,
        unaffected parent blocks — is shared with the old document.
        """
        if changes is None or node.bv is None:
            return None
        plan = plans.get(node.id)
        if (
            plan is None
            or plan.kind != "bulk"
            or plan.query is None
            or not plan.reliable
            or plan.grouped_aggregate
            or plan.distinct
            or plan.empty_row is not None
        ):
            return None
        if any(sub.id in dirty_set for sub in node.walk() if sub is not node):
            return None
        assert node.tag_query is not None
        changed_here = [
            table
            for table in referenced_tables(node.tag_query)
            if table in changes
        ]
        if len(changed_here) != 1:
            return None
        table = changed_here[0]
        change = changes[table]
        if (
            change.keys is None
            or change.columns is None
            or not change.keys
            or len(change.keys) > ROW_PUSHDOWN_MAX_KEYS
        ):
            return None
        catalog = self.db.catalog
        key_column = catalog.table(table).primary_key
        if key_column is None or key_column not in plan.own_columns:
            return None
        if change.columns & load_bearing_columns(plan.query, table, catalog):
            return None
        needed = self._descendant_dependent_columns(node)
        if needed is None:
            return None
        touched = self._outputs_touched(node, table, change.columns)
        if touched is None or touched & needed:
            return None

        probe = plan.query.clone()
        try:
            push_key_predicate(probe, table, key_column, change.keys)
        except SQLTransformError:
            return None
        fresh_rows = self.db.run_query(probe, env=None)
        fresh_by_block: dict[tuple, dict[Any, Row]] = {}
        for row in fresh_rows:
            try:
                block = tuple(row[c] for c in plan.key_columns)
            except KeyError:
                return None
            bucket = fresh_by_block.setdefault(block, {})
            row_key = row.get(key_column)
            if row_key in bucket:
                return None  # duplicate key within one block
            bucket[row_key] = row

        env_of = {
            id(element): env
            for element, env in state.instances.get(node.id, [])
        }
        keys = change.keys
        splice = _RowSplice()
        consumed_blocks: set[tuple] = set()
        for parent_element, parent_env in retained:
            block_key = self._context_key(bulk, node, parent_env)
            consumed_blocks.add(block_key)
            group_old = [
                child
                for child in parent_element.children
                if id(child) in env_of
            ]
            affected: list[tuple[Any, dict[str, Row]]] = []
            for child in group_old:
                env = env_of[id(child)]
                own_row = env.get(node.bv)
                if own_row is None or key_column not in own_row:
                    return None
                if own_row[key_column] in keys:
                    affected.append((child, env))
            block_fresh = fresh_by_block.get(block_key, {})
            if {env[node.bv][key_column] for _c, env in affected} != set(
                block_fresh
            ):
                return None  # membership moved despite the static checks
            replaced: dict[int, _Instance] = {}
            if affected:
                shadow = _Instance(Element(node.tag), parent_env, block_key)
                ordered = [
                    block_fresh[env[node.bv][key_column]]
                    for _c, env in affected
                ]
                created = bulk._attach_rows(plan, shadow, ordered)
                for (old_element, _env), instance in zip(affected, created):
                    instance.element.extend(old_element.children)
                    replaced[id(old_element)] = instance
                splice.fresh_count += len(created)
            merged_group: list = []
            for child in group_old:
                instance = replaced.get(id(child))
                if instance is not None:
                    merged_group.append(instance.element)
                    splice.instances.append((instance.element, instance.env))
                else:
                    merged_group.append(child)
                    splice.instances.append((child, env_of[id(child)]))
            if replaced:
                splice.replace_entries[id(parent_element)] = merged_group
        if any(
            block not in consumed_blocks
            for block, bucket in fresh_by_block.items()
            if bucket
        ):
            # The probe found rows whose context key matches no retained
            # parent: the old document has no home for them.
            return None
        return splice

    def _descendant_dependent_columns(
        self, node: SchemaNode
    ) -> Optional[set[str]]:
        """Output columns of ``node`` that its descendants consume.

        Collects every ``$bv.column`` parameter reference in descendant
        tag queries plus the columns descendants surface as attributes
        from this binding. Returns ``None`` when a descendant surfaces
        the whole row (``attr_columns`` unset): then any column change
        could alter descendant bytes.
        """
        needed: set[str] = set()
        for sub in node.walk():
            if sub is node:
                continue
            if sub.tag_query is not None:
                for param in collect_params(sub.tag_query):
                    if param.var == node.bv:
                        needed.add(param.column)
            if sub.attr_source_bv == node.bv:
                if sub.attr_columns is None:
                    return None
                needed.update(sub.attr_columns)
                needed.update(sub.data_attributes.values())
        return needed

    def _outputs_touched(
        self, node: SchemaNode, table: str, changed_columns: frozenset
    ) -> Optional[set[str]]:
        """Output columns of the node's tag query fed by changed columns.

        Resolves the tag query's select list against the changed table:
        a star or plain column reference maps one-to-one, an aliased
        expression counts as touched when any changed column appears in
        it. ``None`` (indeterminable) declines the row path.
        """
        from repro.sql.ast import BinOp, FuncCall, TableRef, UnaryOp

        assert node.tag_query is not None
        query = node.tag_query.clone()
        catalog = self.db.catalog
        qualify_unqualified_columns(query, catalog)
        bindings = {
            fi.binding_name
            for fi in query.from_items
            if isinstance(fi, TableRef) and fi.name == table
        }

        def refs(expr) -> Optional[set[str]]:
            if isinstance(expr, ColumnRef):
                return {expr.column} if expr.table in bindings else set()
            if isinstance(expr, BinOp):
                left, right = refs(expr.left), refs(expr.right)
                if left is None or right is None:
                    return None
                return left | right
            if isinstance(expr, UnaryOp):
                return refs(expr.operand)
            if isinstance(expr, FuncCall):
                out: set[str] = set()
                for arg in expr.args:
                    sub = refs(arg)
                    if sub is None:
                        return None
                    out |= sub
                return out
            if isinstance(expr, (Star,)):
                return None  # handled at the item level
            # Subqueries and anything exotic: indeterminable.
            from repro.sql.ast import LiteralValue, ParamRef

            if isinstance(expr, (LiteralValue, ParamRef)):
                return set()
            return None

        touched: set[str] = set()
        for item in query.items:
            if isinstance(item.expr, Star):
                star = item.expr
                if star.table is None or star.table in bindings:
                    # The star exposes the table's columns under their
                    # own names; only the changed ones are touched.
                    touched.update(
                        set(catalog.columns_of(table)) & changed_columns
                    )
                continue
            item_refs = refs(item.expr)
            if item_refs is None:
                return None
            if item_refs & changed_columns:
                name = item.output_name()
                if name is None:
                    return None
                touched.add(name)
        return touched

    # -- block-level key pushdown ---------------------------------------------

    def _try_block_splice(
        self,
        bulk: BulkViewEvaluator,
        plans: dict[int, _NodePlan],
        node: SchemaNode,
        state: MaterializedState,
        retained: list[tuple[Any, dict[str, Row]]],
        changes: Optional[Mapping[str, TableChange]],
    ) -> Optional[_BlockSplice]:
        """Attempt block-granular maintenance of one frontier subtree.

        The middle rung between row pushdown and node-level
        re-evaluation, for frontiers the row path must decline (grouped
        aggregates, dirty descendants, changes to load-bearing
        columns): re-evaluate the *whole subtree*, but only under the
        parent blocks that contain changed rows, and share every other
        block's subtree verbatim. Returns ``None`` whenever any
        precondition fails — node-level re-evaluation is always sound.
        The preconditions, in order:

        * row-level change detail exists: exactly one changed table is
          read anywhere in the subtree, with known changed keys *and*
          columns, and the table has a single-column primary key;
        * the frontier node has a bulk plan with a nonempty block key
          (its query-bearing ancestors' key columns);
        * the changed columns are not *membership-bearing* in any
          subtree query reading the table
          (:func:`repro.sql.analysis.membership_bearing_columns`): they
          may regroup or reorder rows within a block, but cannot move a
          row between blocks, in or out of the result, or change other
          rows — so the blocks containing changed rows are exactly the
          blocks whose bytes can differ;
        * the key-restricted probes find every changed key (a missing
          key could be a deleted row whose old block they cannot name),
          and every affected block has a retained parent instance.

        When all hold, the subtree queries are cloned with the affected
        blocks' key values pushed into WHERE
        (:func:`repro.sql.transform.restrict_output_in` — on a grouped
        query the predicate filters whole groups, leaving surviving
        aggregates exact) and re-executed under shadow parents for the
        affected blocks only.
        """
        if changes is None:
            return None
        plan = plans.get(node.id)
        if plan is None or plan.kind != "bulk" or plan.query is None:
            return None
        block_names = list(plan.key_columns)
        if not block_names:
            return None
        block_len = len(block_names)
        subtree = list(node.walk())
        subtree_tables: set[str] = set()
        for sub in subtree:
            if sub.tag_query is not None:
                subtree_tables.update(referenced_tables(sub.tag_query))
        changed_here = sorted(t for t in subtree_tables if t in changes)
        if len(changed_here) != 1:
            return None
        table = changed_here[0]
        change = changes[table]
        if (
            change.keys is None
            or change.columns is None
            or not change.keys
            or len(change.keys) > ROW_PUSHDOWN_MAX_KEYS
        ):
            return None
        catalog = self.db.catalog
        key_column = catalog.table(table).primary_key
        if key_column is None:
            return None
        for sub in subtree:
            query = plans[sub.id].query or sub.tag_query
            if query is None or table not in referenced_tables(query):
                continue
            if change.columns & membership_bearing_columns(
                query, table, catalog
            ):
                return None

        # Probe every decorrelated reader of the table for the blocks
        # its changed rows land in. Readers without a decorrelated query
        # (correlated fallbacks) cannot name blocks, so they bail.
        affected: set[tuple] = set()
        found: set = set()
        for sub in subtree:
            sub_plan = plans[sub.id]
            if sub_plan.query is None:
                if sub.tag_query is not None and table in referenced_tables(
                    sub.tag_query
                ):
                    return None
                continue
            if table not in referenced_tables(sub_plan.query):
                continue
            sub_names = list(sub_plan.key_columns[:block_len])
            if len(sub_names) != block_len:
                return None
            probe = sub_plan.query.clone()
            try:
                binding = push_key_predicate(
                    probe, table, key_column, change.keys
                )
            except SQLTransformError:
                return None
            items = [
                SelectItem(ColumnRef(key_column, table=binding), "__delta_key")
            ]
            for name in sub_names:
                ref = self._output_column_ref(sub_plan.query, name)
                if ref is None:
                    return None
                items.append(
                    SelectItem(
                        ColumnRef(ref.column, table=ref.table),
                        None if ref.column == name else name,
                    )
                )
            probe.items = items
            probe.group_by = []
            probe.having = None
            probe.order_by = []
            probe.distinct = False
            rows = self.db.run_query(probe, env=None)
            for row in rows:
                found.add(row["__delta_key"])
                affected.add(tuple(row[name] for name in sub_names))
        if found != set(change.keys) or not affected:
            return None

        parent_blocks = [
            self._context_key(bulk, node, parent_env)
            for _parent_element, parent_env in retained
        ]
        if not affected.issubset(parent_blocks):
            return None  # a changed row's block has no retained parent

        # Clone the subtree's bulk plans with the affected blocks pushed
        # into WHERE. A per-column IN conjunction is a superset of the
        # block set; extra cross-product rows match no shadow parent and
        # drop the node to the correlated per-parent fallback
        # (_group_rows raises _BulkUnsupported), which is still exact.
        values_by_pos = [
            {block[i] for block in affected} for i in range(block_len)
        ]
        restricted: dict[int, _NodePlan] = {}
        for sub in subtree:
            sub_plan = plans[sub.id]
            if sub_plan.kind != "bulk" or sub_plan.query is None:
                restricted[sub.id] = sub_plan
                continue
            sub_names = list(sub_plan.key_columns[:block_len])
            clone = sub_plan.query.clone()
            ok = len(sub_names) == block_len
            if ok:
                try:
                    for name, values in zip(sub_names, values_by_pos):
                        restrict_output_in(clone, name, values)
                except SQLTransformError:
                    ok = False
            if not ok and sub is node:
                return None  # an unrestricted frontier defeats the point
            restricted[sub.id] = (
                replace_dataclass(sub_plan, query=clone) if ok else sub_plan
            )

        shadows = [
            _Instance(Element(node.tag), parent_env, block)
            for (_parent_element, parent_env), block in zip(
                retained, parent_blocks
            )
            if block in affected
        ]
        local = self._evaluate_subtree(bulk, restricted, node, shadows)

        splice = _BlockSplice(blocks=len(affected))
        splice.fresh_count = sum(len(created) for created in local.values())
        env_of = {
            id(element): env
            for element, env in state.instances.get(node.id, [])
        }
        fresh_env = {
            id(inst.element): inst.env for inst in local.get(node.id, [])
        }
        merged_node: list[tuple[Any, dict[str, Row]]] = []
        shadow_iter = iter(shadows)
        for (parent_element, _parent_env), block in zip(
            retained, parent_blocks
        ):
            if block in affected:
                shadow = next(shadow_iter)
                group = list(shadow.element.children)
                for child in group:
                    merged_node.append((child, fresh_env[id(child)]))
                splice.replace_entries[id(parent_element)] = group
            else:
                for child in parent_element.children:
                    env = env_of.get(id(child))
                    if env is not None:
                        merged_node.append((child, env))
        splice.instances[node.id] = merged_node

        for sub in subtree:
            if sub is node:
                continue
            fresh_by_block: dict[tuple, list] = {}
            for inst in local.get(sub.id, []):
                fresh_by_block.setdefault(tuple(inst.key[:block_len]), []).append(
                    (inst.element, inst.env)
                )
            merged: list[tuple[Any, dict[str, Row]]] = []
            emitted: set[tuple] = set()
            for element, env in state.instances.get(sub.id, []):
                try:
                    block = self._context_key(bulk, sub, env)[:block_len]
                except DeltaUnsupported:
                    return None  # node-level handles opaque descendants
                if block in affected:
                    if block not in emitted:
                        emitted.add(block)
                        merged.extend(fresh_by_block.get(block, []))
                    continue
                merged.append((element, env))
            for block, pairs in fresh_by_block.items():
                if block not in emitted:
                    merged.extend(pairs)
            splice.instances[sub.id] = merged
        return splice

    def _output_column_ref(
        self, query, output_name: str
    ) -> Optional[ColumnRef]:
        """The bare column reference behind a named output, if it is one."""
        for item in query.items:
            if item.output_name() == output_name:
                return item.expr if isinstance(item.expr, ColumnRef) else None
        return None

    # -- frontier validation and re-evaluation --------------------------------

    def _check_spliceable(
        self, node: SchemaNode, plans: dict[int, _NodePlan]
    ) -> None:
        """Reject frontiers whose ancestor context keys are untrustworthy."""
        for ancestor in node.path_from_root()[1:-1]:
            if ancestor.tag_query is None:
                continue
            plan = plans.get(ancestor.id)
            if plan is None or not plan.reliable or ancestor.bv is None:
                raise DeltaUnsupported(
                    f"ancestor <{ancestor.tag}> of dirty node {node.id} has "
                    "no reliable context key (correlated or unstable shape)"
                )

    def _context_key(
        self, bulk: BulkViewEvaluator, node: SchemaNode, env: dict[str, Row]
    ) -> tuple:
        """Rebuild the bulk context key a retained parent instance carries.

        Concatenates the key columns of every query-bearing strict
        ancestor of ``node`` in root-to-leaf order — exactly the order
        the decorrelator exposes them in the bulk rows, so
        ``_group_rows`` deals each shadow parent its share.
        """
        key: list = []
        for ancestor in node.path_from_root()[1:-1]:
            if ancestor.tag_query is None:
                continue
            row = env.get(ancestor.bv) if ancestor.bv is not None else None
            if row is None:
                raise DeltaUnsupported(
                    f"captured environment lacks binding ${ancestor.bv} "
                    f"for ancestor <{ancestor.tag}>"
                )
            for column in bulk.node_key_columns(ancestor):
                if column not in row:
                    raise DeltaUnsupported(
                        f"captured ${ancestor.bv} row lacks key column "
                        f"{column!r}"
                    )
                key.append(row[column])
        return tuple(key)

    def _evaluate_subtree(
        self,
        bulk: BulkViewEvaluator,
        plans: dict[int, _NodePlan],
        node: SchemaNode,
        shadows: list[_Instance],
    ) -> dict[int, list[_Instance]]:
        """Re-execute one frontier subtree under its shadow parents."""
        local: dict[int, list[_Instance]] = {}
        for sub in node.walk():
            if sub is node:
                parents = shadows
            else:
                assert sub.parent is not None
                parents = local[sub.parent.id]
            local[sub.id] = bulk.evaluate_node(plans[sub.id], parents)
        return local

    # -- persistent splice ----------------------------------------------------

    def _spine_ids(
        self, nodes_by_id: dict[int, SchemaNode], frontier: list[int]
    ) -> set[int]:
        """Schema ids on a root-to-frontier path (the copied spine)."""
        spine: set[int] = set()
        for node_id in frontier:
            for ancestor in nodes_by_id[node_id].path_from_root()[:-1]:
                spine.add(ancestor.id)
        return spine

    def _element_owners(
        self,
        nodes_by_id: dict[int, SchemaNode],
        state: MaterializedState,
        spine_ids: set[int],
    ) -> dict[int, int]:
        """Map ``id(element) -> schema node id`` for spine-node children.

        Only children of spine elements need owners: the rebuild groups
        each spine element's child list by schema node to know where
        the fresh subtrees go and which groups to share.
        """
        owners: dict[int, int] = {}
        for node in nodes_by_id.values():
            if node.parent is None or node.parent.id not in spine_ids:
                continue
            for element, _env in state.instances.get(node.id, []):
                owners[id(element)] = node.id
        return owners

    def _copy_targets(
        self,
        document,
        replace_at: dict[int, dict[int, list]],
        spine_ids: set[int],
        elem_node: dict[int, int],
    ) -> set[int]:
        """Ids of the spine *elements* that must be shallow-copied.

        The spine is a set of schema nodes, but only the instances on a
        path from the root to an element receiving replacement children
        actually change — a sibling instance of the same schema node
        with no replacement anywhere beneath it can be shared verbatim.
        Sharing it matters beyond saving the copy: downstream consumers
        key on element identity (the fragment byte cache anchors
        serialized spans by ``id(element)``), so an untouched instance
        that keeps its object across a splice keeps its cached bytes
        too. Node-level re-evaluation puts every parent instance in
        ``replace_at`` and degenerates to the old copy-everything
        behaviour; the row-level path lists only the parents of changed
        rows, so all other instances stay shared.
        """
        targets: set[int] = set()

        def mark(element) -> bool:
            needed = id(element) in replace_at
            for child in element.children:
                owner = elem_node.get(id(child))
                if owner is not None and owner in spine_ids and mark(child):
                    targets.add(id(child))
                    needed = True
            return needed

        mark(document)
        return targets

    def _rebuild_children(
        self,
        schema_node: SchemaNode,
        old_parent,
        new_parent,
        replace_at: dict[int, dict[int, list]],
        spine_ids: set[int],
        elem_node: dict[int, int],
        copies: dict[int, Element],
        copy_ids: set[int],
    ) -> None:
        """Copy-on-spine rebuild of one spine element's child list.

        Fresh subtrees are adopted (reparented — they are throwaway
        collector children); spine children on a path to a replacement
        (``copy_ids``, see :meth:`_copy_targets`) are shallow-copied
        and recursed into; everything else — including spine-node
        instances with no replacement beneath them — is *shared* with
        the old document, parent pointers untouched, so the old tree
        stays fully intact.
        """
        groups: dict[int, list] = {}
        for child in old_parent.children:
            owner = elem_node.get(id(child))
            if owner is None:
                raise DeltaUnsupported(
                    "cached document has a child the captured state does "
                    "not account for"
                )
            groups.setdefault(owner, []).append(child)
        replacements = replace_at.get(id(old_parent), {})
        children: list = []
        for child_node in schema_node.children:
            if child_node.id in replacements:
                for fresh_element in replacements[child_node.id]:
                    fresh_element.parent = new_parent
                    children.append(fresh_element)
            elif child_node.id in spine_ids:
                for old_child in groups.get(child_node.id, []):
                    if id(old_child) not in copy_ids:
                        children.append(old_child)
                        continue
                    copy = old_child.shallow_copy()
                    copy.parent = new_parent
                    copies[id(old_child)] = copy
                    children.append(copy)
                    self._rebuild_children(
                        child_node, old_child, copy,
                        replace_at, spine_ids, elem_node, copies, copy_ids,
                    )
            else:
                children.extend(groups.get(child_node.id, []))
        new_parent.children = children

    def _rebuild_state(
        self,
        view: SchemaTreeQuery,
        state: MaterializedState,
        new_document: Document,
        subtree_ids: set[int],
        spine_ids: set[int],
        fresh: dict[int, list[_Instance]],
        copies: dict[int, Element],
        row_instances: Optional[dict[int, list[tuple[Any, dict[str, Row]]]]] = None,
    ) -> MaterializedState:
        """Captured state for the spliced document.

        Copied spine instances point at their copies (shared ones —
        instances with no replacement beneath them — keep their old
        elements), refreshed subtrees at the fresh instances,
        row-spliced nodes at their merged lists (kept elements
        interleaved with rebuilt ones), and untouched nodes share the
        old lists (which are never mutated).
        """
        row_instances = row_instances or {}
        new_instances: dict[int, list[tuple[Any, dict[str, Row]]]] = {
            view.root.id: [(new_document, {})]
        }
        for node_id, old_list in state.instances.items():
            if (
                node_id == view.root.id
                or node_id in subtree_ids
                or node_id in row_instances
            ):
                continue
            if node_id in spine_ids:
                new_instances[node_id] = [
                    (copies.get(id(element), element), env)
                    for element, env in old_list
                ]
            else:
                new_instances[node_id] = old_list
        for node_id in subtree_ids:
            new_instances[node_id] = [
                (inst.element, inst.env) for inst in fresh.get(node_id, [])
            ]
        for node_id, merged in row_instances.items():
            new_instances[node_id] = merged
        return MaterializedState(document=new_document, instances=new_instances)

"""Change capture: monotonic per-table versions for base-table writes.

A :class:`WriteTracker` is the single source of truth for "has table T
changed since this response was computed?". Every recorded write bumps
that table's version by one; cached results are stamped with the version
vector of their read set and compared against the live vector at serve
time (:mod:`repro.maintenance.result_cache`).

Two capture modes, freely combined per database:

* **explicit** — callers (or :meth:`Database.insert_rows
  <repro.relational.engine.Database.insert_rows>` on a tracked engine)
  call :meth:`WriteTracker.record_write` with the table name;
* **auto** — :meth:`WriteTracker.attach` asks the engine's *driver* to
  install write-capture hooks on a writable connection so any
  INSERT/UPDATE/DELETE executed through it is captured without caller
  cooperation. For sqlite that is the authorizer + trace-callback pair
  (see :meth:`repro.relational.driver.SqliteDriver.install_change_capture`
  for the two-hook rationale); drivers without write hooks (DuckDB)
  raise :class:`~repro.errors.DriverCapabilityError` — auto capture
  **degrades loudly, never silently**, because silently capturing
  nothing would serve stale bytes under the strict policy. Engines on
  such backends record through the explicit path instead.

Auto capture is deliberately conservative: a statement that prepares
but fails mid-execution still bumps (over-invalidation is safe; missed
writes are not). The one known sqlite gap is an *indirect* write
re-executed from the statement cache (the authorizer does not re-fire
and the text names only the direct table) — this engine's SQL never
uses triggers, and the direct table still bumps every time.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional

# Re-exported for compatibility: the DML-target parser moved into the
# driver layer with the rest of the capture machinery.
from repro.relational.driver import _write_target  # noqa: F401


@dataclass(frozen=True)
class TableChange:
    """Everything known about a table's writes since a stamped version.

    ``keys`` is the union of changed primary-key values, or ``None``
    when any write event in the range did not report its keys (auto
    capture, bulk loads) or the bounded key log no longer covers the
    range — "unknown" always widens, never narrows. ``columns`` is the
    union of updated column names under the same convention: ``None``
    means any column may have changed. UPDATE statements that rewrite a
    primary key must report both the old and new key values (or pass
    ``keys=None``); the row-level delta path matches old instances and
    fresh rows by these values.
    """

    events: int
    keys: Optional[frozenset]
    columns: Optional[frozenset]

    @property
    def traceable(self) -> bool:
        """True when the change is fully described by row keys."""
        return self.keys is not None


class WriteTracker:
    """Thread-safe monotonic version clock over base tables.

    ``version(table)`` starts at 0 and increases by one per recorded
    write event; ``clock()`` is the sum over all tables (a global
    version). Subscribers registered with :meth:`subscribe` are called
    with ``(table, new_version)`` after each bump — the serving layer
    uses this to eagerly invalidate caches.

    Beyond the version clock, the tracker keeps a bounded per-table log
    of *what* each write touched: the changed rows' primary-key values
    and the updated columns, when the writer reports them. The log is
    what lets the delta path re-fetch only changed rows
    (:meth:`changes_since`); key-less events simply degrade that query
    back to node granularity, never to wrong answers.
    """

    def __init__(self, key_log_limit: int = 1024) -> None:
        self._versions: dict[str, int] = {}
        self._subscribers: list[Callable[[str, int], None]] = []
        self._lock = threading.Lock()
        self.total_writes = 0
        self.rows_written = 0
        self._key_log_limit = key_log_limit
        #: table -> deque of (version, keys|None, columns|None, ts),
        #: oldest first, trimmed to ``key_log_limit`` events per table.
        #: ``ts`` is the monotonic arrival time — replica apply loops
        #: use it to hold events back for an injectable delay.
        self._key_log: dict[str, deque] = {}

    # -- recording -----------------------------------------------------------

    def record_write(
        self,
        table: str,
        rows: int = 1,
        keys: Optional[Iterable[Any]] = None,
        columns: Optional[Iterable[str]] = None,
    ) -> int:
        """Record one write event against ``table``; returns its new version.

        ``rows`` feeds the ``rows_written`` counter only — a bulk insert
        of 500 rows is one version bump, because one event is enough to
        make every dependent cached result stale. ``keys`` (changed
        primary-key values) and ``columns`` (updated column names) are
        optional row-level detail; omitting either marks the event
        untraceable at that granularity.
        """
        with self._lock:
            version = self._versions.get(table, 0) + 1
            self._versions[table] = version
            self.total_writes += 1
            self.rows_written += max(0, rows)
            log = self._key_log.get(table)
            if log is None:
                log = self._key_log[table] = deque(maxlen=self._key_log_limit)
            log.append(
                (
                    version,
                    None if keys is None else frozenset(keys),
                    None if columns is None else frozenset(columns),
                    time.monotonic(),
                )
            )
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(table, version)
        return version

    def subscribe(self, callback: Callable[[str, int], None]) -> None:
        """Register ``callback(table, new_version)`` to run after each bump."""
        with self._lock:
            self._subscribers.append(callback)

    # -- reading -------------------------------------------------------------

    def version(self, table: str) -> int:
        """Current version of ``table`` (0 if never written)."""
        with self._lock:
            return self._versions.get(table, 0)

    def versions(self, tables: Iterable[str]) -> dict[str, int]:
        """One consistent version vector over ``tables``."""
        with self._lock:
            return {table: self._versions.get(table, 0) for table in tables}

    def snapshot(self) -> dict[str, int]:
        """Every table that has ever been written, with its version."""
        with self._lock:
            return dict(self._versions)

    def clock(self) -> int:
        """Global version: total write events across all tables."""
        with self._lock:
            return self.total_writes

    def changes_since(
        self, stamped: Mapping[str, int], tables: Iterable[str]
    ) -> dict[str, TableChange]:
        """Per-table change detail since the ``stamped`` version vector.

        Only tables whose live version is ahead of the stamp appear in
        the result. A table's :class:`TableChange` carries the union of
        changed keys/columns over the whole version range when *every*
        event in the range reported them and the bounded log still
        covers the range; otherwise ``keys``/``columns`` are ``None``
        (untraceable — the caller must treat any row/column as possibly
        changed).
        """
        changes: dict[str, TableChange] = {}
        with self._lock:
            for table in tables:
                current = self._versions.get(table, 0)
                since = stamped.get(table, 0)
                if current <= since:
                    continue
                events = [
                    event
                    for event in self._key_log.get(table, ())
                    if event[0] > since
                ]
                keys: Optional[frozenset] = frozenset()
                columns: Optional[frozenset] = frozenset()
                if len(events) != current - since:
                    # The log was trimmed (or predates the stamp):
                    # part of the range is unobserved.
                    keys = columns = None
                else:
                    for _, event_keys, event_columns, _ in events:
                        if keys is not None:
                            keys = None if event_keys is None else keys | event_keys
                        if columns is not None:
                            columns = (
                                None
                                if event_columns is None
                                else columns | event_columns
                            )
                changes[table] = TableChange(current - since, keys, columns)
        return changes

    def replay_events(
        self, stamped: Mapping[str, int]
    ) -> list[tuple[str, int, Optional[frozenset], Optional[frozenset], float]]:
        """Every write event newer than ``stamped``, in arrival order.

        Returns ``(table, version, keys, columns, ts)`` tuples sorted by
        arrival timestamp (ties broken by table then version) — a
        replica apply loop replays them one by one into its own tracker
        so version parity is preserved event-for-event. Versions that
        fell off the bounded key log are emitted as synthetic
        untraceable events (``keys``/``columns`` ``None``, ``ts`` of the
        oldest surviving event or 0.0) so the replayed clock never
        silently skips ahead of the observed history.
        """
        events: list[tuple[str, int, Optional[frozenset], Optional[frozenset], float]] = []
        with self._lock:
            for table, current in self._versions.items():
                since = stamped.get(table, 0)
                if current <= since:
                    continue
                logged = [
                    event
                    for event in self._key_log.get(table, ())
                    if event[0] > since
                ]
                covered = {event[0] for event in logged}
                trim_ts = logged[0][3] if logged else 0.0
                for version in range(since + 1, current + 1):
                    if version not in covered:
                        events.append((table, version, None, None, trim_ts))
                for version, keys, columns, ts in logged:
                    events.append((table, version, keys, columns, ts))
        events.sort(key=lambda event: (event[4], event[0], event[1]))
        return events

    def lag(
        self, stamped: Mapping[str, int], tables: Iterable[str]
    ) -> int:
        """Write events on ``tables`` since the ``stamped`` vector was taken."""
        with self._lock:
            return sum(
                max(0, self._versions.get(t, 0) - stamped.get(t, 0))
                for t in tables
            )

    # -- auto capture --------------------------------------------------------

    def attach(self, db) -> None:
        """Install auto change capture on a writable engine.

        ``db`` is a :class:`~repro.relational.engine.Database`; capture
        is delegated to its driver's ``install_change_capture``, which
        arranges for :meth:`record_write` to run for every DML target.
        Drivers without write hooks (``supports_auto_capture`` false)
        raise :class:`~repro.errors.DriverCapabilityError` — loudly, so
        a backend that cannot observe writes is never mistaken for one
        with no writes.
        """
        db.driver.install_change_capture(db.connection, self.record_write)

    @staticmethod
    def detach(db) -> None:
        """Remove auto-capture hooks installed by :meth:`attach`."""
        db.driver.remove_change_capture(db.connection)

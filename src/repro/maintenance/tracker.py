"""Change capture: monotonic per-table versions for base-table writes.

A :class:`WriteTracker` is the single source of truth for "has table T
changed since this response was computed?". Every recorded write bumps
that table's version by one; cached results are stamped with the version
vector of their read set and compared against the live vector at serve
time (:mod:`repro.maintenance.result_cache`).

Two capture modes, freely combined per database:

* **explicit** — callers (or :meth:`Database.insert_rows
  <repro.relational.engine.Database.insert_rows>` on a tracked engine)
  call :meth:`WriteTracker.record_write` with the table name;
* **auto** — :meth:`WriteTracker.attach` installs sqlite hooks on a
  writable connection so any INSERT/UPDATE/DELETE executed through it is
  captured without caller cooperation. The stdlib ``sqlite3`` module
  exposes no ``update_hook``, so auto mode combines two hooks:

  - the **trace callback** fires on *every* statement execution —
    including re-executions served from sqlite3's prepared-statement
    cache, which never re-prepare — and receives the (expanded) SQL
    text, from which the DML target table is parsed directly;
  - the **authorizer** fires at statement *prepare* time and names
    every written table, catching indirect writes the statement text
    does not mention (trigger bodies, cascading deletes). Those extras
    are bumped at the statement's first execution.

Auto capture is deliberately conservative: a statement that prepares
but fails mid-execution still bumps (over-invalidation is safe; missed
writes are not). The one known gap is an *indirect* write re-executed
from the statement cache (the authorizer does not re-fire and the text
names only the direct table) — this engine's SQL never uses triggers,
and the direct table still bumps every time.
"""

from __future__ import annotations

import re
import sqlite3
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional

#: Authorizer action codes that modify a table.
_WRITE_ACTIONS = (
    sqlite3.SQLITE_INSERT,
    sqlite3.SQLITE_UPDATE,
    sqlite3.SQLITE_DELETE,
)

#: Target table of a DML statement, tolerant of conflict clauses,
#: schema qualification, and quoted identifiers.
_WRITE_SQL_RE = re.compile(
    r"^\s*(?:INSERT\s+(?:OR\s+\w+\s+)?INTO|REPLACE\s+INTO"
    r"|UPDATE(?:\s+OR\s+\w+)?|DELETE\s+FROM)\s+"
    r"[\"'`\[]?(\w+(?:[\"'`\]]?\s*\.\s*[\"'`\[]?\w+)?)",
    re.IGNORECASE,
)


def _write_target(sql_text: str) -> Optional[str]:
    """The table a DML statement writes, or ``None`` for non-DML."""
    match = _WRITE_SQL_RE.match(sql_text)
    if match is None:
        return None
    name = match.group(1)
    # Strip a schema qualifier ("main"."hotel" -> hotel) and any
    # trailing quote characters the loose identifier match kept.
    name = re.split(r"[\"'`\]]?\s*\.\s*[\"'`\[]?", name)[-1]
    return name.strip("\"'`[]")


@dataclass(frozen=True)
class TableChange:
    """Everything known about a table's writes since a stamped version.

    ``keys`` is the union of changed primary-key values, or ``None``
    when any write event in the range did not report its keys (auto
    capture, bulk loads) or the bounded key log no longer covers the
    range — "unknown" always widens, never narrows. ``columns`` is the
    union of updated column names under the same convention: ``None``
    means any column may have changed. UPDATE statements that rewrite a
    primary key must report both the old and new key values (or pass
    ``keys=None``); the row-level delta path matches old instances and
    fresh rows by these values.
    """

    events: int
    keys: Optional[frozenset]
    columns: Optional[frozenset]

    @property
    def traceable(self) -> bool:
        """True when the change is fully described by row keys."""
        return self.keys is not None


class WriteTracker:
    """Thread-safe monotonic version clock over base tables.

    ``version(table)`` starts at 0 and increases by one per recorded
    write event; ``clock()`` is the sum over all tables (a global
    version). Subscribers registered with :meth:`subscribe` are called
    with ``(table, new_version)`` after each bump — the serving layer
    uses this to eagerly invalidate caches.

    Beyond the version clock, the tracker keeps a bounded per-table log
    of *what* each write touched: the changed rows' primary-key values
    and the updated columns, when the writer reports them. The log is
    what lets the delta path re-fetch only changed rows
    (:meth:`changes_since`); key-less events simply degrade that query
    back to node granularity, never to wrong answers.
    """

    def __init__(self, key_log_limit: int = 1024) -> None:
        self._versions: dict[str, int] = {}
        self._subscribers: list[Callable[[str, int], None]] = []
        self._lock = threading.Lock()
        self.total_writes = 0
        self.rows_written = 0
        self._key_log_limit = key_log_limit
        #: table -> deque of (version, keys|None, columns|None), oldest
        #: first, trimmed to ``key_log_limit`` events per table.
        self._key_log: dict[str, deque] = {}

    # -- recording -----------------------------------------------------------

    def record_write(
        self,
        table: str,
        rows: int = 1,
        keys: Optional[Iterable[Any]] = None,
        columns: Optional[Iterable[str]] = None,
    ) -> int:
        """Record one write event against ``table``; returns its new version.

        ``rows`` feeds the ``rows_written`` counter only — a bulk insert
        of 500 rows is one version bump, because one event is enough to
        make every dependent cached result stale. ``keys`` (changed
        primary-key values) and ``columns`` (updated column names) are
        optional row-level detail; omitting either marks the event
        untraceable at that granularity.
        """
        with self._lock:
            version = self._versions.get(table, 0) + 1
            self._versions[table] = version
            self.total_writes += 1
            self.rows_written += max(0, rows)
            log = self._key_log.get(table)
            if log is None:
                log = self._key_log[table] = deque(maxlen=self._key_log_limit)
            log.append(
                (
                    version,
                    None if keys is None else frozenset(keys),
                    None if columns is None else frozenset(columns),
                )
            )
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(table, version)
        return version

    def subscribe(self, callback: Callable[[str, int], None]) -> None:
        """Register ``callback(table, new_version)`` to run after each bump."""
        with self._lock:
            self._subscribers.append(callback)

    # -- reading -------------------------------------------------------------

    def version(self, table: str) -> int:
        """Current version of ``table`` (0 if never written)."""
        with self._lock:
            return self._versions.get(table, 0)

    def versions(self, tables: Iterable[str]) -> dict[str, int]:
        """One consistent version vector over ``tables``."""
        with self._lock:
            return {table: self._versions.get(table, 0) for table in tables}

    def snapshot(self) -> dict[str, int]:
        """Every table that has ever been written, with its version."""
        with self._lock:
            return dict(self._versions)

    def clock(self) -> int:
        """Global version: total write events across all tables."""
        with self._lock:
            return self.total_writes

    def changes_since(
        self, stamped: Mapping[str, int], tables: Iterable[str]
    ) -> dict[str, TableChange]:
        """Per-table change detail since the ``stamped`` version vector.

        Only tables whose live version is ahead of the stamp appear in
        the result. A table's :class:`TableChange` carries the union of
        changed keys/columns over the whole version range when *every*
        event in the range reported them and the bounded log still
        covers the range; otherwise ``keys``/``columns`` are ``None``
        (untraceable — the caller must treat any row/column as possibly
        changed).
        """
        changes: dict[str, TableChange] = {}
        with self._lock:
            for table in tables:
                current = self._versions.get(table, 0)
                since = stamped.get(table, 0)
                if current <= since:
                    continue
                events = [
                    event
                    for event in self._key_log.get(table, ())
                    if event[0] > since
                ]
                keys: Optional[frozenset] = frozenset()
                columns: Optional[frozenset] = frozenset()
                if len(events) != current - since:
                    # The log was trimmed (or predates the stamp):
                    # part of the range is unobserved.
                    keys = columns = None
                else:
                    for _, event_keys, event_columns in events:
                        if keys is not None:
                            keys = None if event_keys is None else keys | event_keys
                        if columns is not None:
                            columns = (
                                None
                                if event_columns is None
                                else columns | event_columns
                            )
                changes[table] = TableChange(current - since, keys, columns)
        return changes

    def lag(
        self, stamped: Mapping[str, int], tables: Iterable[str]
    ) -> int:
        """Write events on ``tables`` since the ``stamped`` vector was taken."""
        with self._lock:
            return sum(
                max(0, self._versions.get(t, 0) - stamped.get(t, 0))
                for t in tables
            )

    # -- auto capture --------------------------------------------------------

    def attach(self, db) -> None:
        """Install auto change capture on a writable engine.

        ``db`` is a :class:`~repro.relational.engine.Database` (anything
        with a ``.connection``); its sqlite authorizer and trace-callback
        slots are taken over. See the module docstring for why both
        hooks are needed.
        """
        connection = db.connection
        # Tables named by the authorizer since the last trace callback.
        # sqlite3 serializes callbacks with statement execution on the
        # owning connection, so this needs no lock of its own.
        pending: set[str] = set()

        def authorizer(action, arg1, _arg2, _dbname, _trigger) -> int:
            if action in _WRITE_ACTIONS and arg1:
                pending.add(arg1)
            return sqlite3.SQLITE_OK

        def trace(sql_text: str) -> None:
            # The direct target parses out of the executed text, so it
            # is captured on every execution — cached statements
            # included. The authorizer's extras (trigger/cascade
            # targets the text does not mention) bump at the first
            # execution only. Non-DML traces (the implicit BEGIN sqlite
            # runs before a write, SELECTs) leave ``pending`` untouched:
            # it belongs to the DML statement whose prepare filled it.
            direct = _write_target(sql_text)
            if direct is None:
                return
            if pending:
                extras = pending - {direct}
                pending.clear()
                for table in sorted(extras):
                    self.record_write(table)
            self.record_write(direct)

        connection.set_authorizer(authorizer)
        connection.set_trace_callback(trace)

    @staticmethod
    def detach(db) -> None:
        """Remove auto-capture hooks installed by :meth:`attach`."""
        db.connection.set_authorizer(None)
        db.connection.set_trace_callback(None)

"""View maintenance: change capture, dependency tracking, result caching.

The serving layer (:mod:`repro.serving`) compiles and caches *plans*,
which are data-independent; this package manages *data freshness* — the
paper's premise is that the composed stylesheet view ``v'`` is evaluated
by the relational engine over live base tables, so staleness must be
handled at the relational layer. Three pieces:

* :class:`WriteTracker` — change capture. Publishes a monotonic version
  per base table, bumped explicitly (``record_write``) or automatically
  via sqlite hooks installed on a writable
  :class:`~repro.relational.engine.Database` connection
  (:meth:`WriteTracker.attach`).
* :class:`ResultCache` — memoizes fully serialized responses keyed by
  plan fingerprint + execution strategy, each entry stamped with the
  table-version vector of the plan's base-table read set (computed by
  :func:`repro.serving.fingerprint.view_read_set` at compile time).
* :class:`StalenessPolicy` — how stale a cached response may be before
  it is recomputed: ``strict`` (any lag recomputes), ``bounded`` (lag up
  to ``max_lag`` write events is served), or ``manual`` (only explicit
  invalidation recomputes).

:class:`~repro.serving.server.ViewServer` wires the three together and
reports per-request freshness (``hit`` / ``miss`` / ``stale-recompute``
/ ``delta-recompute`` / ``bypass``) on every
:class:`~repro.serving.server.RequestTrace`; experiments E14/E15 and
``python -m repro serve-bench --writes-per-sec`` measure the
consistency/throughput trade-off.

A fourth piece, :mod:`repro.maintenance.incremental`, makes
stale-recomputes cheaper: instead of re-running the whole compiled
plan, the :class:`DeltaEvaluator` re-executes only the schema nodes
whose read sets intersect the written tables and splices the fresh
subtrees into the cached document (``serve-bench --maintenance delta``,
experiment E15).
"""

from repro.maintenance.fragments import (
    FRAGMENT_POLICIES,
    FragmentCache,
    FragmentPolicy,
    FragmentStat,
)
from repro.maintenance.incremental import (
    MAINTENANCE_MODES,
    ROW_PUSHDOWN_MAX_KEYS,
    DeltaEvaluator,
    DeltaResult,
    DeltaUnsupported,
    MaterializedState,
    dirty_node_ids,
)
from repro.maintenance.policy import StalenessPolicy
from repro.maintenance.result_cache import CachedResult, ResultCache
from repro.maintenance.tracker import TableChange, WriteTracker
from repro.maintenance.workload import (
    hotel_calendar_write,
    hotel_conference_write,
    hotel_metro_write,
    hotel_payload_write,
    hotel_write,
    hotel_write_tables,
)

__all__ = [
    "CachedResult",
    "DeltaEvaluator",
    "DeltaResult",
    "DeltaUnsupported",
    "FRAGMENT_POLICIES",
    "FragmentCache",
    "FragmentPolicy",
    "FragmentStat",
    "MAINTENANCE_MODES",
    "MaterializedState",
    "ROW_PUSHDOWN_MAX_KEYS",
    "ResultCache",
    "StalenessPolicy",
    "TableChange",
    "WriteTracker",
    "dirty_node_ids",
    "hotel_calendar_write",
    "hotel_conference_write",
    "hotel_metro_write",
    "hotel_payload_write",
    "hotel_write",
    "hotel_write_tables",
]

"""Serialized-fragment byte cache and the fragment pinning policy.

The second half of fragment-level incremental serving (E17): even a
perfect delta splice re-serializes the *whole* document on every stale
recompute, charging ``serialize_seconds`` proportional to document
size, not to what changed. But the splice is copy-on-spine — subtrees
untouched by a delta are the *same objects* in the new document — so
their serialized bytes are reusable verbatim. A :class:`FragmentCache`
keeps those byte spans per schema-node fragment, anchored to the
element objects of the entry's :class:`~repro.maintenance.incremental.MaterializedState`
and stamped by the entry's table-version vector (the entry stores both
side by side in :mod:`repro.maintenance.result_cache`); on the next
recompute, :func:`repro.xmlcore.serializer.serialize_spliced` emits
cached spans for shared subtrees and walks only the dirty fragments.

Identity keying is what makes the content fingerprint implicit: an
element object is never mutated after capture (the delta evaluator's
copy-on-spine contract), so ``id(element)`` plus a strong anchor to the
element *is* a content key. A full recompute produces all-new objects,
misses every span, and naturally rebuilds the table.

Which fragments are worth pinning is a policy question —
"XML Reconstruction View Selection" frames exactly this as budgeted
materialization. :class:`FragmentPolicy` decides per serialization,
driven by live read rates (how often the entry is served) and write
rates (tracker version lag on each node's read set) under a byte
budget: a fragment that is read often and written rarely is pinned
first; write-churned fragments stay virtual since their spans would be
invalidated before they are ever copied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.errors import ReproError
from repro.xmlcore.serializer import SpliceOutcome, serialize_spliced

#: Accepted pinning policies: ``all`` pins every query-bearing node's
#: fragments (budget still caps total bytes when given); ``auto`` ranks
#: nodes by read rate over write rate and pins greedily under budget;
#: ``none`` disables byte caching (serving still works, every request
#: re-walks the tree).
FRAGMENT_POLICIES = ("all", "auto", "none")

#: Default byte budget for ``auto`` when none is configured (enough for
#: the benchmark documents; a knob in docs/API.md for real ones).
DEFAULT_FRAGMENT_BUDGET = 4 * 1024 * 1024


@dataclass
class FragmentStat:
    """Per-schema-node signals the pinning policy ranks.

    ``size`` is the node's total cached span bytes from the previous
    serialization (0 when unknown — new nodes start maximally
    attractive, the next round has real numbers); ``reads`` counts
    serves of the owning entry since it was stored; ``writes`` counts
    write events on the node's read-set tables over the same window.
    """

    node_id: int
    size: int = 0
    reads: float = 0.0
    writes: float = 0.0
    #: Fraction of the node's live spans the previous serialization
    #: reused rather than re-walked (``None`` before the first measured
    #: pass) — the direct signal of whether writes actually kill this
    #: node's spans. A row-level write invalidates one span and leaves
    #: the siblings splicable (survival near 1); a node-level delta
    #: replaces every instance (survival 0).
    survival: Optional[float] = None
    #: Nearest query-bearing ancestor node (``None`` at the top level).
    #: A parent's span covers every descendant span, so the ``auto``
    #: policy prunes descendants of a fragment that is expected to
    #: survive — pinning both would double the bookkeeping for bytes
    #: the parent already serves.
    parent_id: Optional[int] = None


class FragmentPolicy:
    """Decides which schema nodes stay byte-materialized.

    Parsed from ``"all"``, ``"none"``, ``"auto"`` or ``"auto:<bytes>"``
    (the CLI's ``--fragment-policy`` / ``--fragment-budget`` knobs map
    here). ``select`` is a pure function of the supplied stats so it
    can be unit-tested and re-run per serialization.
    """

    def __init__(self, mode: str = "all", budget: Optional[int] = None):
        if mode not in FRAGMENT_POLICIES:
            raise ReproError(
                f"unknown fragment policy {mode!r}; expected one of "
                f"{', '.join(FRAGMENT_POLICIES)}"
            )
        self.mode = mode
        if budget is None and mode == "auto":
            budget = DEFAULT_FRAGMENT_BUDGET
        self.budget = budget

    @classmethod
    def parse(cls, text: str) -> "FragmentPolicy":
        """Parse ``all`` / ``none`` / ``auto`` / ``auto:<bytes>``."""
        if ":" in text:
            mode, _, raw = text.partition(":")
            try:
                budget = int(raw)
            except ValueError as exc:
                raise ReproError(
                    f"fragment policy budget must be an integer: {text!r}"
                ) from exc
            return cls(mode.strip(), budget)
        return cls(text.strip())

    def describe(self) -> str:
        """Canonical text form (inverse of :meth:`parse`)."""
        if self.mode == "auto" and self.budget is not None:
            return f"auto:{self.budget}"
        return self.mode

    def select(self, stats: Iterable[FragmentStat]) -> set[int]:
        """The node ids whose fragments should be pinned.

        ``auto`` ranks by value density ``reads / (1 + writes)`` — the
        expected number of times a span is copied before a write
        invalidates it — and pins greedily until the byte budget is
        spent (unsized nodes cost nothing yet; they are admitted and
        measured on the next round). Density prefers the *measured*
        span survival fraction when one exists (``reads * survival``)
        and falls back to the write-count proxy ``reads / (1 +
        writes)`` before the first measurement.

        ``auto`` walks the fragment hierarchy top-down (via
        ``parent_id``) and pins the *topmost* fragment per path that is
        expected to survive — its span covers every descendant, so also
        pinning the descendants would double the per-serve bookkeeping
        for bytes the parent already serves. Each node lands in one of
        three cases: *covering* (density at least half a copy per
        serve) is pinned and its subtree left alone; *unmeasured*
        (no survival number yet) is pinned optimistically so the next
        pass can measure it, with its children explored in parallel;
        *measured churn* (spans die faster than they are copied) is
        dropped outright and only its children considered — the span
        would cost bookkeeping every serve and almost never splice.
        The pinned set therefore converges, one level per pass, onto
        the fringe of stability, and stays there: survival history is
        inherited across passes (see
        :meth:`FragmentCache.serialize_state`), so a node measured as
        churn does not bounce back to optimistic. ``all`` pins
        everything, largest first when a budget caps it.
        """
        if self.mode == "none":
            return set()
        ranked = list(stats)
        if self.mode == "all":
            ranked.sort(key=lambda s: (-s.size, s.node_id))
            chosen = ranked
        else:
            def density(stat: FragmentStat) -> float:
                if stat.survival is not None:
                    return stat.reads * stat.survival
                return stat.reads / (1.0 + stat.writes)

            by_id = {s.node_id: s for s in ranked}
            children: dict[int, list[FragmentStat]] = {}
            roots: list[FragmentStat] = []
            for s in ranked:
                if s.parent_id is not None and s.parent_id in by_id:
                    children.setdefault(s.parent_id, []).append(s)
                else:
                    roots.append(s)
            chosen = []
            stack = list(roots)
            while stack:
                s = stack.pop()
                if density(s) >= 0.5:
                    # Covering: the span outlives enough serves to pay
                    # for itself and shadows every descendant span.
                    chosen.append(s)
                    continue
                if s.survival is None:
                    # Unmeasured: pin once to learn the real survival,
                    # exploring the children in parallel.
                    chosen.append(s)
                    stack.extend(children.get(s.node_id, ()))
                    continue
                # Measured churn: the span dies faster than it is
                # copied; stable fragments may still live beneath it.
                stack.extend(children.get(s.node_id, ()))
            chosen.sort(key=lambda s: (-density(s), -s.size, s.node_id))
        if self.budget is None:
            return {s.node_id for s in chosen}
        selected: set[int] = set()
        spent = 0
        for stat in chosen:
            if stat.size and spent + stat.size > self.budget:
                continue
            spent += stat.size
            selected.add(stat.node_id)
        return selected


class FragmentCache:
    """Byte spans for one cached document, anchored by element identity.

    One instance belongs to one result-cache entry (stored alongside
    its ``MaterializedState`` and version stamp). ``serialize_state``
    emits the entry's document by splicing this cache's spans, records
    fresh spans for the pinned fragments it had to walk, and returns
    the *successor* cache to store on the new entry — spans whose
    elements did not survive the splice are dropped with their anchors,
    so dead subtrees are not kept alive and ids cannot be recycled into
    false hits.
    """

    def __init__(self, pinned: Iterable[int] = ()):
        self.pinned: set[int] = set(pinned)
        #: id(element) -> serialized span, handed straight to
        #: :func:`serialize_spliced` without copying.
        self._spans: dict[int, str] = {}
        #: id(element) -> element. The anchor keeps the element alive
        #: for as long as its span is servable, so an id in ``_spans``
        #: cannot be recycled into a false hit.
        self._anchors: dict[int, Any] = {}
        #: node id -> total span bytes, rebuilt on each serialization;
        #: feeds :class:`FragmentStat.size`.
        self.bytes_by_node: dict[int, int] = {}
        #: Per-node live-span and reused-span counts from the pass that
        #: built this cache; their ratio is :meth:`survival`.
        self._live_by_node: dict[int, int] = {}
        self._survived_by_node: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._spans)

    def span_bytes(self) -> int:
        """Total cached bytes across all fragments."""
        return sum(len(span) for span in self._spans.values())

    def survival(self, node_id: int) -> Optional[float]:
        """Fraction of the node's live spans the pass that built this
        cache reused (spliced or carried forward) rather than re-walked;
        ``None`` before the first measured pass. Feeds
        :class:`FragmentStat.survival`."""
        live = self._live_by_node.get(node_id)
        if not live:
            return None
        return self._survived_by_node.get(node_id, 0) / live

    def serialize_state(
        self, state, pinned: Optional[set[int]] = None
    ) -> tuple[str, SpliceOutcome, "FragmentCache"]:
        """Serialize ``state.document`` splicing this cache's spans.

        ``pinned`` (default: this cache's pinned set) names the schema
        nodes whose fragments the successor cache should hold. Returns
        ``(xml, outcome, successor)``; the xml is byte-identical to
        ``serialize(state.document)``.
        """
        pinned = self.pinned if pinned is None else set(pinned)
        #: id(element) -> (element, owning node id) for every pinned
        #: live element — one dict doubles as the serializer's
        #: record-membership set and the successor's anchor source.
        live: dict[int, tuple[Any, int]] = {}
        for node_id in pinned:
            for element, _env in state.instances.get(node_id, []):
                live[id(element)] = (element, node_id)
        # Every cached span is offered, even for newly-unpinned nodes:
        # anchors guarantee no id is recycled, dead elements simply
        # never hit, and an unpinned node's span serving one last round
        # is byte-identical anyway — the successor just drops it.
        outcome = SpliceOutcome()
        record: dict[int, str] = {}
        xml = serialize_spliced(
            state.document, self._spans, live, record, outcome
        )
        # The successor keeps a span for every *live* pinned element:
        # ones this pass walked or spliced (in ``record``) and ones it
        # never visited because an enclosing span hit — their elements
        # are still in the new state, so identity still implies
        # identical bytes. Entries whose element left the state are
        # dropped with their anchors, so dead subtrees are not kept
        # alive and ids cannot be recycled into false hits.
        successor = FragmentCache(pinned)
        spans = successor._spans
        anchors = successor._anchors
        bytes_by_node = successor.bytes_by_node
        live_by_node = successor._live_by_node
        survived_by_node = successor._survived_by_node
        prior_spans = self._spans
        # Survival is only measurable for nodes the *prior* cache held
        # spans for — a node pinned for the first time walks everything
        # fresh and would read as total churn when nothing ever had a
        # chance to survive.
        measured = {nid for nid, total in self.bytes_by_node.items() if total}
        for key, (element, node_id) in live.items():
            span = record.get(key)
            # A span counts as reused when it was carried forward unseen
            # or spliced verbatim (the hit path re-records the *same*
            # string object); a freshly-walked span means the old one
            # died (or the element is new). The per-node ratio is the
            # policy's survival signal.
            reused = span is None
            if reused:
                span = prior_spans.get(key)
                if span is None:
                    continue
            elif span is prior_spans.get(key):
                reused = True
            spans[key] = span
            anchors[key] = element
            bytes_by_node[node_id] = (
                bytes_by_node.get(node_id, 0) + len(span)
            )
            if node_id in measured:
                live_by_node[node_id] = live_by_node.get(node_id, 0) + 1
                if reused:
                    survived_by_node[node_id] = (
                        survived_by_node.get(node_id, 0) + 1
                    )
        # Nodes not measured this pass (unpinned, or pinned without
        # prior spans) inherit their last measurement, so the policy's
        # churn verdicts persist instead of resetting to optimistic the
        # moment a node is dropped — that reset is what would make the
        # pinned set oscillate.
        for node_id, total in self._live_by_node.items():
            if node_id not in live_by_node:
                live_by_node[node_id] = total
                survived = self._survived_by_node.get(node_id, 0)
                if survived:
                    survived_by_node[node_id] = survived
        return xml, outcome, successor

"""LRU cache of serialized responses with version-stamped freshness.

Where the :class:`~repro.serving.plan_cache.PlanCache` holds
data-independent *plans*, :class:`ResultCache` holds finished *bytes*:
the serialized XML of a materialized response, stamped with the
table-version vector (from a
:class:`~repro.maintenance.tracker.WriteTracker`) of the plan's
base-table read set at the moment it was computed. A lookup compares
that stamp against the live vector and lets the caller's
:class:`~repro.maintenance.policy.StalenessPolicy` decide whether the
entry may be served or must be recomputed.

Invalidation is two-mode:

* **lazy** — the normal path: nothing happens at write time; the next
  lookup sees the version lag and classifies the entry stale.
* **eager** — :meth:`ResultCache.invalidate_tables` drops every entry
  whose read set intersects the written tables (used by the ``manual``
  policy, where lag alone never forces recomputation).

All operations take one internal lock, so counters and the entry table
are always a consistent snapshot (the same discipline as
:class:`~repro.serving.plan_cache.PlanCache`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.maintenance.policy import StalenessPolicy


@dataclass
class CachedResult:
    """One memoized response (immutable once published, except counters)."""

    #: Cache key: plan fingerprint + execution strategy.
    key: str
    #: The serialized XML exactly as a live request would produce it.
    xml: str
    #: Table-version vector at computation time, over ``tables``.
    versions: dict[str, int] = field(default_factory=dict)
    #: The plan's base-table read set this entry depends on.
    tables: tuple[str, ...] = ()
    #: Execution strategy that produced the bytes (diagnostics only).
    strategy: str = ""
    #: Times this entry was served.
    hits: int = 0
    #: Captured evaluation state
    #: (:class:`repro.maintenance.incremental.MaterializedState`) when the
    #: server runs with delta maintenance; ``None`` otherwise. Never
    #: mutated in place — a delta re-evaluation publishes a whole new
    #: entry, so readers of a stale entry are unaffected.
    state: Optional[object] = None
    #: Serialized-fragment byte spans for this entry's document
    #: (:class:`repro.maintenance.fragments.FragmentCache`) when the
    #: server runs with fragment maintenance; ``None`` otherwise. Valid
    #: exactly as long as the entry: spans are keyed by element identity
    #: into ``state``'s document, stamped by the same ``versions``
    #: vector, and a successor entry gets a successor cache.
    fragments: Optional[object] = None


class ResultCache:
    """Thread-safe LRU cache from result keys to version-stamped responses.

    ``capacity`` bounds resident entries (LRU eviction past it). The
    counters distinguish the three miss-shaped outcomes the serving
    layer reports per request: ``misses`` (no entry), ``stale`` (entry
    present but too old for the policy — a *stale-recompute*), and
    ``hits`` (entry served).
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(
                f"ResultCache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self._lock = threading.Lock()

    # -- core operations -----------------------------------------------------

    def lookup(
        self,
        key: str,
        current_versions: Mapping[str, int],
        policy: StalenessPolicy,
    ) -> tuple[Optional[CachedResult], int]:
        """Look up ``key`` against the live version vector.

        Returns ``(entry, lag)``: ``entry`` is the cached response if the
        policy allows serving it at the computed lag, else ``None`` (a
        recorded miss or stale-recompute). ``lag`` is the total write
        events on the entry's read set since it was stamped — 0 when no
        entry exists.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None, 0
            lag = sum(
                max(
                    0,
                    current_versions.get(t, 0) - entry.versions.get(t, 0),
                )
                for t in entry.tables
            )
            if policy.allows(lag):
                self._entries.move_to_end(key)
                self.hits += 1
                entry.hits += 1
                return entry, lag
            self.stale += 1
            return None, lag

    def store(
        self,
        key: str,
        xml: str,
        versions: Mapping[str, int],
        tables: Iterable[str],
        strategy: str = "",
        state: Optional[object] = None,
        fragments: Optional[object] = None,
    ) -> CachedResult:
        """Publish a freshly computed response stamped at ``versions``.

        ``state`` optionally attaches the captured evaluation state a
        later delta re-evaluation splices against; ``fragments`` the
        serialized-fragment byte cache built over that state's document
        (see :attr:`CachedResult.state` / :attr:`CachedResult.fragments`).
        """
        entry = CachedResult(
            key=key,
            xml=xml,
            versions=dict(versions),
            tables=tuple(tables),
            strategy=strategy,
            state=state,
            fragments=fragments,
        )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def peek(self, key: str) -> Optional[CachedResult]:
        """Return the resident entry for ``key`` without counting anything.

        Unlike :meth:`lookup` this touches no hit/miss/stale counters
        and no recency — it is how the delta maintenance path retrieves
        a stale entry's captured state *after* :meth:`lookup` already
        classified (and counted) the request as stale.
        """
        with self._lock:
            return self._entries.get(key)

    # -- invalidation --------------------------------------------------------

    def invalidate(self, key: str) -> bool:
        """Drop one entry by key; returns whether it was resident."""
        with self._lock:
            present = self._entries.pop(key, None) is not None
            if present:
                self.invalidations += 1
            return present

    def invalidate_tables(self, names: Iterable[str]) -> int:
        """Drop every entry whose read set intersects ``names``."""
        wanted = set(names)
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if wanted.intersection(entry.tables)
            ]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        """Drop every entry; counters keep their lifetime history."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    # -- introspection -------------------------------------------------------

    def keys(self) -> list[str]:
        """Resident keys in LRU-to-MRU order (one consistent snapshot)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict[str, int]:
        """Counter snapshot, taken under the cache lock."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stale": self.stale,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

"""Deterministic write workload over the hotel database.

E14, ``serve-bench --writes-per-sec``, and the maintenance benchmarks
all need the same thing: a stream of small, deterministic writes against
the hotel schema that actually change served output (prices appear as
attribute values; ``pool`` flips change hotel rows the Figure 1 tag
queries return). Centralizing it here keeps the write mix identical
across the harness, the CLI, and the benchmark suite.

Writes recorded through a tracker report *row-level detail*: the
affected primary keys (selected just before the UPDATE — the mixes
never rewrite a primary key, so the pre-image keys are the post-image
keys) and the updated columns. That detail is what lets the delta path
refine dirtiness to column granularity and push ``key IN (...)``
predicates down (:mod:`repro.maintenance.incremental`); engines relying
on auto capture simply lose it and fall back to node-level deltas.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: Tables the write mix touches, in rotation order.
_WRITE_MIX = ("availability", "hotel", "availability")

#: All tables :func:`hotel_write` can write (the Figure 1 read set
#: intersects both, so every write invalidates dependent results).
_WRITE_TABLES = ("availability", "hotel")


def hotel_write_tables() -> tuple[str, ...]:
    """The base tables the standard write mix modifies."""
    return _WRITE_TABLES


def _changed_keys(db, sql: str, bindings: dict) -> list:
    """Primary keys a predicate selects (the rows an UPDATE will hit)."""
    return [next(iter(row.values())) for row in db.run_sql(sql, bindings)]


def hotel_write(
    db,
    step: int,
    tracker: Optional[object] = None,
    mix: Optional[tuple[str, ...]] = None,
) -> str:
    """Apply write number ``step`` to a hotel database; returns the table.

    The mix rotates ``startdate`` swaps on ``availability`` (two of
    three steps — they move rows between the Figure 1 ``GROUP BY
    startdate`` groups, changing served counts) with ``pool`` flips on
    ``hotel`` (``SELECT *`` tag queries serve ``pool`` as an attribute);
    both are UPDATEs over a sliding row slice, so the database shape is
    stable while served bytes change. With ``tracker`` given, the write
    is recorded explicitly — including the affected row keys and
    updated columns, which the row-level delta path consumes; omit it
    for engines with auto capture attached. ``mix`` overrides the
    rotation — e.g. E15 passes ``("availability",)`` for a leaf-heavy
    stream whose dirty frontier stays small, the regime incremental
    maintenance targets.
    """
    table = (mix or _WRITE_MIX)[step % len(mix or _WRITE_MIX)]
    if table == "availability":
        bindings = {"slot": step % 5}
        keys = None
        if tracker is not None:
            keys = _changed_keys(
                db, "SELECT a_id FROM availability WHERE a_id % 5 = :slot",
                bindings,
            )
        db.run_sql(
            "UPDATE availability SET startdate = CASE startdate "
            "WHEN '2003-06-09' THEN '2003-06-10' ELSE '2003-06-09' END "
            "WHERE a_id % 5 = :slot",
            bindings,
        )
        columns = ("startdate",)
    else:
        bindings = {"slot": step % 4}
        keys = None
        if tracker is not None:
            keys = _changed_keys(
                db, "SELECT hotelid FROM hotel WHERE hotelid % 4 = :slot",
                bindings,
            )
        db.run_sql(
            "UPDATE hotel SET pool = 1 - pool WHERE hotelid % 4 = :slot",
            bindings,
        )
        columns = ("pool",)
    if tracker is not None:
        tracker.record_write(
            table, rows=len(keys or ()), keys=keys, columns=columns
        )
    return table


def hotel_metro_write(
    db,
    step: int,
    tracker: Optional[object] = None,
    metros: int = 1,
    domain: Optional[Sequence[int]] = None,
) -> str:
    """Shift the availability calendar of one metro's hotels at a time.

    The *shard-local* write of experiment E18: flips ``startdate`` on
    every ``availability`` row under a sliding window of ``metros``
    metro areas — the geographic update locality of a real feed, where
    one market's inventory changes while the others sit still. Under a
    key-range-sharded fleet exactly one shard's tracker advances per
    write (for ``metros=1``), so only that shard recomputes its slice
    of the document; a single box must recompute everything. ``step``
    cycles the window through the metros so successive writes land on
    successive shards. Returns ``"availability"``.

    ``domain`` is the *global* ordered metro-id list the window slides
    over. It must be passed when routing the write to shards: a shard
    only holds its own metros, so a window computed from its local
    ``metroarea`` table would make every shard write its own "first"
    metro instead of the one globally targeted. With the global domain
    the rows written on a shard equal the rows written on the full
    database restricted to that shard's metros — the
    union-equals-single-box property the differential suite checks —
    and a shard owning none of the window's metros no-ops without
    advancing its tracker version. ``domain=None`` reads the local
    table, which is only correct on an unpartitioned database.
    """
    metroids = (
        list(domain)
        if domain is not None
        else [
            row["metroid"]
            for row in db.run_sql(
                "SELECT metroid FROM metroarea ORDER BY metroid", {}
            )
        ]
    )
    if not metroids:
        return "availability"
    count = max(1, min(metros, len(metroids)))
    start = (step * count) % len(metroids)
    window = (metroids * 2)[start:start + count]
    marks = ",".join(f":m{i}" for i in range(len(window)))
    bindings = {f"m{i}": key for i, key in enumerate(window)}
    predicate = (
        "a_r_id IN (SELECT r_id FROM guestroom "
        "JOIN hotel ON rhotel_id = hotelid "
        f"WHERE metro_id IN ({marks}))"
    )
    keys = None
    if tracker is not None:
        keys = _changed_keys(
            db,
            f"SELECT a_id FROM availability WHERE {predicate}",
            bindings,
        )
        if not keys:
            # This database owns none of the targeted metros (an
            # unaffected shard): no statement, no version advance —
            # exactly what keeps the write shard-local.
            return "availability"
    db.run_sql(
        "UPDATE availability SET startdate = CASE startdate "
        "WHEN '2003-06-09' THEN '2003-06-10' ELSE '2003-06-09' END "
        f"WHERE {predicate}",
        bindings,
    )
    if tracker is not None:
        tracker.record_write(
            "availability",
            rows=len(keys or ()),
            keys=keys,
            columns=("startdate",),
        )
    return "availability"


def hotel_calendar_write(
    db,
    step: int,
    tracker: Optional[object] = None,
    hotels: int = 1,
    domain: Optional[Sequence[int]] = None,
) -> str:
    """Shift the availability calendar of ``hotels`` served hotels.

    The block-pushdown leaf write: flips ``startdate`` on every
    ``availability`` row of a sliding window of in-view (``starrating >
    4``) hotels — the entity-local update pattern of a real booking
    feed, where one property's calendar changes at a time. ``startdate``
    is the Figure 1 ``GROUP BY`` column of the availability nodes, so
    the write regroups rows *within* the owning hotel's block while
    every other hotel's subtree is untouched; a tracked write here is
    maintainable by re-evaluating just the affected hotels' blocks
    (:mod:`repro.maintenance.incremental`), and the rest of the
    document — the bulk of its bytes — survives by identity for the
    fragment byte cache. Returns ``"availability"``.

    ``domain`` is the global in-view hotel-id list the window slides
    over; pass it when routing the write to shards (same contract as
    :func:`hotel_metro_write`) so every shard targets the same hotels
    and non-owners no-op without a version bump.
    """
    hotelids = (
        list(domain)
        if domain is not None
        else [
            row["hotelid"]
            for row in db.run_sql(
                "SELECT hotelid FROM hotel WHERE starrating > 4 "
                "ORDER BY hotelid",
                {},
            )
        ]
    )
    if not hotelids:
        return "availability"
    count = max(1, min(hotels, len(hotelids)))
    start = (step * count) % len(hotelids)
    window = (hotelids * 2)[start:start + count]
    marks = ",".join(f":h{i}" for i in range(len(window)))
    bindings = {f"h{i}": key for i, key in enumerate(window)}
    keys = None
    if tracker is not None:
        keys = _changed_keys(
            db,
            "SELECT a_id FROM availability WHERE a_r_id IN "
            f"(SELECT r_id FROM guestroom WHERE rhotel_id IN ({marks}))",
            bindings,
        )
        if not keys:
            # No targeted hotel lives on this database (an unaffected
            # shard): no statement, no version advance.
            return "availability"
    db.run_sql(
        "UPDATE availability SET startdate = CASE startdate "
        "WHEN '2003-06-09' THEN '2003-06-10' ELSE '2003-06-09' END "
        "WHERE a_r_id IN "
        f"(SELECT r_id FROM guestroom WHERE rhotel_id IN ({marks}))",
        bindings,
    )
    if tracker is not None:
        tracker.record_write(
            "availability",
            rows=len(keys or ()),
            keys=keys,
            columns=("startdate",),
        )
    return "availability"


def hotel_conference_write(
    db,
    step: int,
    tracker: Optional[object] = None,
    hotels: int = 1,
) -> str:
    """Resize the conference rooms of ``hotels`` served hotels.

    The block-pushdown leaf write: flips ``capacity`` (parity toggle, so
    the database shape is stable) on every ``confroom`` row of a sliding
    window of in-view (``starrating > 4``) hotels — the entity-local
    update of a real property feed, where one hotel reconfigures its
    meeting space at a time. ``capacity`` feeds the Figure 1 conference
    aggregates (``confstat`` per hotel and per metro) only through their
    top-level SUM projections — it never decides which rows join which
    result blocks — so a tracked write here is maintainable at *block*
    granularity: re-aggregate the affected hotels' and metros' blocks,
    share every other block's subtree by identity
    (:mod:`repro.maintenance.incremental`), and let the fragment byte
    cache replay the untouched bytes. Contrast with calendar writes
    (:func:`hotel_calendar_write`), whose ``startdate`` regroups rows
    across sibling hotels and must fall back to node-level maintenance.
    Returns ``"confroom"``.
    """
    hotelids = [
        row["hotelid"]
        for row in db.run_sql(
            "SELECT hotelid FROM hotel WHERE starrating > 4 "
            "ORDER BY hotelid",
            {},
        )
    ]
    if not hotelids:
        return "confroom"
    count = max(1, min(hotels, len(hotelids)))
    start = (step * count) % len(hotelids)
    window = (hotelids * 2)[start:start + count]
    marks = ",".join(f":h{i}" for i in range(len(window)))
    bindings = {f"h{i}": key for i, key in enumerate(window)}
    keys = None
    if tracker is not None:
        keys = _changed_keys(
            db,
            f"SELECT c_id FROM confroom WHERE chotel_id IN ({marks})",
            bindings,
        )
    db.run_sql(
        "UPDATE confroom SET capacity = CASE capacity % 2 "
        "WHEN 0 THEN capacity + 1 ELSE capacity - 1 END "
        f"WHERE chotel_id IN ({marks})",
        bindings,
    )
    if tracker is not None:
        tracker.record_write(
            "confroom",
            rows=len(keys or ()),
            keys=keys,
            columns=("capacity",),
        )
    return "confroom"


def hotel_payload_write(
    db,
    step: int,
    tracker: Optional[object] = None,
    rows: int = 1,
) -> str:
    """Flip ``pool`` on exactly ``rows`` hotels; returns ``"hotel"``.

    The row-pushdown microbenchmark's write: ``pool`` is a pure payload
    column of the Figure 1 ``hotel`` node (``SELECT *`` serves it, no
    predicate, grouping or descendant reads it), so a tracked write
    here is maintainable by re-fetching just the changed rows — and
    ``rows`` directly controls how many. Only hotels the Figure 1
    ``starrating > 4`` filter serves are touched, so every changed row
    has an element in the document (a flip on a filtered-out hotel
    would measure an empty probe, not row maintenance). The window
    slides with ``step`` so successive writes touch different hotels.
    """
    hotelids = [
        row["hotelid"]
        for row in db.run_sql(
            "SELECT hotelid FROM hotel WHERE starrating > 4 "
            "ORDER BY hotelid",
            {},
        )
    ]
    if not hotelids:
        return "hotel"
    count = max(1, min(rows, len(hotelids)))
    start = (step * count) % len(hotelids)
    window = (hotelids * 2)[start:start + count]
    marks = ",".join(f":k{i}" for i in range(len(window)))
    bindings = {f"k{i}": key for i, key in enumerate(window)}
    db.run_sql(
        f"UPDATE hotel SET pool = 1 - pool WHERE hotelid IN ({marks})",
        bindings,
    )
    if tracker is not None:
        tracker.record_write(
            "hotel", rows=len(window), keys=window, columns=("pool",)
        )
    return "hotel"

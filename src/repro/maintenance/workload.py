"""Deterministic write workload over the hotel database.

E14, ``serve-bench --writes-per-sec``, and the maintenance benchmarks
all need the same thing: a stream of small, deterministic writes against
the hotel schema that actually change served output (prices appear as
attribute values; ``pool`` flips change hotel rows the Figure 1 tag
queries return). Centralizing it here keeps the write mix identical
across the harness, the CLI, and the benchmark suite.
"""

from __future__ import annotations

from typing import Optional

#: Tables the write mix touches, in rotation order.
_WRITE_MIX = ("availability", "hotel", "availability")

#: All tables :func:`hotel_write` can write (the Figure 1 read set
#: intersects both, so every write invalidates dependent results).
_WRITE_TABLES = ("availability", "hotel")


def hotel_write_tables() -> tuple[str, ...]:
    """The base tables the standard write mix modifies."""
    return _WRITE_TABLES


def hotel_write(
    db,
    step: int,
    tracker: Optional[object] = None,
    mix: Optional[tuple[str, ...]] = None,
) -> str:
    """Apply write number ``step`` to a hotel database; returns the table.

    The mix rotates ``startdate`` swaps on ``availability`` (two of
    three steps — they move rows between the Figure 1 ``GROUP BY
    startdate`` groups, changing served counts) with ``pool`` flips on
    ``hotel`` (``SELECT *`` tag queries serve ``pool`` as an attribute);
    both are UPDATEs over a sliding row slice, so the database shape is
    stable while served bytes change. With ``tracker`` given, the write
    is recorded explicitly; omit it for engines with auto capture
    attached. ``mix`` overrides the rotation — e.g. E15 passes
    ``("availability",)`` for a leaf-heavy stream whose dirty frontier
    stays small, the regime incremental maintenance targets.
    """
    table = (mix or _WRITE_MIX)[step % len(mix or _WRITE_MIX)]
    if table == "availability":
        db.run_sql(
            "UPDATE availability SET startdate = CASE startdate "
            "WHEN '2003-06-09' THEN '2003-06-10' ELSE '2003-06-09' END "
            "WHERE a_id % 5 = :slot",
            {"slot": step % 5},
        )
    else:
        db.run_sql(
            "UPDATE hotel SET pool = 1 - pool WHERE hotelid % 4 = :slot",
            {"slot": step % 4},
        )
    if tracker is not None:
        tracker.record_write(table)
    return table

"""Command-line interface: ``python -m repro <command>``.

Workflows:

.. code-block:: bash

    # Create demo artifacts (catalog, view, stylesheet, sqlite database).
    python -m repro demo --out demo/ --scale 2

    # Compose a stylesheet with a view into a stylesheet view.
    python -m repro compose --catalog demo/catalog.xml \\
        --view demo/view.xml --stylesheet demo/stylesheet.xsl \\
        --out demo/composed.xml [--paper-mode] [--prune]

    # Show the intermediate structures (CTG, TVQ, plan notes).
    python -m repro explain --catalog ... --view ... --stylesheet ...

    # Materialize a (possibly composed) view against a database.
    python -m repro materialize --catalog ... --view demo/composed.xml \\
        --db demo/hotel.sqlite [--strategy nested-loop|memoized|bulk] [--pretty]

    # One-shot: plan + execute a stylesheet over a view (hybrid executor).
    python -m repro run --catalog ... --view demo/view.xml \\
        --stylesheet demo/stylesheet.xsl --db demo/hotel.sqlite

    # Concurrent serving benchmark (ViewServer + plan cache): throughput,
    # latency percentiles, and cache hit rate over the paper workload.
    python -m repro serve-bench --scale 2 --workers 4 --requests 100 \\
        [--strategy all|nested-loop|memoized|bulk] [--json metrics.json]
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro.core.compose import compose
from repro.core.ctg import build_ctg
from repro.core.hybrid import HybridExecutor
from repro.core.optimize import prune_stylesheet_view
from repro.core.tvq import build_tvq
from repro.errors import DriverUnavailableError, ReproError
from repro.relational.driver import BACKEND_NAMES, resolve_driver
from repro.relational.engine import Database
from repro.resilience.faults import FLEET_FAULT_KINDS
from repro.schema_tree.bulk_evaluator import BulkViewEvaluator
from repro.schema_tree.evaluator import STRATEGIES, ViewEvaluator
from repro.schema_tree.io import (
    load_catalog,
    load_view,
    save_catalog,
    save_view,
)
from repro.xmlcore.serializer import serialize, serialize_pretty
from repro.xslt.parser import parse_stylesheet


def _read_stylesheet(path: str):
    with open(path) as handle:
        return parse_stylesheet(handle.read())


def _write_output(text: str, out: Optional[str]) -> None:
    if out:
        with open(out, "w") as handle:
            handle.write(text)
        print(f"wrote {out}")
    else:
        sys.stdout.write(text)
        if not text.endswith("\n"):
            sys.stdout.write("\n")


def cmd_compose(args: argparse.Namespace) -> int:
    """``repro compose``: compose a stylesheet with a view file."""
    catalog = load_catalog(args.catalog)
    view = load_view(args.view, catalog)
    stylesheet = _read_stylesheet(args.stylesheet)
    composed = compose(view, stylesheet, catalog, paper_mode=args.paper_mode)
    if args.prune:
        report = prune_stylesheet_view(composed, catalog)
        print(
            f"pruned {report.columns_removed} dead columns from "
            f"{report.nodes_pruned} nodes",
            file=sys.stderr,
        )
    from repro.schema_tree.io import view_to_xml

    _write_output(view_to_xml(composed), args.out)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: print the plan and intermediate structures."""
    catalog = load_catalog(args.catalog)
    view = load_view(args.view, catalog)
    stylesheet = _read_stylesheet(args.stylesheet)
    executor = HybridExecutor(view, stylesheet, catalog)
    print(f"plan: {executor.plan.kind}")
    for note in executor.plan.notes:
        print(f"  note: {note}")
    print()
    if executor.plan.kind == "composed":
        from repro.core.rewrites.pipeline import rewrite_to_basic

        lowered = rewrite_to_basic(stylesheet)
        ctg = build_ctg(view, lowered)
        tvq = build_tvq(ctg, catalog)
        if args.dot:
            from repro.core.visualize import ctg_to_dot, tvq_to_dot, view_to_dot

            print(ctg_to_dot(ctg))
            print()
            print(tvq_to_dot(tvq))
            print()
            print(view_to_dot(executor.plan.view, title="stylesheet_view"))
            return 0
        print("== Context Transition Graph ==")
        print(ctg.describe())
        print()
        print("== Traverse View Query ==")
        print(tvq.describe())
        print()
    print("== Output view ==")
    print(executor.plan.view.describe())
    if executor.plan.stylesheet is not None:
        print()
        print("== Residual stylesheet rules ==")
        for rule in executor.plan.stylesheet.rules:
            print(f"  match={rule.match.to_text()!r} mode={rule.mode!r}")
    return 0


def cmd_materialize(args: argparse.Namespace) -> int:
    """``repro materialize``: evaluate a view file against a database."""
    catalog = load_catalog(args.catalog)
    view = load_view(args.view, catalog)
    strategy = args.strategy
    if args.memoize:
        if strategy not in ("nested-loop", "memoized"):
            print(
                f"error: --memoize conflicts with --strategy {strategy}",
                file=sys.stderr,
            )
            return 2
        strategy = "memoized"
    db = Database.open(catalog, args.db)
    try:
        if strategy == "bulk":
            evaluator = BulkViewEvaluator(db)
        else:
            evaluator = ViewEvaluator(db, memoize=strategy == "memoized")
        document = evaluator.materialize(view)
        text = serialize_pretty(document) if args.pretty else serialize(document)
        _write_output(text, args.out)
        print(
            f"{evaluator.stats.elements_created} elements, "
            f"{db.stats.queries_executed} queries",
            file=sys.stderr,
        )
        if strategy == "bulk" and evaluator.fallback_nodes:
            print(
                f"{len(evaluator.fallback_nodes)} nodes fell back to "
                "correlated execution:",
                file=sys.stderr,
            )
            for record in evaluator.fallback_nodes:
                print(f"  {record}", file=sys.stderr)
    finally:
        db.close()
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: plan and execute a stylesheet (hybrid executor)."""
    catalog = load_catalog(args.catalog)
    view = load_view(args.view, catalog)
    stylesheet = _read_stylesheet(args.stylesheet)
    executor = HybridExecutor(
        view, stylesheet, catalog,
        fallback_builtin_rules=args.builtin_rules,
    )
    print(f"plan: {executor.plan.kind}", file=sys.stderr)
    db = Database.open(catalog, args.db)
    try:
        document = executor.execute(db)
        text = serialize_pretty(document) if args.pretty else serialize(document)
        _write_output(text, args.out)
    finally:
        db.close()
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """``repro serve-bench``: measure the concurrent publishing server.

    Builds the hotel workload at ``--scale``, starts a
    :class:`~repro.serving.server.ViewServer` with ``--workers`` pooled
    read-only connections, and serves ``--requests`` composition
    requests (Figure 1 view x {Figure 4, Figure 17} stylesheets, cycling
    through the chosen strategies). Reports throughput, latency
    percentiles, and plan-cache hit rate; ``--json`` records the full
    metrics (including per-request traces) for CI assertions.

    Update-aware mode: ``--staleness`` and/or ``--writes-per-sec``
    attach a :class:`~repro.maintenance.tracker.WriteTracker` (auto
    capture) and a result cache governed by the given policy; a writer
    thread applies the standard hotel write mix at the requested rate
    while requests are served, and the report additionally shows the
    freshness histogram, result-cache counters, and the maximum version
    lag actually served. ``--maintenance delta`` recomputes stale
    entries incrementally (dirty schema nodes only, spliced into the
    cached document) instead of re-running the full plan;
    ``--maintenance fragment`` additionally serializes through the
    per-fragment byte cache (``--fragment-policy`` picks what stays
    byte-materialized). ``--view-only`` serves the publishing view
    itself instead of the stylesheet compositions — the regime where
    per-node maintenance has structure to exploit. ``--profile`` adds a
    per-phase time breakdown (query / merge / serialize / splice) over
    the computed (non-hit) requests, in the text report and the JSON.

    Chaos mode: ``--faults`` (and friends) build a seeded
    :class:`~repro.resilience.faults.FaultPlan` injecting transient
    errors / latency / wrong-shape results into every pooled session;
    ``--deadline-ms`` / ``--retries`` / ``--breaker-threshold`` /
    ``--queue-limit`` assemble a
    :class:`~repro.resilience.policy.ResiliencePolicy`. ``--warmup``
    serves that many requests with faults disarmed first (caches
    populated, last-known-good entries in place). The report gains the
    outcome histogram, **availability** (success + degraded fraction),
    resilience counters, and two shutdown leak checks: pooled
    connections still borrowed after all futures resolved, and
    ``viewserver`` worker threads still alive after close. With a fault
    plan active the exit code reflects the run completing, not the
    (expected) injected errors.
    """
    import json
    import threading as _threading
    import time as _time

    from repro.serving import OUTCOMES, PublishRequest, ViewServer, percentile
    from repro.workloads.hotel import HotelDataSpec, build_hotel_database
    from repro.workloads.paper import (
        figure1_view,
        figure4_stylesheet,
        figure17_stylesheet,
    )

    update_aware = args.staleness is not None or args.writes_per_sec > 0
    faults = None
    if (
        args.faults > 0
        or args.fault_latency_rate > 0
        or args.fault_wrong_rate > 0
        or args.fault_compile_rate > 0
    ):
        from repro.resilience import FaultPlan, FaultSpec

        faults = FaultPlan(
            FaultSpec(
                error_rate=args.faults,
                latency_rate=args.fault_latency_rate,
                latency_ms=args.fault_latency_ms,
                wrong_shape_rate=args.fault_wrong_rate,
                compile_error_rate=args.fault_compile_rate,
            ),
            seed=args.fault_seed,
        )
    resilience = None
    if (
        args.deadline_ms is not None
        or args.retries > 0
        or args.breaker_threshold > 0
        or args.queue_limit is not None
        or args.no_degraded
    ):
        from repro.resilience import ResiliencePolicy

        resilience = ResiliencePolicy(
            deadline_ms=args.deadline_ms,
            retries=args.retries,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_ms=args.breaker_cooldown_ms,
            queue_limit=args.queue_limit,
            degraded=not args.no_degraded,
        )
    strategies = list(STRATEGIES) if args.strategy == "all" else [args.strategy]
    sharded = args.shards > 1 or args.replicas > 0
    fleet_faults = None
    if args.fault_kind != "none":
        if not sharded:
            print(
                "serve-bench: --fault-kind needs a fleet "
                "(--shards > 1 or --replicas > 0)",
                file=sys.stderr,
            )
            return 2
        from repro.resilience import FleetFaultPlan

        fleet_faults = FleetFaultPlan.for_kind(
            args.fault_kind,
            rate=args.fleet_fault_rate,
            seed=args.fault_seed,
            window=args.fleet_fault_window,
        )
    try:
        driver = resolve_driver(getattr(args, "backend", None))
    except DriverUnavailableError as exc:
        print(f"serve-bench: {exc}", file=sys.stderr)
        return 2
    db = build_hotel_database(
        HotelDataSpec().scaled(args.scale), cross_thread=update_aware,
        driver=driver,
    )
    tracker = None
    auto_capture = driver.supports_auto_capture
    if update_aware and not sharded:
        from repro.maintenance import WriteTracker

        tracker = WriteTracker()
        db.attach_tracker(tracker, auto=auto_capture)
    view = figure1_view(db.catalog)
    stylesheets = [
        ("figure4", figure4_stylesheet()),
        ("figure17", figure17_stylesheet()),
    ]
    if args.view_only:
        stylesheets = [("figure1", None)]
    requests = []
    for index in range(args.requests):
        name, stylesheet = stylesheets[index % len(stylesheets)]
        strategy = strategies[index % len(strategies)]
        requests.append(
            PublishRequest(
                view, stylesheet, strategy=strategy, label=f"{name}/{strategy}"
            )
        )
    if sharded:
        # Fleet mode: deal the hotel database by metro key range, one
        # primary + N replicas per shard. A fault plan (if any) arms
        # shard 0's primary only — its replicas are the failover path
        # the chaos run exercises.
        from repro.sharding import ShardRouter
        from repro.workloads.hotel import hotel_partition_scheme

        server = ShardRouter.build(
            db.catalog,
            db,
            hotel_partition_scheme(),
            args.shards,
            replicas=args.replicas,
            workers=args.workers,
            staleness=args.staleness or "strict",
            maintenance=args.maintenance,
            fragment_policy=args.fragment_policy,
            resilience=resilience,
            faults=(
                [faults] + [None] * (args.shards - 1)
                if faults is not None
                else None
            ),
            fleet_faults=fleet_faults,
            replica_lag_ms=args.replica_lag_ms,
            keep_xml=False,
        )
    else:
        server = ViewServer(
            db.catalog,
            source=db,
            workers=args.workers,
            keep_xml=False,
            tracker=tracker,
            staleness=args.staleness or "strict",
            maintenance=args.maintenance,
            fragment_policy=args.fragment_policy,
            resilience=resilience,
            faults=faults,
        )
    stop_writer = _threading.Event()
    writes_issued = [0]

    def write_loop() -> None:
        from repro.maintenance import hotel_write

        interval = 1.0 / args.writes_per_sec
        while not stop_writer.wait(interval):
            if sharded:
                # One logical write, applied shard-locally everywhere:
                # the write mix addresses rows by key predicates, so
                # each shard's statements touch only rows it owns.
                server.route_write(
                    lambda source, shard_tracker: hotel_write(
                        source, writes_issued[0], tracker=shard_tracker
                    )
                )
            elif auto_capture:
                hotel_write(db, writes_issued[0])  # auto capture records it
            else:
                hotel_write(db, writes_issued[0], tracker=tracker)
            writes_issued[0] += 1

    writer = None
    if args.writes_per_sec > 0:
        writer = _threading.Thread(target=write_loop, daemon=True)
        writer.start()
    leaked_connections = 0
    try:
        if args.warmup > 0:
            # Populate plan + result caches fault-free so degraded-stale
            # has a last-known-good entry to fall back to.
            if faults is not None:
                faults.disarm()
            if fleet_faults is not None:
                fleet_faults.disarm()
            server.render_many(
                PublishRequest(
                    view,
                    stylesheets[index % len(stylesheets)][1],
                    strategy=strategies[index % len(strategies)],
                    label="warmup",
                )
                for index in range(args.warmup)
            )
            if faults is not None:
                faults.arm()
            if fleet_faults is not None:
                fleet_faults.arm()
        started = _time.perf_counter()
        traces = server.render_many(requests)
        wall_seconds = _time.perf_counter() - started
        # Stop the writer before snapshotting metrics so writes_issued
        # and the tracker's counters describe the same moment.
        stop_writer.set()
        if writer is not None:
            writer.join()
        # Every future has resolved: any borrowed session now is a leak.
        leaked_connections = (
            server.outstanding() if sharded else server.pool.outstanding()
        )
        metrics = server.aggregate_metrics() if sharded else server.metrics()
    finally:
        stop_writer.set()
        if writer is not None:
            writer.join()
        server.close()
        db.close()
    leaked_threads = sum(
        1
        for thread in _threading.enumerate()
        if thread.name.startswith(("viewserver", "shardrouter"))
    )
    latencies_ms = [trace.total_seconds * 1000 for trace in traces]
    errors = [trace for trace in traces if trace.error is not None]
    # Outcomes/availability come from the measured traces (warmup
    # requests are deliberately excluded; server.metrics() counts them).
    outcome_counts = {outcome: 0 for outcome in OUTCOMES}
    for trace in traces:
        outcome_counts[trace.outcome] += 1
    availability = (
        (outcome_counts["success"] + outcome_counts["degraded"]) / len(traces)
        if traces
        else 0.0
    )
    cache = metrics["cache"]
    lookups = cache["hits"] + cache["misses"]
    hit_rate = cache["hits"] / lookups if lookups else 0.0
    throughput = len(traces) / wall_seconds if wall_seconds else 0.0
    p50 = percentile(latencies_ms, 50)
    p95 = percentile(latencies_ms, 95)
    p99 = percentile(latencies_ms, 99)
    print(
        f"serve-bench: scale={args.scale} workers={args.workers} "
        f"backend={driver.name} requests={len(traces)} "
        f"strategy={args.strategy}"
    )
    if sharded:
        router_stats = metrics["router"]
        print(
            f"sharded shards={args.shards} replicas={args.replicas} "
            f"failovers={router_stats['failovers']} "
            f"key_ranges={router_stats.get('key_ranges', '')}"
        )
        fleet = router_stats.get("fleet")
        if fleet is not None:
            skips = fleet["skips"]
            rate = fleet["anti_affinity"]["rate"]
            print(
                f"fleet stale_serves={fleet['stale_serves']} "
                f"max_member_lag_served={fleet['max_member_lag_served']} "
                f"no_candidates={fleet['no_candidates']} "
                "skips "
                + " ".join(f"{k}={v}" for k, v in sorted(skips.items()))
                + " anti_affinity_rate="
                + (f"{rate:.3f}" if rate is not None else "n/a")
            )
            if fleet_faults is not None:
                stats = fleet["fleet_faults"]
                print(
                    f"fleet_faults kind={args.fault_kind} "
                    f"seed={stats['seed']} checks={stats['checks']} "
                    f"injected={stats['injected']}"
                )
    print(
        f"throughput_rps={throughput:.1f} wall_seconds={wall_seconds:.4f} "
        f"errors={len(errors)}"
    )
    print(f"latency_ms p50={p50:.3f} p95={p95:.3f} p99={p99:.3f}")
    print(
        f"cache hits={cache['hits']} misses={cache['misses']} "
        f"evictions={cache['evictions']} hit_rate={hit_rate:.3f}"
    )
    print(
        f"engine queries={metrics['queries_executed']} "
        f"rows={metrics['rows_fetched']}"
    )
    max_hit_lag = 0
    if update_aware:
        freshness = metrics["freshness"]
        result_cache = metrics["result_cache"]
        max_hit_lag = max(
            (t.version_lag for t in traces if t.freshness == "hit"),
            default=0,
        )
        print(
            f"freshness policy={metrics['staleness_policy']} "
            + " ".join(f"{state}={freshness[state]}" for state in freshness)
        )
        print(
            f"result_cache hits={result_cache['hits']} "
            f"misses={result_cache['misses']} stale={result_cache['stale']} "
            f"max_hit_lag={max_hit_lag}"
        )
        print(
            f"maintenance mode={metrics['maintenance']} "
            f"delta_recomputes={freshness['delta-recompute']} "
            f"delta_fallbacks={metrics['delta_fallbacks']}"
        )
        if "fragments" in metrics:
            fragments = metrics["fragments"]
            print(
                f"fragments policy={fragments['policy']} "
                f"hits={fragments['hits']} misses={fragments['misses']} "
                f"splices={fragments['splices']} "
                f"spliced_bytes={fragments['spliced_bytes']}"
            )
        print(
            f"writes issued={writes_issued[0]} "
            f"tracked={metrics['tracker']['total_writes']}"
        )
    if resilience is not None or faults is not None:
        print(
            "outcomes "
            + " ".join(f"{o}={outcome_counts[o]}" for o in OUTCOMES)
            + f" availability={availability:.4f}"
        )
        if resilience is not None:
            res = metrics["resilience"]
            breaker = res["breaker"] or {}
            print(
                f"resilience policy=[{res['policy']}] "
                f"retries={res['retries']} "
                f"deadline_hits={res['deadline_hits']} "
                f"shed={res['shed_requests']} "
                f"degraded={res['degraded_serves']} "
                f"breaker_opened={breaker.get('opened', 0)}"
            )
        if faults is not None:
            injected = metrics["faults"]["injected"]
            print(
                f"faults seed={args.fault_seed} "
                + " ".join(f"{k}={v}" for k, v in sorted(injected.items()))
            )
        print(
            f"shutdown leaked_connections={leaked_connections} "
            f"leaked_threads={leaked_threads}"
        )
    for trace in errors:
        print(f"error: request {trace.request_id}: {trace.error}",
              file=sys.stderr)
    profile = None
    if args.profile:
        # Per-phase breakdown over the requests that actually computed
        # (cache hits and degraded serves spend time in none of these).
        # merge = execute - query - splice: the evaluator work between
        # sqlite and the document splice (row grouping, element build).
        computed = [
            trace
            for trace in traces
            if trace.error is None
            and trace.freshness not in ("hit", "degraded-stale")
        ]
        if sharded:
            # Fleet phases: scatter covers the slowest shard's full
            # serve (the request's critical path); merge and serialize
            # are router-side work on the gathered documents.
            samples = {
                "scatter": [t.execute_seconds * 1000 for t in computed],
                "merge": [t.merge_seconds * 1000 for t in computed],
                "serialize": [t.serialize_seconds * 1000 for t in computed],
            }
        else:
            samples = {
                "query": [t.query_seconds * 1000 for t in computed],
                "merge": [
                    max(
                        0.0,
                        (t.execute_seconds - t.query_seconds
                         - t.splice_seconds)
                        * 1000,
                    )
                    for t in computed
                ],
                "serialize": [t.serialize_seconds * 1000 for t in computed],
                "splice": [t.splice_seconds * 1000 for t in computed],
            }
        phases = tuple(samples)
        profile = {
            phase: {
                "total_ms": round(sum(values), 3),
                "p50_ms": round(percentile(values, 50), 4),
                "p95_ms": round(percentile(values, 95), 4),
            }
            for phase, values in samples.items()
        }
        profile["requests"] = len(computed)
        print(
            f"profile requests={len(computed)} "
            + " ".join(
                f"{phase}_p50_ms={profile[phase]['p50_ms']:.4f}"
                for phase in phases
            )
        )
    if args.json:
        report = {
            "config": {
                "scale": args.scale,
                "workers": args.workers,
                "backend": driver.name,
                "requests": args.requests,
                "strategy": args.strategy,
                "shards": args.shards,
                "replicas": args.replicas,
                "replica_lag_ms": args.replica_lag_ms,
                "fault_kind": (
                    args.fault_kind if fleet_faults is not None else None
                ),
                "writes_per_sec": args.writes_per_sec,
                "staleness": args.staleness,
                "maintenance": args.maintenance,
                "fragment_policy": args.fragment_policy,
                "view_only": args.view_only,
                "warmup": args.warmup,
                "fault_seed": args.fault_seed if faults is not None else None,
                "resilience": (
                    resilience.describe() if resilience is not None else None
                ),
            },
            "wall_seconds": round(wall_seconds, 6),
            "throughput_rps": round(throughput, 3),
            "latency_ms": {
                "p50": round(p50, 3),
                "p95": round(p95, 3),
                "p99": round(p99, 3),
                "max": round(max(latencies_ms), 3) if latencies_ms else 0.0,
            },
            "cache": dict(cache, hit_rate=round(hit_rate, 4)),
            "queries_executed": metrics["queries_executed"],
            "rows_fetched": metrics["rows_fetched"],
            "errors": len(errors),
            "outcomes": outcome_counts,
            "availability": round(availability, 6),
            "shutdown": {
                "leaked_connections": leaked_connections,
                "leaked_threads": leaked_threads,
            },
            "traces": [trace.to_dict() for trace in traces],
        }
        if update_aware:
            report["freshness"] = metrics["freshness"]
            report["result_cache"] = metrics["result_cache"]
            report["staleness_policy"] = metrics["staleness_policy"]
            report["maintenance"] = metrics["maintenance"]
            report["delta_fallbacks"] = metrics["delta_fallbacks"]
            report["delta_fallbacks_by_reason"] = metrics[
                "delta_fallbacks_by_reason"
            ]
            if "fragments" in metrics:
                report["fragments"] = metrics["fragments"]
            report["writes_issued"] = writes_issued[0]
            report["writes_tracked"] = metrics["tracker"]["total_writes"]
            report["max_hit_lag"] = max_hit_lag
        if sharded:
            report["router"] = metrics["router"]
        if profile is not None:
            report["profile"] = profile
        if resilience is not None:
            report["resilience"] = metrics["resilience"]
        if faults is not None:
            report["faults"] = metrics["faults"]
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if faults is not None or fleet_faults is not None:
        # Chaos runs *expect* injected failures; CI gates on the JSON
        # availability/leak fields instead of the exit code.
        return 0
    return 1 if errors else 0


def _frontend_app_from_args(args: argparse.Namespace):
    """Build a :class:`~repro.frontend.app.PublishingApp` from CLI flags.

    Shared by ``serve-http`` and ``load-bench`` so both front-end
    commands assemble fault plans, resilience policies, and hedging
    exactly the way ``serve-bench`` does.
    """
    from repro.frontend import HedgePolicy, build_hotel_app

    faults = None
    if (
        args.faults > 0
        or args.fault_latency_rate > 0
        or args.fault_wrong_rate > 0
        or args.fault_compile_rate > 0
    ):
        from repro.resilience import FaultPlan, FaultSpec

        faults = FaultPlan(
            FaultSpec(
                error_rate=args.faults,
                latency_rate=args.fault_latency_rate,
                latency_ms=args.fault_latency_ms,
                wrong_shape_rate=args.fault_wrong_rate,
                compile_error_rate=args.fault_compile_rate,
            ),
            seed=args.fault_seed,
        )
    resilience = None
    if (
        args.deadline_ms is not None
        or args.retries > 0
        or args.breaker_threshold > 0
        or args.queue_limit is not None
        or args.no_degraded
    ):
        from repro.resilience import ResiliencePolicy

        resilience = ResiliencePolicy(
            deadline_ms=args.deadline_ms,
            retries=args.retries,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_ms=args.breaker_cooldown_ms,
            queue_limit=args.queue_limit,
            degraded=not args.no_degraded,
        )
    hedge = None
    if args.hedge:
        hedge = HedgePolicy(
            threshold_percentile=args.hedge_percentile,
            min_samples=args.hedge_min_samples,
            budget_fraction=args.hedge_budget,
            priorities=tuple(
                p.strip() for p in args.hedge_priorities.split(",") if p.strip()
            ),
        )
    fleet_faults = None
    if args.fault_kind != "none":
        if not (args.shards > 1 or args.replicas > 0):
            raise ReproError(
                "--fault-kind needs a fleet (--shards > 1 or --replicas > 0)"
            )
        from repro.resilience import FleetFaultPlan

        fleet_faults = FleetFaultPlan.for_kind(
            args.fault_kind,
            rate=args.fleet_fault_rate,
            seed=args.fault_seed,
            window=args.fleet_fault_window,
        )
    return build_hotel_app(
        scale=args.scale,
        workers=args.workers,
        staleness=args.staleness,
        maintenance=args.maintenance,
        fragment_policy=args.fragment_policy,
        resilience=resilience,
        faults=faults,
        hedge=hedge,
        shards=args.shards,
        replicas=args.replicas,
        replica_lag_ms=args.replica_lag_ms,
        fleet_faults=fleet_faults,
        backend=getattr(args, "backend", None),
    )


def _add_frontend_build_args(parser: argparse.ArgumentParser) -> None:
    """The workload/resilience/hedging flags both front-end commands share."""
    parser.add_argument("--scale", type=int, default=2,
                        help="hotel workload scale factor (default: 2)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker threads / pooled connections")
    parser.add_argument(
        "--backend", default="sqlite", choices=list(BACKEND_NAMES),
        help="storage engine the workload runs on (default: sqlite)",
    )
    parser.add_argument(
        "--staleness", metavar="POLICY",
        help="result-cache staleness policy: strict, manual, or bounded:N",
    )
    parser.add_argument(
        "--maintenance", default="full",
        choices=["full", "delta", "fragment"],
        help="stale-result recompute mode (default: full)",
    )
    parser.add_argument(
        "--fragment-policy", default="all", metavar="POLICY",
        help="fragment pinning policy for --maintenance fragment",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="serve through an N-shard scatter/merge fleet (default: 1)",
    )
    parser.add_argument(
        "--replicas", type=int, default=0, metavar="M",
        help="read replicas per shard (default: 0)",
    )
    parser.add_argument(
        "--replica-lag-ms", type=float, default=0.0, metavar="MS",
        help="delay each replica's catch-up apply loop by MS "
        "(default: 0 = apply writes inline)",
    )
    parser.add_argument(
        "--fault-kind", default="none",
        choices=["none"] + list(FLEET_FAULT_KINDS),
        help="fleet-scoped fault to inject (default: none)",
    )
    parser.add_argument(
        "--fleet-fault-rate", type=float, default=0.5, metavar="RATE",
        help="fraction of fault-site windows the fleet fault is active "
        "in (default: 0.5)",
    )
    parser.add_argument(
        "--fleet-fault-window", type=int, default=8, metavar="N",
        help="checks per fleet-fault window (default: 8)",
    )
    parser.add_argument(
        "--faults", type=float, default=0.0, metavar="RATE",
        help="inject transient sqlite errors into RATE of pooled queries",
    )
    parser.add_argument(
        "--fault-latency-rate", type=float, default=0.0, metavar="RATE",
        help="inject --fault-latency-ms of delay into RATE of queries",
    )
    parser.add_argument(
        "--fault-latency-ms", type=float, default=20.0, metavar="MS",
        help="injected latency per latency fault (default: 20)",
    )
    parser.add_argument(
        "--fault-wrong-rate", type=float, default=0.0, metavar="RATE",
        help="drop a result column from RATE of queries",
    )
    parser.add_argument(
        "--fault-compile-rate", type=float, default=0.0, metavar="RATE",
        help="fail RATE of plan compilations",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the deterministic fault schedule (default: 0)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline (cooperative cancel + hard interrupt)",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="retry budget for transient failures",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=0, metavar="N",
        help="consecutive failures that open a plan's breaker (0 off)",
    )
    parser.add_argument(
        "--breaker-cooldown-ms", type=float, default=1000.0, metavar="MS",
        help="open-breaker cooldown before half-open trials",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="shed requests beyond the priority-scaled admission limit",
    )
    parser.add_argument(
        "--no-degraded", action="store_true",
        help="disable the degraded-stale fallback",
    )
    parser.add_argument(
        "--hedge", action="store_true",
        help="enable hedged requests (second attempt past the rolling "
        "p95, first usable response wins, loser cancelled)",
    )
    parser.add_argument(
        "--hedge-percentile", type=float, default=95.0, metavar="Q",
        help="rolling-latency percentile that triggers a hedge "
        "(default: 95)",
    )
    parser.add_argument(
        "--hedge-min-samples", type=int, default=16, metavar="N",
        help="latency samples required before hedging a plan "
        "(default: 16)",
    )
    parser.add_argument(
        "--hedge-budget", type=float, default=0.1, metavar="FRACTION",
        help="cap on hedges fired as a fraction of requests "
        "(default: 0.1)",
    )
    parser.add_argument(
        "--hedge-priorities", default="interactive,batch,background",
        metavar="CLASSES",
        help="comma-separated priority classes eligible to hedge "
        "(default: all; 'interactive' spends the budget on the "
        "latency-sensitive class only)",
    )


def cmd_serve_http(args: argparse.Namespace) -> int:
    """``repro serve-http``: run the async HTTP publishing front end.

    Builds the hotel workload application (same knobs as
    ``serve-bench``: staleness, maintenance, shards, resilience,
    faults) and serves it over stdlib-asyncio HTTP/1.1 on
    ``--host:--port`` — ``POST /publish``, ``GET /metrics``,
    ``GET /healthz``, keep-alive connections, graceful drain on
    shutdown. ``--hedge`` races a second attempt for requests running
    past the rolling per-plan p95 (budget-capped; the losing attempt
    is cancelled cooperatively). ``--duration`` bounds the run for
    scripted use; the default serves until interrupted.
    """
    import asyncio
    import json

    from repro.frontend import serve_app

    async def run() -> dict:
        app = _frontend_app_from_args(args)
        server = await serve_app(app, args.host, args.port)
        host, port = server.address
        print(f"serve-http: listening on http://{host}:{port}")
        print(f"views: {', '.join(app.view_names())}")
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()  # until KeyboardInterrupt
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            print("serve-http: draining...")
            drained = await server.close()
            print(
                f"serve-http: drained={drained} "
                f"requests_handled={server.requests_handled} "
                f"open_connections={server.open_connections}"
            )
        return server.app.facade.metrics()

    try:
        metrics = asyncio.run(run())
    except KeyboardInterrupt:
        return 0
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def cmd_load_bench(args: argparse.Namespace) -> int:
    """``repro load-bench``: drive the HTTP front end over real sockets.

    Self-hosts a ``serve-http`` instance on a loopback port (same
    build flags), then runs the async load generator: ``--connections``
    keep-alive clients share a deterministic schedule of
    ``--requests`` publishes mixed across priority classes
    (``--interactive/--batch/--background`` weights). A background
    task applies the hotel write mix at ``--writes-per-sec`` so
    staleness machinery has work to do. Reports throughput, the
    canonical p50/p95/p99 latency block overall and per priority
    class, availability, hedge fire/win rates, and the shutdown leak
    checks; ``--json`` records everything for CI and E19.
    """
    import asyncio
    import json
    import threading as _threading

    from repro.frontend import LoadMix, run_load, serve_app

    async def run() -> dict:
        app = _frontend_app_from_args(args)
        server = await serve_app(app, "127.0.0.1", 0)
        host, port = server.address
        mix = LoadMix(
            priority_weights={
                "interactive": args.interactive,
                "batch": args.batch,
                "background": args.background,
            }
        )
        writer_task = None
        if args.writes_per_sec > 0:
            async def write_loop() -> None:
                interval = 1.0 / args.writes_per_sec
                loop = asyncio.get_running_loop()
                while True:
                    await asyncio.sleep(interval)
                    await loop.run_in_executor(None, app.apply_write)

            writer_task = asyncio.create_task(write_loop())
        try:
            report = await run_load(
                host, port,
                requests=args.requests,
                connections=args.connections,
                mix=mix,
            )
        finally:
            if writer_task is not None:
                writer_task.cancel()
                try:
                    await writer_task
                except asyncio.CancelledError:
                    pass
            drained = await server.close()
        metrics = app.facade.metrics()
        report["hedging"] = metrics["hedging"]
        report["server"] = {
            "requests_handled": server.requests_handled,
            "protocol_errors": server.protocol_errors,
            "drained": drained,
            "open_connections": server.open_connections,
        }
        report["writes_applied"] = app.writes_applied
        outcomes = metrics.get("outcomes", {})
        report["backend_outcomes"] = outcomes
        return report

    report = asyncio.run(run())
    leaked_threads = sum(
        1
        for thread in _threading.enumerate()
        if thread.name.startswith(("viewserver", "shardrouter"))
    )
    report["shutdown"] = {
        "leaked_threads": leaked_threads,
        "open_connections": report["server"]["open_connections"],
    }
    overall = report["overall"]
    print(
        f"load-bench: requests={report['completed']}/{report['requests']} "
        f"connections={report['connections']} "
        f"throughput_rps={report['throughput_rps']}"
    )
    latency = overall["latency"]
    print(
        f"latency_ms p50={latency['p50_ms']} p95={latency['p95_ms']} "
        f"p99={latency['p99_ms']} availability={overall['availability']}"
    )
    for priority, block in report["priority"].items():
        lat = block["latency"]
        print(
            f"  {priority}: n={lat['count']} p50={lat['p50_ms']} "
            f"p95={lat['p95_ms']} p99={lat['p99_ms']} "
            f"availability={block['availability']}"
        )
    hedging = report["hedging"]
    if hedging is not None:
        print(
            f"hedging fired={hedging['fired']} won={hedging['won']} "
            f"fire_rate={hedging['fire_rate']} "
            f"win_rate={hedging['win_rate']}"
        )
    print(
        f"shutdown leaked_threads={leaked_threads} "
        f"open_connections={report['server']['open_connections']} "
        f"drained={report['server']['drained']}"
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if report["transport_errors"] > 0 or leaked_threads > 0:
        return 1
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """``repro demo``: write demo catalog/view/stylesheet/database files."""
    from repro.workloads.hotel import (
        HotelDataSpec,
        hotel_catalog,
        populate_hotel_database,
    )
    from repro.workloads.paper import figure1_view, _FIGURE4

    os.makedirs(args.out, exist_ok=True)
    catalog = hotel_catalog()
    catalog_path = os.path.join(args.out, "catalog.xml")
    view_path = os.path.join(args.out, "view.xml")
    stylesheet_path = os.path.join(args.out, "stylesheet.xsl")
    db_path = os.path.join(args.out, "hotel.sqlite")
    save_catalog(catalog, catalog_path)
    save_view(figure1_view(catalog), view_path)
    with open(stylesheet_path, "w") as handle:
        handle.write(_FIGURE4.strip() + "\n")
    if os.path.exists(db_path):
        os.remove(db_path)
    db = Database(catalog, path=db_path)
    populate_hotel_database(db, HotelDataSpec().scaled(args.scale))
    db.close()
    for path in (catalog_path, view_path, stylesheet_path, db_path):
        print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compose XSL transformations with XML publishing views "
        "(SIGMOD 2003 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compose_parser = sub.add_parser("compose", help="compose a stylesheet with a view")
    compose_parser.add_argument("--catalog", required=True)
    compose_parser.add_argument("--view", required=True)
    compose_parser.add_argument("--stylesheet", required=True)
    compose_parser.add_argument("--out", "-o")
    compose_parser.add_argument("--paper-mode", action="store_true",
                                help="reproduce the paper's exact query shapes")
    compose_parser.add_argument("--prune", action="store_true",
                                help="run dead-column elimination")
    compose_parser.set_defaults(func=cmd_compose)

    explain_parser = sub.add_parser("explain", help="show CTG/TVQ/plan")
    explain_parser.add_argument("--catalog", required=True)
    explain_parser.add_argument("--view", required=True)
    explain_parser.add_argument("--stylesheet", required=True)
    explain_parser.add_argument("--dot", action="store_true",
                                help="emit Graphviz DOT instead of text")
    explain_parser.set_defaults(func=cmd_explain)

    materialize_parser = sub.add_parser(
        "materialize", help="evaluate a view against a database"
    )
    materialize_parser.add_argument("--catalog", required=True)
    materialize_parser.add_argument("--view", required=True)
    materialize_parser.add_argument("--db", required=True)
    materialize_parser.add_argument("--out", "-o")
    materialize_parser.add_argument(
        "--strategy", default="nested-loop", choices=list(STRATEGIES),
        help="execution strategy (default: nested-loop)",
    )
    materialize_parser.add_argument(
        "--memoize", action="store_true",
        help="deprecated alias for --strategy memoized",
    )
    materialize_parser.add_argument("--pretty", action="store_true")
    materialize_parser.set_defaults(func=cmd_materialize)

    run_parser = sub.add_parser("run", help="plan and execute a stylesheet")
    run_parser.add_argument("--catalog", required=True)
    run_parser.add_argument("--view", required=True)
    run_parser.add_argument("--stylesheet", required=True)
    run_parser.add_argument("--db", required=True)
    run_parser.add_argument("--out", "-o")
    run_parser.add_argument("--pretty", action="store_true")
    run_parser.add_argument("--builtin-rules", default="empty",
                            choices=["empty", "standard"])
    run_parser.set_defaults(func=cmd_run)

    serve_parser = sub.add_parser(
        "serve-bench", help="benchmark the concurrent publishing server"
    )
    serve_parser.add_argument("--scale", type=int, default=2,
                              help="hotel workload scale factor (default: 2)")
    serve_parser.add_argument("--workers", type=int, default=4,
                              help="worker threads / pooled connections")
    serve_parser.add_argument(
        "--backend", default="sqlite", choices=list(BACKEND_NAMES),
        help="storage engine the workload runs on (default: sqlite)",
    )
    serve_parser.add_argument("--requests", type=int, default=100,
                              help="total requests to serve")
    serve_parser.add_argument(
        "--strategy", default="all", choices=["all"] + list(STRATEGIES),
        help="execution strategy mix (default: cycle through all)",
    )
    serve_parser.add_argument(
        "--writes-per-sec", type=float, default=0.0, metavar="RATE",
        help="apply the standard hotel write mix at RATE writes/second "
        "from a background thread (implies update-aware serving)",
    )
    serve_parser.add_argument(
        "--staleness", metavar="POLICY",
        help="result-cache staleness policy: strict, manual, or bounded:N "
        "(enables update-aware serving; default off)",
    )
    serve_parser.add_argument(
        "--maintenance", default="full",
        choices=["full", "delta", "fragment"],
        help="how stale results are recomputed: re-run the full plan, "
        "delta (re-execute only dirty schema nodes and splice; falls "
        "back to full when unsafe), or fragment (delta plus the "
        "serialized-fragment byte cache)",
    )
    serve_parser.add_argument(
        "--fragment-policy", default="all", metavar="POLICY",
        help="fragment pinning policy for --maintenance fragment: all, "
        "none, auto, or auto:BYTES (default: all)",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the workload by metro key range into N shards "
        "served by a scatter/merge router (default: 1 = single box)",
    )
    serve_parser.add_argument(
        "--replicas", type=int, default=0, metavar="M",
        help="read replicas per shard (snapshot clones balanced "
        "round-robin with failover; implies router mode; default: 0)",
    )
    serve_parser.add_argument(
        "--replica-lag-ms", type=float, default=0.0, metavar="MS",
        help="delay each replica's catch-up apply loop by MS so "
        "replicas genuinely lag the primary (default: 0 = apply "
        "writes inline)",
    )
    serve_parser.add_argument(
        "--fault-kind", default="none",
        choices=["none"] + list(FLEET_FAULT_KINDS),
        help="fleet-scoped fault to inject: replica-crash (a replica's "
        "pool refuses new sessions), apply-stall (a replica's catch-up "
        "loop freezes), or partition (the primary stays writable but "
        "unreadable); default: none",
    )
    serve_parser.add_argument(
        "--fleet-fault-rate", type=float, default=0.5, metavar="RATE",
        help="fraction of fault-site windows the fleet fault is active "
        "in (default: 0.5)",
    )
    serve_parser.add_argument(
        "--fleet-fault-window", type=int, default=8, metavar="N",
        help="checks per fleet-fault window; a whole window is faulted "
        "or clean together (default: 8)",
    )
    serve_parser.add_argument(
        "--view-only", action="store_true",
        help="serve the publishing view itself instead of the stylesheet "
        "compositions",
    )
    serve_parser.add_argument(
        "--profile", action="store_true",
        help="report a per-phase time breakdown "
        "(query/merge/serialize/splice) over computed requests",
    )
    serve_parser.add_argument(
        "--faults", type=float, default=0.0, metavar="RATE",
        help="inject transient sqlite errors into RATE of pooled queries "
        "(deterministic given --fault-seed)",
    )
    serve_parser.add_argument(
        "--fault-latency-rate", type=float, default=0.0, metavar="RATE",
        help="inject --fault-latency-ms of delay into RATE of queries",
    )
    serve_parser.add_argument(
        "--fault-latency-ms", type=float, default=20.0, metavar="MS",
        help="injected latency per latency fault (default: 20)",
    )
    serve_parser.add_argument(
        "--fault-wrong-rate", type=float, default=0.0, metavar="RATE",
        help="drop a result column from RATE of queries (wrong-shape)",
    )
    serve_parser.add_argument(
        "--fault-compile-rate", type=float, default=0.0, metavar="RATE",
        help="fail RATE of plan compilations",
    )
    serve_parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the deterministic fault schedule (default: 0)",
    )
    serve_parser.add_argument(
        "--warmup", type=int, default=0, metavar="N",
        help="serve N requests with faults disarmed before measuring "
        "(populates plan/result caches)",
    )
    serve_parser.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline (cooperative cancel + hard interrupt)",
    )
    serve_parser.add_argument(
        "--retries", type=int, default=0,
        help="retry budget for transient failures (exponential backoff)",
    )
    serve_parser.add_argument(
        "--breaker-threshold", type=int, default=0, metavar="N",
        help="consecutive failures that open a plan's circuit breaker "
        "(0 disables)",
    )
    serve_parser.add_argument(
        "--breaker-cooldown-ms", type=float, default=1000.0, metavar="MS",
        help="open-breaker cooldown before a half-open trial "
        "(default: 1000)",
    )
    serve_parser.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="shed requests beyond workers+N in flight (default: unbounded)",
    )
    serve_parser.add_argument(
        "--no-degraded", action="store_true",
        help="disable the degraded-stale fallback (failures error instead)",
    )
    serve_parser.add_argument("--json", metavar="PATH",
                              help="write full metrics as JSON")
    serve_parser.set_defaults(func=cmd_serve_bench)

    http_parser = sub.add_parser(
        "serve-http", help="run the async HTTP publishing front end"
    )
    _add_frontend_build_args(http_parser)
    http_parser.add_argument("--host", default="127.0.0.1",
                             help="bind address (default: 127.0.0.1)")
    http_parser.add_argument("--port", type=int, default=8472,
                             help="bind port, 0 = ephemeral (default: 8472)")
    http_parser.add_argument(
        "--duration", type=float, default=0.0, metavar="SECONDS",
        help="serve for SECONDS then drain (default: until interrupted)",
    )
    http_parser.add_argument("--json", metavar="PATH",
                             help="write final metrics as JSON on shutdown")
    http_parser.set_defaults(func=cmd_serve_http)

    load_parser = sub.add_parser(
        "load-bench", help="drive the HTTP front end over real sockets"
    )
    _add_frontend_build_args(load_parser)
    load_parser.add_argument("--requests", type=int, default=100,
                             help="total publish requests (default: 100)")
    load_parser.add_argument("--connections", type=int, default=8,
                             help="concurrent keep-alive clients (default: 8)")
    load_parser.add_argument(
        "--interactive", type=float, default=0.5, metavar="WEIGHT",
        help="interactive-class traffic weight (default: 0.5)",
    )
    load_parser.add_argument(
        "--batch", type=float, default=0.3, metavar="WEIGHT",
        help="batch-class traffic weight (default: 0.3)",
    )
    load_parser.add_argument(
        "--background", type=float, default=0.2, metavar="WEIGHT",
        help="background-class traffic weight (default: 0.2)",
    )
    load_parser.add_argument(
        "--writes-per-sec", type=float, default=0.0, metavar="RATE",
        help="apply the hotel write mix at RATE while serving",
    )
    load_parser.add_argument("--json", metavar="PATH",
                             help="write the full report as JSON")
    load_parser.set_defaults(func=cmd_load_bench)

    demo_parser = sub.add_parser("demo", help="write demo artifacts")
    demo_parser.add_argument("--out", default="repro-demo")
    demo_parser.add_argument("--scale", type=int, default=1)
    demo_parser.set_defaults(func=cmd_demo)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

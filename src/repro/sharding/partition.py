"""Key-range partitioning of workload databases for the serving fleet.

The paper's composed plans evaluate one decorrelated query per schema
node, every one scoped by the top-level binding variable — so the
workload partitions cleanly by the *top-level key column*: the primary
key of the single base table the schema tree's first query-bearing node
ranges over (``metroarea.metroid`` for Figure 1). This module derives
that column from the view (:func:`derive_partition_column`), splits its
key domain into contiguous ranges (:class:`KeyRangePartitioner`), and
deals a source database's rows out to one :class:`Database` per shard
according to a workload-declared :class:`PartitionScheme`.

The scheme is declarative: for every base table it names a *key query*
returning ``(primary_key, partition_key)`` pairs — the join path from
the table's rows to the top-level key they belong to — or ``None`` to
replicate the table to every shard (small dimension tables such as
``hotelchain``). Partitioning is therefore transitive and complete: a
row lands on exactly the shard that owns its top-level key, so every
per-node tag query of the view evaluates shard-locally.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.relational.engine import Database
from repro.relational.schema import Catalog
from repro.schema_tree.model import SchemaNode, SchemaTreeQuery


class ShardingError(ReproError):
    """A view, scheme, or key domain that cannot be partitioned."""


def derive_partition_node(view: SchemaTreeQuery) -> SchemaNode:
    """The schema node whose key column partitions the workload.

    The first query-bearing node in pre-order — the node whose tuples
    the rest of the tree is correlated under. Every other query-bearing
    node must live in its subtree, or per-shard evaluation would not be
    equivalent to a single-box run (some query would range over data the
    shard does not own).
    """
    ordered = view.nodes(include_root=False)
    partition = next((node for node in ordered if node.has_query), None)
    if partition is None:
        raise ShardingError("view has no query-bearing node to partition by")
    subtree = set(id(node) for node in partition.walk())
    for node in ordered:
        if node.has_query and id(node) not in subtree:
            raise ShardingError(
                f"query-bearing node {node.id} (<{node.tag}>) is outside "
                f"the partition subtree rooted at node {partition.id} "
                f"(<{partition.tag}>)"
            )
    return partition


def derive_partition_column(
    view: SchemaTreeQuery, catalog: Catalog
) -> tuple[str, str]:
    """The ``(table, column)`` the schema tree's top level partitions by.

    The partition node's tag query must range over exactly one base
    table in its FROM clause, and that table must declare a primary key
    — the shard key. For Figure 1 this derives ``("metroarea",
    "metroid")``. Subqueries (composed predicates) may reference other
    tables freely: the partition scheme routes every table by the same
    top-level key, so those reads stay shard-local too.
    """
    from repro.sql.ast import TableRef

    partition = derive_partition_node(view)
    froms = [
        item.name
        for item in partition.tag_query.from_items
        if isinstance(item, TableRef)
    ]
    if len(froms) != 1 or len(partition.tag_query.from_items) != 1:
        raise ShardingError(
            f"partition node {partition.id} (<{partition.tag}>) ranges "
            f"over {len(partition.tag_query.from_items)} FROM items; "
            "key-range partitioning needs exactly one base table"
        )
    declared = catalog.table(froms[0])
    if declared.primary_key is None:
        raise ShardingError(
            f"partition table {declared.name!r} declares no primary key"
        )
    return declared.name, declared.primary_key


@dataclass(frozen=True)
class KeyRange:
    """One shard's contiguous slice of the key domain (inclusive)."""

    low: int
    high: int

    def __contains__(self, key) -> bool:
        return self.low <= key <= self.high


class KeyRangePartitioner:
    """Maps a partition-key value to a shard by contiguous key range.

    Built from the *sorted distinct* key values actually present
    (:meth:`from_keys`), split into ``shards`` near-equal runs. Ranges
    are ascending by construction, so concatenating per-shard results in
    shard order preserves global document order by shard key — the
    invariant the spine merge relies on.
    """

    def __init__(self, ranges: Sequence[KeyRange]):
        if not ranges:
            raise ShardingError("partitioner needs at least one key range")
        for left, right in zip(ranges, ranges[1:]):
            if left.high >= right.low:
                raise ShardingError(
                    f"key ranges overlap or are unordered: {left} vs {right}"
                )
        self.ranges = list(ranges)
        self._uppers = [r.high for r in self.ranges]

    @classmethod
    def from_keys(
        cls, keys: Sequence, shards: int
    ) -> "KeyRangePartitioner":
        """Split the distinct ``keys`` into ``shards`` contiguous ranges."""
        distinct = sorted(set(keys))
        if shards < 1:
            raise ShardingError(f"shard count must be >= 1, got {shards}")
        if not distinct:
            raise ShardingError("no partition keys present in the source")
        if shards > len(distinct):
            raise ShardingError(
                f"cannot split {len(distinct)} distinct keys into "
                f"{shards} shards"
            )
        base, extra = divmod(len(distinct), shards)
        ranges: list[KeyRange] = []
        start = 0
        for index in range(shards):
            width = base + (1 if index < extra else 0)
            chunk = distinct[start:start + width]
            ranges.append(KeyRange(chunk[0], chunk[-1]))
            start += width
        return cls(ranges)

    @property
    def shards(self) -> int:
        return len(self.ranges)

    def shard_of(self, key) -> int:
        """The shard index owning ``key``.

        Keys that fall between ranges (inserted after partitioning)
        belong to the nearest range whose upper bound is not below them
        — the same shard a re-partition of the grown domain would pick.
        """
        index = bisect.bisect_left(self._uppers, key)
        return min(index, len(self.ranges) - 1)

    def describe(self) -> str:
        """The ranges as a compact ``[low,high] ...`` display string."""
        return " ".join(
            f"[{r.low},{r.high}]" for r in self.ranges
        )


@dataclass(frozen=True)
class PartitionScheme:
    """How a workload's tables map onto the top-level key domain.

    ``key_queries`` maps every catalog table to SQL returning
    ``(primary_key, partition_key)`` pairs — the join path from the
    table's rows to the shard key they belong to — or ``None`` to
    replicate the table to all shards. :func:`partition_database`
    validates the scheme covers the catalog exactly.
    """

    table: str
    column: str
    key_queries: Mapping[str, Optional[str]]

    def validate(self, catalog: Catalog) -> None:
        """Reject schemes naming tables the catalog does not declare,
        or routing the partition table as replicated."""
        declared = {t.name for t in catalog}
        routed = set(self.key_queries)
        if routed != declared:
            missing = sorted(declared - routed)
            extra = sorted(routed - declared)
            raise ShardingError(
                f"partition scheme does not match the catalog: "
                f"missing {missing}, unknown {extra}"
            )
        if self.key_queries.get(self.table) is None:
            raise ShardingError(
                f"the partition table {self.table!r} itself must have a "
                "key query (it cannot be replicated)"
            )


def partition_keys(source: Database, scheme: PartitionScheme) -> list:
    """Sorted distinct partition-key values present in the source."""
    rows = source.run_sql(
        f"SELECT DISTINCT {scheme.column} AS k FROM {scheme.table} "
        f"ORDER BY {scheme.column}",
        {},
    )
    return [row["k"] for row in rows]


def partition_database(
    source: Database,
    scheme: PartitionScheme,
    partitioner: KeyRangePartitioner,
    cross_thread: bool = True,
) -> list[Database]:
    """Deal the source's rows into one fresh database per shard.

    Rows are inserted in source order, so within every shard the
    partition table's rows stay ascending by key — combined with the
    partitioner's ascending ranges, shard-order concatenation preserves
    global document order. Replicated tables (key query ``None``) are
    copied to every shard verbatim. The returned databases are writable
    and opened ``cross_thread`` (default) so a writer thread and the
    serving pools' re-snapshot path can share them, exactly like the
    single-box update-aware setup.
    """
    scheme.validate(source.catalog)
    shards = [
        Database(source.catalog, cross_thread=cross_thread,
                 driver=source.driver)
        for _ in range(partitioner.shards)
    ]
    for declared in source.catalog:
        rows = source.run_sql(f"SELECT * FROM {declared.name}", {})
        key_query = scheme.key_queries[declared.name]
        if key_query is None:
            for shard in shards:
                shard.insert_rows(declared.name, [dict(row) for row in rows])
            continue
        if declared.primary_key is None:
            raise ShardingError(
                f"table {declared.name!r} has a key query but no primary "
                "key to route by"
            )
        owner_by_pk = {
            row["pk"]: partitioner.shard_of(row["part"])
            for row in source.run_sql(key_query, {})
        }
        dealt: list[list[dict]] = [[] for _ in shards]
        for row in rows:
            owner = owner_by_pk.get(row[declared.primary_key])
            if owner is None:
                # A row whose join path dead-ends (orphan) is served by
                # no shard's view queries; drop it rather than guess.
                continue
            dealt[owner].append(dict(row))
        for shard, shard_rows in zip(shards, dealt):
            shard.insert_rows(declared.name, shard_rows)
    for shard in shards:
        shard.analyze()
    return shards
